"""Structured access logs for the service layer.

One JSON object per line (schema ``repro.accesslog/1``), one line per
daemon request or batch job -- greppable with ``jq`` while the daemon is
alive, no log parser required::

    {"schema": "repro.accesslog/1", "ts": 1754500000.123,
     "kind": "daemon", "op": "analyze", "design": "pipeline",
     "engine": "incremental-warm", "cache_hit": false,
     "queue_wait_s": 0.0002, "handle_s": 0.0131,
     "status": "ok", "pid": 4242, "trace_id": null}

Required keys (always present, ``None`` when not applicable): ``schema``
``ts`` ``kind`` ``op`` ``design`` ``status`` ``duration_s``.  Optional
facts (``engine``, ``cache_hit``, ``queue_wait_s``, ``handle_s``,
``attempts``, ``worker_pid``, ``error``, ``trace_id``) appear when the
caller supplies them.

**Slow-request forensics:** entries whose duration exceeds
``slow_threshold_s`` additionally carry a ``spans`` tree (name,
start/duration, children) rebuilt from the request's recorder snapshot
-- full detail for the outliers, one flat line for everyone else.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

__all__ = ["ACCESS_LOG_SCHEMA", "AccessLog", "span_tree_from_snapshot"]

#: Schema identifier stamped on every access-log line.
ACCESS_LOG_SCHEMA = "repro.accesslog/1"

#: Keys every line carries (the parseable contract; tests assert this).
REQUIRED_KEYS = (
    "schema",
    "ts",
    "kind",
    "op",
    "design",
    "status",
    "duration_s",
)


def _json_safe(value: object) -> object:
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def span_tree_from_snapshot(
    snap: Optional[Dict[str, object]], max_spans: int = 200
) -> Optional[List[Dict[str, object]]]:
    """Rebuild a nested span tree from a ``repro.obs.snapshot/1`` doc.

    Spans nest by ``depth`` within each thread (the recorder's own
    invariant); the result is a forest of ``{"name", "start_s",
    "duration_s", "children": [...]}`` nodes, capped at ``max_spans``
    records so one pathological request cannot bloat the log.
    """
    if not isinstance(snap, dict):
        return None
    spans = snap.get("spans")
    if not isinstance(spans, list) or not spans:
        return None
    forest: List[Dict[str, object]] = []
    stacks: Dict[int, List[Dict[str, object]]] = {}
    for entry in sorted(
        spans[:max_spans], key=lambda e: e.get("start", 0.0)
    ):
        try:
            node = {
                "name": str(entry["name"]),
                "start_s": round(float(entry["start"]), 6),
                "duration_s": round(float(entry["dur"]), 6),
                "children": [],
            }
            depth = int(entry.get("depth", 0))
            tid = int(entry.get("tid", 0))
        except (KeyError, TypeError, ValueError):
            continue
        stack = stacks.setdefault(tid, [])
        del stack[depth:]
        if depth and stack:
            stack[-1]["children"].append(node)
        else:
            forest.append(node)
        stack.append(node)
    return forest or None


class AccessLog:
    """Append-only JSON-lines access log with a slow-request threshold.

    Parameters
    ----------
    path:
        File to append to (opened lazily, line-buffered).  Pass an open
        file-like object instead to log into a test buffer.
    slow_threshold_s:
        Entries at least this slow also carry their full ``spans`` tree
        (when the caller provides the request's recorder snapshot).
    max_bytes:
        Size-based rotation (``--access-log-max-bytes``): once the live
        file reaches this many bytes it is renamed to ``<path>.1``
        (older generations shifting to ``.2`` ... ``.<backups>``, the
        oldest dropped) and a fresh file is opened.  ``None`` (the
        default) never rotates.  Rotation failures are swallowed like
        every other I/O error here -- the log keeps appending in place.
    backups:
        Rotated generations to keep (ignored without ``max_bytes``).
    """

    def __init__(
        self,
        path: Union[str, Path, IO[str]],
        slow_threshold_s: float = 1.0,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> None:
        self.slow_threshold_s = float(slow_threshold_s)
        self.max_bytes = int(max_bytes) if max_bytes else None
        self.backups = max(1, int(backups))
        self.rotations = 0
        self.lines_written = 0
        self._bytes_written: Optional[int] = None
        self._lock = threading.Lock()
        if hasattr(path, "write"):
            self.path: Optional[Path] = None
            self._handle: Optional[IO[str]] = path  # type: ignore[assignment]
        else:
            self.path = Path(path)  # type: ignore[arg-type]
            self._handle = None

    def _file(self) -> IO[str]:
        if self._handle is None:
            assert self.path is not None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", buffering=1)
            try:
                self._bytes_written = self._handle.tell()
            except OSError:
                self._bytes_written = 0
        return self._handle

    def _maybe_rotate_locked(self, pending: int) -> None:
        """Rotate ``path -> path.1 -> ... -> path.N`` when the next
        write would cross ``max_bytes``.  File-object logs (tests) and
        rotation failures leave the current handle in place."""
        if (
            self.max_bytes is None
            or self.path is None
            or self._bytes_written is None
            or self._bytes_written == 0
            or self._bytes_written + pending <= self.max_bytes
        ):
            return
        try:
            if self._handle is not None:
                self._handle.close()
            self._handle = None
            for index in range(self.backups, 1, -1):
                older = Path(f"{self.path}.{index - 1}")
                if older.exists():
                    older.replace(Path(f"{self.path}.{index}"))
            self.path.replace(Path(f"{self.path}.1"))
            self.rotations += 1
        except OSError:
            pass
        self._bytes_written = None

    def record(
        self,
        kind: str,
        op: str,
        design: Optional[str],
        status: str,
        duration_s: float,
        snapshot: Optional[Dict[str, object]] = None,
        force_spans: bool = False,
        **facts: object,
    ) -> Dict[str, object]:
        """Write one line; returns the entry (handy for tests).

        ``force_spans`` attaches the span tree regardless of the slow
        threshold -- the daemon sets it for failed requests, whose
        forensic value does not depend on their duration.

        Never raises: an unwritable log is reported once via the
        ``error`` counter path and then dropped -- telemetry must not
        take the serving path down.
        """
        from repro import obs

        entry: Dict[str, object] = {
            "schema": ACCESS_LOG_SCHEMA,
            "ts": round(time.time(), 6),
            "kind": kind,
            "op": op,
            "design": design,
            "status": status,
            "duration_s": round(float(duration_s), 6),
        }
        for key, value in facts.items():
            if value is not None:
                entry[key] = _json_safe(value)
        slow = duration_s >= self.slow_threshold_s
        if slow:
            entry["slow"] = True
        if slow or force_spans:
            tree = span_tree_from_snapshot(snapshot)
            if tree is not None:
                entry["spans"] = tree
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        try:
            with self._lock:
                self._maybe_rotate_locked(len(line) + 1)
                handle = self._file()
                handle.write(line + "\n")
                if self._bytes_written is not None:
                    self._bytes_written += len(line) + 1
                self.lines_written += 1
        except OSError:
            return entry
        obs.counter("service.accesslog.lines")
        return entry

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and self.path is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
