"""Persistent trace store with tail-based sampling.

PR 4 gave every daemon request a ``repro.obs.snapshot/1`` span tree,
but it only ever travelled back to the *requesting* client -- once the
response was written the tree was gone.  This module keeps the trees
that matter on disk so an operator can retrieve them **after the
fact**, following the paper's "keep full detail only where it binds"
philosophy:

* :class:`TailSampler` decides *after* the request completes (hence
  "tail-based") whether its trace is worth keeping:

  - **errored** requests are always kept,
  - requests slower than the **dynamic p95** of recent durations are
    always kept (a streaming latency histogram supplies the quantile;
    until it has seen enough samples everything is "slow"),
  - the rest are kept with a deterministic probability derived from
    the trace id, so two daemons sampling the same trace agree;

* :class:`TraceStore` is a size-bounded on-disk ring under
  ``--trace-dir``: one ``<trace_id>.json`` document per kept trace
  (schema ``repro.tracedoc/1``), oldest evicted first once the
  directory exceeds ``max_bytes``.  All failures degrade to counters
  (``service.tracestore.write_errors``) -- the serving path never sees
  an exception from here.

The store's ids are the same 32-hex trace ids the exemplars in
``/metrics`` carry, which is the point: alert -> fat bucket ->
exemplar ``trace_id`` -> ``repro-sta traces show <id>``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs import recorder as obs_recorder
from repro.obs.hist import LATENCY_BUCKETS, HistogramStats

__all__ = [
    "TRACE_DOC_SCHEMA",
    "TailSampler",
    "TraceStore",
]

#: Schema identifier stamped on every stored trace document.
TRACE_DOC_SCHEMA = "repro.tracedoc/1"

#: Counter namespace (see docs/observability.md).
COUNTER_PREFIX = "service.tracestore"

_ID_CHARS = frozenset("0123456789abcdef")


def _valid_trace_id(trace_id: object) -> bool:
    return (
        isinstance(trace_id, str)
        and 8 <= len(trace_id) <= 64
        and set(trace_id) <= _ID_CHARS
    )


def _count(name: str, value: float = 1.0) -> None:
    obs_recorder.counter(f"{COUNTER_PREFIX}.{name}", value)


class TailSampler:
    """Tail-based keep/drop decisions for completed request traces.

    ``decide(status, duration_s, trace_id)`` returns the keep *reason*
    (``"error"``, ``"slow"`` or ``"sampled"``) or ``None`` for drop.

    The slow threshold is the p95 of the durations seen so far, tracked
    in a streaming latency histogram; below ``min_count`` observations
    the quantile is not trusted yet and every request counts as slow
    (early traffic is cheap to keep and useful for smoke tests).  The
    probabilistic arm hashes the trace id, so the decision is
    deterministic per trace and testable.
    """

    def __init__(
        self,
        sample_rate: float = 0.05,
        slow_quantile: float = 0.95,
        min_count: int = 50,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = float(sample_rate)
        self.slow_quantile = float(slow_quantile)
        self.min_count = int(min_count)
        self._durations = HistogramStats(LATENCY_BUCKETS)
        self._lock = threading.Lock()

    def slow_threshold(self) -> Optional[float]:
        """Current p95 duration, or ``None`` while still warming up."""
        with self._lock:
            if self._durations.count < self.min_count:
                return None
            return self._durations.quantile(self.slow_quantile)

    @staticmethod
    def _hash_unit(trace_id: str) -> float:
        """Map a trace id to [0, 1) deterministically."""
        try:
            return int(trace_id[-8:], 16) / float(0x100000000)
        except (TypeError, ValueError):
            return 1.0  # unparseable id: only error/slow keep it

    def decide(
        self, status: str, duration_s: float, trace_id: str
    ) -> Optional[str]:
        threshold = self.slow_threshold()
        with self._lock:
            self._durations.observe(duration_s)
        if status == "error":
            return "error"
        if threshold is None or duration_s >= threshold:
            return "slow"
        if self._hash_unit(trace_id) < self.sample_rate:
            return "sampled"
        return None


class TraceStore:
    """Size-bounded on-disk ring of ``repro.tracedoc/1`` documents.

    Thread-safe; every public method swallows I/O errors into counters
    (never-raises, same contract as the access log).  Existing
    documents are re-indexed oldest-first at construction so a
    restarted daemon keeps serving its previous traces.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = 64 * 1024 * 1024,
        sampler: Optional[TailSampler] = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.sampler = sampler if sampler is not None else TailSampler()
        self._lock = threading.Lock()
        #: trace_id -> on-disk size, insertion-ordered oldest first.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._total_bytes = 0
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._scan()
        except OSError:
            _count("write_errors")

    def _scan(self) -> None:
        entries = []
        for path in self.root.glob("*.json"):
            if not _valid_trace_id(path.stem):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.stem, stat.st_size))
        for __, trace_id, size in sorted(entries):
            self._index[trace_id] = size
            self._total_bytes += size

    def _path(self, trace_id: str) -> Path:
        return self.root / f"{trace_id}.json"

    # ------------------------------------------------------------------
    # write path (daemon request tail)
    # ------------------------------------------------------------------
    def offer(
        self,
        trace_id: Optional[str],
        *,
        status: str,
        duration_s: float,
        op: Optional[str] = None,
        design: Optional[str] = None,
        error: Optional[Dict[str, object]] = None,
        snapshot: Optional[Dict[str, object]] = None,
    ) -> Optional[str]:
        """Run the tail sampler and persist the trace when it keeps it.

        Returns the keep reason, or ``None`` when dropped (also on an
        invalid id or any I/O failure -- never raises).
        """
        if not _valid_trace_id(trace_id):
            return None
        try:
            reason = self.sampler.decide(status, duration_s, trace_id)
            if reason is None:
                _count("dropped")
                return None
            document = {
                "schema": TRACE_DOC_SCHEMA,
                "trace_id": trace_id,
                "ts": time.time(),
                "pid": os.getpid(),
                "op": op,
                "design": design,
                "status": status,
                "duration_s": duration_s,
                "sampling": reason,
                "error": error,
                "snapshot": snapshot,
            }
            self._write(trace_id, document)
            _count("kept")
            if reason in ("error", "slow"):
                _count(f"kept_{reason}")
            return reason
        except Exception:  # noqa: BLE001 -- telemetry must not raise
            _count("write_errors")
            return None

    def _write(self, trace_id: str, document: Dict[str, object]) -> None:
        payload = json.dumps(document, sort_keys=True).encode("utf-8")
        path = self._path(trace_id)
        with self._lock:
            try:
                path.write_bytes(payload)
            except OSError:
                _count("write_errors")
                return
            previous = self._index.pop(trace_id, 0)
            self._total_bytes -= previous
            self._index[trace_id] = len(payload)
            self._total_bytes += len(payload)
            self._evict_locked()

    def _evict_locked(self) -> None:
        while self._total_bytes > self.max_bytes and len(self._index) > 1:
            oldest, size = next(iter(self._index.items()))
            self._index.pop(oldest)
            self._total_bytes -= size
            try:
                self._path(oldest).unlink()
            except OSError:
                pass
            _count("evicted")

    # ------------------------------------------------------------------
    # read path (traces op / CLI)
    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        """The stored document for ``trace_id``, or ``None``."""
        if not _valid_trace_id(trace_id):
            return None
        try:
            raw = self._path(trace_id).read_text()
            document = json.loads(raw)
        except (OSError, json.JSONDecodeError):
            return None
        return document if isinstance(document, dict) else None

    def list(self, last: int = 50) -> List[Dict[str, object]]:
        """Newest-first summaries of up to ``last`` stored traces."""
        with self._lock:
            ids = list(self._index)[-max(0, int(last)):]
        rows = []
        for trace_id in reversed(ids):
            document = self.get(trace_id)
            if document is None:
                continue
            rows.append(
                {
                    "trace_id": trace_id,
                    "ts": document.get("ts"),
                    "op": document.get("op"),
                    "design": document.get("design"),
                    "status": document.get("status"),
                    "duration_s": document.get("duration_s"),
                    "sampling": document.get("sampling"),
                }
            )
        return rows

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "traces": len(self._index),
                "bytes": self._total_bytes,
                "max_bytes": self.max_bytes,
                "dir": str(self.root),
            }
