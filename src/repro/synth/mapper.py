"""Technology mapping of boolean expressions onto the cell library.

Two mapping styles:

* ``"direct"`` -- AND/OR/XOR/INV trees (readable, one level per operator),
* ``"nand"``  -- NAND2+INV only (the area-optimised static-CMOS idiom the
  paper's standard-cell flows produced; XOR expands to four NANDs).

Common subexpressions are shared structurally: the mapper canonicalises
commutative operand orders and caches one net per distinct subexpression.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Union

from repro.synth.expr import (
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    Xor,
    parse_expr,
    simplify,
    variables,
)
from repro.netlist.builder import NetworkBuilder
from repro.netlist.hierarchy import ModuleDefinition, ModuleSpec

Equations = Mapping[str, Union[str, Expr]]


class MappingError(ValueError):
    """The expression cannot be mapped (e.g. reduces to a constant)."""


def _canonical(expr: Expr) -> Expr:
    """Sort commutative operand lists so equal functions share structure."""
    if isinstance(expr, (Var, Const)):
        return expr
    if isinstance(expr, Not):
        return Not(_canonical(expr.operand))
    operands = tuple(
        sorted((_canonical(op) for op in expr.operands), key=str)
    )
    return type(expr)(operands)


class _Mapper:
    def __init__(
        self,
        builder: NetworkBuilder,
        prefix: str,
        var_nets: Mapping[str, str],
        style: str,
    ) -> None:
        if style not in ("direct", "nand"):
            raise ValueError(f"unknown mapping style {style!r}")
        self._builder = builder
        self._prefix = prefix
        self._var_nets = dict(var_nets)
        self._style = style
        self._cache: Dict[Expr, str] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    def net_for(self, expr: Expr) -> str:
        cached = self._cache.get(expr)
        if cached is not None:
            return cached
        net = self._map(expr)
        self._cache[expr] = net
        return net

    def _fresh(self) -> str:
        self._counter += 1
        return f"{self._prefix}_n{self._counter}"

    def _gate(self, spec_name: str, **pins: str) -> str:
        out = self._fresh()
        self._builder.gate(
            f"{self._prefix}_g{self._counter}", spec_name, Z=out, **pins
        )
        return out

    # ------------------------------------------------------------------
    def _map(self, expr: Expr) -> str:
        if isinstance(expr, Var):
            try:
                return self._var_nets[expr.name]
            except KeyError:
                raise MappingError(
                    f"no net bound to input variable {expr.name!r}"
                ) from None
        if isinstance(expr, Const):
            raise MappingError(
                "expression reduces to a constant; tie constants off "
                "outside the synthesised module"
            )
        if isinstance(expr, Not):
            return self._gate("INV", A=self.net_for(expr.operand))
        if isinstance(expr, And):
            return self._tree(expr.operands, self._and2)
        if isinstance(expr, Or):
            return self._tree(expr.operands, self._or2)
        if isinstance(expr, Xor):
            return self._tree(expr.operands, self._xor2)
        raise TypeError(f"unknown expression node {expr!r}")

    def _tree(self, operands, combine) -> str:
        nets: List[str] = [self.net_for(op) for op in operands]
        while len(nets) > 1:
            nxt: List[str] = []
            for index in range(0, len(nets) - 1, 2):
                nxt.append(combine(nets[index], nets[index + 1]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    # ------------------------------------------------------------------
    def _and2(self, a: str, b: str) -> str:
        if self._style == "direct":
            return self._gate("AND2", A=a, B=b)
        return self._gate("INV", A=self._gate("NAND2", A=a, B=b))

    def _or2(self, a: str, b: str) -> str:
        if self._style == "direct":
            return self._gate("OR2", A=a, B=b)
        # De Morgan: a | b = ~(~a & ~b).
        return self._gate(
            "NAND2",
            A=self._gate("INV", A=a),
            B=self._gate("INV", A=b),
        )

    def _xor2(self, a: str, b: str) -> str:
        if self._style == "direct":
            return self._gate("XOR2", A=a, B=b)
        # Four-NAND XOR.
        nab = self._gate("NAND2", A=a, B=b)
        return self._gate(
            "NAND2",
            A=self._gate("NAND2", A=a, B=nab),
            B=self._gate("NAND2", A=b, B=nab),
        )


def synthesize_into(
    builder: NetworkBuilder,
    equations: Equations,
    input_nets: Mapping[str, str],
    prefix: str = "syn",
    style: str = "direct",
) -> Dict[str, str]:
    """Map ``equations`` into ``builder``'s network.

    ``equations`` maps output names to expressions (strings or
    :class:`~repro.synth.expr.Expr`); ``input_nets`` binds expression
    variables to existing nets.  Returns output name -> produced net.
    Subexpressions are shared across all equations.
    """
    mapper = _Mapper(builder, prefix, input_nets, style)
    outputs: Dict[str, str] = {}
    for name, raw in equations.items():
        expr = _canonical(simplify(parse_expr(raw)))
        outputs[name] = mapper.net_for(expr)
    return outputs


def synthesize_module(
    name: str,
    equations: Equations,
    library,
    style: str = "direct",
) -> ModuleSpec:
    """Synthesise ``equations`` into a standalone combinational module.

    Input ports are the union of the equations' free variables; output
    ports are the equation names.
    """
    exprs = {
        out: _canonical(simplify(parse_expr(raw)))
        for out, raw in equations.items()
    }
    for out, expr in exprs.items():
        if isinstance(expr, Const):
            raise MappingError(
                f"equation {out!r} reduces to a constant; tie constants "
                "off outside the synthesised module"
            )
    all_vars = sorted(set().union(*(variables(e) for e in exprs.values())))
    if not all_vars:
        raise MappingError("equations use no variables")
    builder = NetworkBuilder(library, name=f"{name}_logic")
    # Port nets carry the variable names directly; a BUF per input port
    # gives every port net a combinational consumer even when a variable
    # is only used through sharing.
    var_nets = {var: var for var in all_vars}
    for var in all_vars:
        builder.network.net_or_create(var)
    outputs = synthesize_into(builder, exprs, var_nets, prefix="m", style=style)
    return ModuleSpec(
        name,
        ModuleDefinition(
            builder.build(),
            input_ports={var: var for var in all_vars},
            output_ports=outputs,
        ),
    )
