"""Repair of hold violations by delay insertion.

The paper's Algorithm 1 covers maximum-delay ("too slow") timing;
minimum-delay hazards are the other half of the problem.  Two distinct
checks exist in this repository:

* the paper's *supplementary path constraint*
  (:func:`repro.core.mindelay.check_min_delays`) -- its violations are
  multi-rate sampling mismatches that no finite padding can repair
  (adding enough minimum delay always overflows the tight pairing's
  maximum-delay budget);
* the classic *same-edge hold check*
  (:func:`repro.core.mindelay.check_hold`) -- a launch and a capture on
  the same ideal clock edge racing through a short path, typically
  caused by capture-side clock skew.  These are exactly what buffer
  insertion fixes, and that is what this module does.

Each pass re-estimates delays (inserted buffers add load), re-runs
Algorithm 1 and re-checks both hold and setup.  Insertion is bounded by
the endpoint's setup-side slack so the repair never flips a hold
violation into a setup violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cells.library import CellLibrary
from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import run_algorithm1
from repro.core.mindelay import HoldViolation, check_hold
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayParameters, estimate_delays
from repro.netlist.cell import Cell
from repro.netlist.network import Network


@dataclass
class HoldFixResult:
    """Outcome of the repair loop."""

    success: bool
    passes: int = 0
    #: capture cell -> number of buffers inserted in front of its D pin.
    buffers_inserted: Dict[str, int] = field(default_factory=dict)
    #: Endpoints left violated because padding would break setup timing.
    unfixable: List[HoldViolation] = field(default_factory=list)
    #: Whether max-delay timing still holds after the repair.
    setup_clean: bool = True

    @property
    def total_buffers(self) -> int:
        return sum(self.buffers_inserted.values())


def fix_hold_violations(
    network: Network,
    schedule: ClockSchedule,
    library: CellLibrary,
    buffer_spec: str = "BUF",
    max_passes: int = 10,
    setup_margin: float = 0.1,
    delay_params: Optional[DelayParameters] = None,
) -> HoldFixResult:
    """Insert buffers until :func:`check_hold` is clean (mutates the
    network)."""
    params = delay_params or DelayParameters()
    result = HoldFixResult(success=False)
    spec = library.spec(buffer_spec)
    counter = 0

    for pass_index in range(max_passes):
        delays = estimate_delays(network, params)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        outcome = run_algorithm1(model, engine)
        result.passes = pass_index + 1
        violations = check_hold(model, engine)
        if not violations:
            result.success = True
            result.setup_clean = outcome.intended
            break

        worst_by_cell: Dict[str, HoldViolation] = {}
        for violation in violations:
            cell_name = violation.capture_instance.split("@")[0]
            current = worst_by_cell.get(cell_name)
            if current is None or violation.amount > current.amount:
                worst_by_cell[cell_name] = violation

        # One buffer's min / max delay at a nominal load.
        buffer_min = max(
            min(arc.delay_at(1.0).best for arc in spec.arcs.values())
            * params.min_derate,
            1e-3,
        )
        buffer_max = max(
            arc.delay_at(2.0).worst for arc in spec.arcs.values()
        )

        progressed = False
        for cell_name, violation in sorted(worst_by_cell.items()):
            cell = network.cell(cell_name)
            count = max(1, math.ceil(violation.amount / buffer_min))
            setup_slack = outcome.slacks.capture.get(
                violation.capture_instance, math.inf
            )
            if setup_slack - count * buffer_max < setup_margin:
                if violation not in result.unfixable:
                    result.unfixable.append(violation)
                continue
            _insert_buffers(network, cell, spec, count, counter)
            counter += count
            result.buffers_inserted[cell_name] = (
                result.buffers_inserted.get(cell_name, 0) + count
            )
            progressed = True
        if not progressed:
            break
    return result


def _insert_buffers(
    network: Network, capture_cell: Cell, spec, count: int, counter: int
) -> None:
    """Insert a ``count``-long buffer chain before the capture's D pin."""
    data = capture_cell.data_input
    source_net = data.net
    assert source_net is not None
    current = source_net.name
    for index in range(count):
        name = f"holdfix_{counter + index}"
        buffer_cell = network.add_cell(Cell(name, spec))
        network.connect(current, buffer_cell.terminal("A"))
        current = f"{name}_z"
        network.connect(current, buffer_cell.terminal("Z"))
    network.reconnect_sink(data, current)
