"""Boolean expressions: AST, parser, evaluation, simplification.

Grammar (C-like precedence, ``~`` binds tightest)::

    expr   := xorex ('|' xorex)*
    xorex  := andex ('^' andex)*
    andex  := unary ('&' unary)*
    unary  := '~' unary | atom
    atom   := '0' | '1' | identifier | '(' expr ')'

>>> e = parse_expr("a & ~(b | c) ^ d")
>>> sorted(variables(e))
['a', 'b', 'c', 'd']
>>> evaluate(e, {"a": True, "b": False, "c": False, "d": False})
True
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Tuple, Union


class Expr:
    """Base class of expression nodes (immutable)."""

    __slots__ = ()

    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __xor__(self, other: "Expr") -> "Expr":
        return Xor((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    value: bool

    def __str__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def __str__(self) -> str:
        return f"~{_paren(self.operand)}"


@dataclass(frozen=True)
class And(Expr):
    operands: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " & ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Expr):
    operands: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " | ".join(_paren(op) for op in self.operands)


@dataclass(frozen=True)
class Xor(Expr):
    operands: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " ^ ".join(_paren(op) for op in self.operands)


def _paren(expr: Expr) -> str:
    if isinstance(expr, (Var, Const, Not)):
        return str(expr)
    return f"({expr})"


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------
class ParseError(ValueError):
    """Malformed boolean expression."""


_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_.\[\]]*|[01()&|^~])")


def _tokenize(text: str) -> Iterator[str]:
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(
                f"unexpected character {remainder[0]!r} in {text!r}"
            )
        yield match.group(1)
        position = match.end()


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(_tokenize(text))
        self._index = 0
        self._text = text

    def _peek(self) -> str:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return ""

    def _take(self) -> str:
        token = self._peek()
        self._index += 1
        return token

    def parse(self) -> Expr:
        expr = self._or()
        if self._peek():
            raise ParseError(
                f"trailing input {self._peek()!r} in {self._text!r}"
            )
        return expr

    def _or(self) -> Expr:
        operands = [self._xor()]
        while self._peek() == "|":
            self._take()
            operands.append(self._xor())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _xor(self) -> Expr:
        operands = [self._and()]
        while self._peek() == "^":
            self._take()
            operands.append(self._and())
        return operands[0] if len(operands) == 1 else Xor(tuple(operands))

    def _and(self) -> Expr:
        operands = [self._unary()]
        while self._peek() == "&":
            self._take()
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _unary(self) -> Expr:
        if self._peek() == "~":
            self._take()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        token = self._take()
        if token == "(":
            inner = self._or()
            if self._take() != ")":
                raise ParseError(f"missing ')' in {self._text!r}")
            return inner
        if token == "0":
            return Const(False)
        if token == "1":
            return Const(True)
        if not token:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        if token in ("&", "|", "^", ")"):
            raise ParseError(f"unexpected {token!r} in {self._text!r}")
        return Var(token)


def parse_expr(text: Union[str, Expr]) -> Expr:
    """Parse ``text`` into an expression (passes Expr through)."""
    if isinstance(text, Expr):
        return text
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# semantics
# ----------------------------------------------------------------------
def evaluate(expr: Expr, env: Mapping[str, bool]) -> bool:
    """Evaluate ``expr`` under an assignment of variables to booleans."""
    if isinstance(expr, Var):
        try:
            return bool(env[expr.name])
        except KeyError:
            raise KeyError(f"no value for variable {expr.name!r}") from None
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Not):
        return not evaluate(expr.operand, env)
    if isinstance(expr, And):
        return all(evaluate(op, env) for op in expr.operands)
    if isinstance(expr, Or):
        return any(evaluate(op, env) for op in expr.operands)
    if isinstance(expr, Xor):
        return sum(evaluate(op, env) for op in expr.operands) % 2 == 1
    raise TypeError(f"unknown expression node {expr!r}")


def variables(expr: Expr) -> FrozenSet[str]:
    """The free variables of ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, Not):
        return variables(expr.operand)
    return frozenset().union(*(variables(op) for op in expr.operands))


# ----------------------------------------------------------------------
# simplification
# ----------------------------------------------------------------------
def simplify(expr: Expr) -> Expr:
    """Constant folding, double-negation and duplicate elimination,
    associative flattening.  Purely structural -- no BDDs.

    Commutative operand lists come back in a canonical (sorted)
    order, so duplicate and complement detection is insensitive to
    how the input was written: ``(a | d) ^ (d | a)`` folds to ``0``
    just like ``x ^ x``.  Downstream consumers (the technology
    mapper's subexpression cache, ``synthesize_module``'s constant
    check) rely on this confluence -- without it, re-simplifying a
    canonicalised expression could fold further than the first pass
    and expose constants only after the constant check already ran.
    """
    if isinstance(expr, (Var, Const)):
        return expr
    if isinstance(expr, Not):
        operand = simplify(expr.operand)
        if isinstance(operand, Const):
            return Const(not operand.value)
        if isinstance(operand, Not):
            return operand.operand
        return Not(operand)
    if isinstance(expr, (And, Or)):
        is_and = isinstance(expr, And)
        absorbing = Const(not is_and)  # 0 for And, 1 for Or
        identity = Const(is_and)
        flattened = []
        seen = set()
        for raw in expr.operands:
            operand = simplify(raw)
            if type(operand) is type(expr):
                inner = operand.operands
            else:
                inner = (operand,)
            for item in inner:
                if item == absorbing:
                    return absorbing
                if item == identity:
                    continue
                # Complement law: x & ~x = 0, x | ~x = 1.
                complement = (
                    item.operand if isinstance(item, Not) else Not(item)
                )
                if complement in seen:
                    return absorbing
                if item not in seen:
                    seen.add(item)
                    flattened.append(item)
        if not flattened:
            return identity
        if len(flattened) == 1:
            return flattened[0]
        ordered = tuple(sorted(flattened, key=str))
        return And(ordered) if is_and else Or(ordered)
    if isinstance(expr, Xor):
        parity = False
        flattened = []
        for raw in expr.operands:
            operand = simplify(raw)
            if isinstance(operand, Const):
                parity ^= operand.value
                continue
            flattened.append(operand)
        # a ^ a = 0: cancel pairs.
        counted: Dict[Expr, int] = {}
        for item in flattened:
            counted[item] = counted.get(item, 0) + 1
        remaining = [item for item, count in counted.items() if count % 2]
        if not remaining:
            return Const(parity)
        result: Expr = (
            remaining[0]
            if len(remaining) == 1
            else Xor(tuple(sorted(remaining, key=str)))
        )
        if not parity:
            return result
        # Fold the parity inversion (avoiding Not(Not(x))).
        return result.operand if isinstance(result, Not) else Not(result)
    raise TypeError(f"unknown expression node {expr!r}")
