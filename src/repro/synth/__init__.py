"""Combinational logic synthesis front-end.

The paper's setting is a *logic synthesis environment*: "designs are
specified as high level descriptions of combinational logic modules and
of the interconnections between these modules and synchronising
elements".  This package provides that front-end substrate:

* :mod:`repro.synth.expr` -- boolean expression AST, parser, evaluator
  and simplifier,
* :mod:`repro.synth.mapper` -- technology mapping of expressions onto
  the standard-cell library (direct AND/OR/XOR style or NAND+INV style),
  with structural sharing of common subexpressions,
* :mod:`repro.synth.sizing` -- Singh-style timing optimisation by gate
  sizing: upsize cells on too-slow paths using Algorithm 2's delay
  budgets.
"""

from repro.synth.expr import Expr, evaluate, parse_expr, simplify, variables
from repro.synth.hold_fix import HoldFixResult, fix_hold_violations
from repro.synth.mapper import (
    synthesize_into,
    synthesize_module,
)
from repro.synth.sizing import SizingResult, size_for_timing

__all__ = [
    "Expr",
    "HoldFixResult",
    "SizingResult",
    "evaluate",
    "fix_hold_violations",
    "parse_expr",
    "simplify",
    "size_for_timing",
    "synthesize_into",
    "synthesize_module",
    "variables",
]
