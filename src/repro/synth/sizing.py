"""Timing optimisation by gate sizing (the Singh et al. [1] substitute).

Where :mod:`repro.core.resynthesis` models re-synthesis abstractly
(scaling a module's delays for an area charge), this module performs the
real operation on the netlist: cells on too-slow paths are swapped for
higher-drive variants of the same function (``NAND2 -> NAND2_X2 ->
NAND2_X4``).  A larger drive lowers the cell's resistance (faster under
load) but raises its input capacitance (loading its drivers) and area --
the genuine trade-off a gate sizer navigates, which is why each pass
re-estimates all delays before re-analysing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.cells.combinational import GateSpec
from repro.cells.delay import GateArc, LinearDelay
from repro.cells.library import CellLibrary
from repro.clocks.schedule import ClockSchedule
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.report import extract_slow_paths
from repro.core.slack import SlackEngine
from repro.delay.estimator import DelayParameters, estimate_delays
from repro.netlist.network import Network

#: Drive strengths added by :func:`add_drive_variants`.
DRIVE_STEPS: Tuple[int, ...] = (2, 4)


def scaled_variant(spec: GateSpec, drive: int) -> GateSpec:
    """A ``drive``-times stronger copy of ``spec``.

    Resistance divides by the drive, input capacitance and area multiply
    by it (wider transistors), intrinsic delay is unchanged.
    """
    if drive < 1:
        raise ValueError("drive must be >= 1")
    arcs = {
        pins: GateArc(
            unateness=arc.unateness,
            rise=LinearDelay(arc.rise.intrinsic, arc.rise.resistance / drive),
            fall=LinearDelay(arc.fall.intrinsic, arc.fall.resistance / drive),
        )
        for pins, arc in spec.arcs.items()
    }
    return replace(
        spec,
        name=f"{spec.name}_X{drive}",
        arcs=arcs,
        input_caps={
            pin: cap * drive for pin, cap in spec.input_caps.items()
        },
        area=spec.area * drive,
    )


def add_drive_variants(library: CellLibrary) -> CellLibrary:
    """A copy of ``library`` with X2/X4 variants of every plain gate."""
    variants = []
    for spec in library.gates():
        if "_X" in spec.name:
            continue
        for drive in DRIVE_STEPS:
            if not library.has(f"{spec.name}_X{drive}"):
                variants.append(scaled_variant(spec, drive))
    extended = CellLibrary(
        f"{library.name}+drives",
        [library.spec(name) for name in library.names],
    )
    for spec in variants:
        extended.register(spec)
    return extended


def _base_name(spec_name: str) -> str:
    return spec_name.split("_X")[0]


def _next_variant(
    library: CellLibrary, spec_name: str
) -> Optional[str]:
    """The next-larger drive variant available, or None at the top."""
    base = _base_name(spec_name)
    current = 1
    if "_X" in spec_name:
        current = int(spec_name.split("_X")[1])
    for drive in DRIVE_STEPS:
        if drive > current and library.has(f"{base}_X{drive}"):
            return f"{base}_X{drive}"
    return None


@dataclass
class SizingResult:
    """Outcome of the sizing loop."""

    success: bool
    passes: int = 0
    #: cell -> final spec name, for every cell that was resized.
    resized: Dict[str, str] = field(default_factory=dict)
    area_before: float = 0.0
    area_after: float = 0.0
    worst_slack_history: List[float] = field(default_factory=list)

    @property
    def area_increase(self) -> float:
        return self.area_after - self.area_before


def total_gate_area(network: Network) -> float:
    return sum(
        getattr(cell.spec, "area", 0.0)
        for cell in network.combinational_cells
    )


def size_for_timing(
    network: Network,
    schedule: ClockSchedule,
    library: CellLibrary,
    max_passes: int = 20,
    cells_per_pass: int = 8,
    delay_params: Optional[DelayParameters] = None,
) -> SizingResult:
    """Upsize gates on too-slow paths until timing is met (or no upsizing
    remains).  Mutates the network's cell specs in place.

    ``library`` must contain the drive variants
    (see :func:`add_drive_variants`).
    """
    result = SizingResult(success=False, area_before=total_gate_area(network))
    for pass_index in range(max_passes):
        with obs.span("sizing.pass", category="sizing", index=pass_index):
            obs.counter("sizing.passes")
            delays = estimate_delays(network, delay_params)
            model = AnalysisModel(network, schedule, delays)
            engine = SlackEngine(model)
            outcome = run_algorithm1(model, engine)
            result.passes = pass_index + 1
            result.worst_slack_history.append(outcome.worst_slack)
            if outcome.intended:
                result.success = True
                break
            paths = extract_slow_paths(
                model, engine, outcome.slacks.capture, limit=None
            )
            chosen = _select_upsizes(
                network, library, model, paths, cells_per_pass
            )
            if not chosen:
                break
            obs.counter("sizing.cells_resized", len(chosen))
            obs.event(
                "sizing.upsized",
                index=pass_index,
                cells=len(chosen),
                worst_slack=outcome.worst_slack,
            )
            for cell_name, variant in chosen.items():
                network.cell(cell_name).spec = library.spec(variant)
                result.resized[cell_name] = variant
    result.area_after = total_gate_area(network)
    return result


def _select_upsizes(
    network: Network,
    library: CellLibrary,
    model: AnalysisModel,
    paths,
    cells_per_pass: int,
) -> Dict[str, str]:
    """Pick the most critical upsizable cells across the slow paths."""
    scores: Dict[str, float] = {}
    for path in paths:
        weight = max(path.violation, 1e-6)
        for step in path.steps:
            cell = network.cell(step.cell_name)
            if _next_variant(library, cell.spec.name) is None:
                continue
            delay = model.delays.worst_arc_delay(cell)
            scores[step.cell_name] = scores.get(step.cell_name, 0.0) + (
                weight * delay
            )
    chosen: Dict[str, str] = {}
    for cell_name in sorted(scores, key=lambda n: (-scores[n], n)):
        if len(chosen) >= cells_per_pass:
            break
        variant = _next_variant(library, network.cell(cell_name).spec.name)
        if variant is not None:
            chosen[cell_name] = variant
    return chosen
