"""Component propagation-delay estimation.

The paper draws a sharp line between *component propagation-delay
estimation* and *system timing analysis*, so that "different delay
estimation methods may be combined".  This package is the estimation side:

* :mod:`repro.delay.estimator` walks a network, computes each output's
  connected load, evaluates the library's empirical delay expressions and
  produces a :class:`~repro.delay.estimator.DelayMap` -- the only timing
  input the system analysis consumes,
* :mod:`repro.delay.module_delay` combines standard-cell delays into
  pin-to-pin delays of hierarchical modules ("for combinational logic
  modules the delays have been combined to generate estimates of the
  module propagation delays", Section 8).
"""

from repro.delay.estimator import DelayMap, DelayParameters, SyncTiming, estimate_delays
from repro.delay.module_delay import module_pin_delays

__all__ = [
    "DelayMap",
    "DelayParameters",
    "SyncTiming",
    "estimate_delays",
    "module_pin_delays",
]
