"""Pin-to-pin delay estimation for hierarchical modules.

A module (SM1H style) is analysed as a single component whose input->output
propagation delays are the longest (and, for the minimum-delay extension,
shortest) paths through its inner standard-cell network.  This is the
"delays have been combined to generate estimates of the module propagation
delays" step of the paper's Section 8.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from repro.netlist.hierarchy import ModuleSpec
from repro.netlist.network import Network
from repro.rftime import RiseFall, max_over, min_over

if TYPE_CHECKING:  # pragma: no cover
    from repro.delay.estimator import DelayMap


def module_pin_delays(
    spec: ModuleSpec, inner_delays: "DelayMap"
) -> Dict[Tuple[str, str], Tuple[RiseFall, RiseFall]]:
    """Longest and shortest pin-to-pin delays through a module.

    Returns ``{(input port, output port): (max_delay, min_delay)}`` for
    every connected pair.  ``inner_delays`` must be a delay map for the
    module's inner network.
    """
    definition = spec.definition
    inner = definition.inner
    order = inner.comb_topological_cells()
    result: Dict[Tuple[str, str], Tuple[RiseFall, RiseFall]] = {}

    for in_port, in_net in definition.input_ports.items():
        longest = _propagate(inner, order, inner_delays, in_net, maximum=True)
        shortest = _propagate(inner, order, inner_delays, in_net, maximum=False)
        for out_port, out_net in definition.output_ports.items():
            max_delay = longest.get(out_net)
            if max_delay is None:
                continue
            min_delay = shortest[out_net]
            result[(in_port, out_port)] = (max_delay, min_delay)
    return result


def _propagate(
    inner: Network,
    order,
    delays: "DelayMap",
    source_net: str,
    maximum: bool,
) -> Dict[str, RiseFall]:
    """Single-source longest/shortest rise-fall delays, per net name."""
    arrival: Dict[str, RiseFall] = {source_net: RiseFall.both(0.0)}
    for cell in order:
        candidates: Dict[str, list] = {}
        for in_pin, out_pin in delays.arcs_of(cell):
            in_net = cell.terminal(in_pin).net
            out_net = cell.terminal(out_pin).net
            if in_net is None or out_net is None:
                continue
            at_input = arrival.get(in_net.name)
            if at_input is None:
                continue
            unateness = delays.arc_unateness(cell, in_pin, out_pin)
            arc = (
                delays.arc_delay(cell, in_pin, out_pin)
                if maximum
                else delays.arc_delay_min(cell, in_pin, out_pin)
            )
            if maximum:
                through = at_input.through_arc(unateness)
            else:
                # Shortest-path propagation uses the earlier of the two
                # input transitions for a non-unate arc.
                through = at_input.back_through_arc(unateness)
            candidates.setdefault(out_net.name, []).append(through.plus(arc))
        for net_name, values in candidates.items():
            combined = max_over(values) if maximum else min_over(values)
            existing = arrival.get(net_name)
            if existing is not None:
                combined = (
                    existing.max_with(combined)
                    if maximum
                    else existing.min_with(combined)
                )
            arrival[net_name] = combined
    return arrival
