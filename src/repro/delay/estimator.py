"""Load-dependent delay estimation over a network.

:func:`estimate_delays` computes every combinational arc's maximum and
minimum rise/fall propagation delay and every synchroniser's timing
parameters, producing the :class:`DelayMap` the system-level analysis
consumes.  The map also supports the interactive adjustments the paper's
Section 8 mentions ("Adjustments may also be made to component delays").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs
from repro.cells.combinational import GateSpec
from repro.cells.sequential import SyncSpec
from repro.netlist.cell import Cell
from repro.netlist.hierarchy import ModuleSpec
from repro.netlist.kinds import CellRole, Unateness
from repro.netlist.network import Network
from repro.rftime import RiseFall


@dataclass(frozen=True)
class DelayParameters:
    """Knobs of the empirical estimation.

    ``wire_cap_per_fanout`` models routing load in the pre-layout setting
    the paper targets (analysis inside the synthesis loop, before place and
    route).  ``min_derate`` converts maximum delays into the minimum delays
    used by the supplementary-constraint extension.  ``module_port_load``
    is the load assumed for nets driving a module's output ports when the
    module is characterised in isolation.
    """

    wire_cap_per_fanout: float = 0.4
    default_pin_cap: float = 1.0
    min_derate: float = 0.45
    module_port_load: float = 3.0
    dangling_output_load: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.min_derate <= 1:
            raise ValueError("min_derate must be in (0, 1]")


@dataclass(frozen=True)
class SyncTiming:
    """Per-instance synchroniser timing (the paper's Section 5 symbols).

    ``c_to_q_min`` is the derated minimum clock-to-output delay, used by
    the classic same-edge hold check (:func:`repro.core.mindelay.check_hold`).
    """

    setup: float  # D_setup
    d_to_q: float  # D_dz
    c_to_q: float  # D_cz
    hold: float
    c_to_q_min: float = 0.0


_ArcKey = Tuple[str, str, str]  # (cell name, input pin, output pin)


class DelayMap:
    """Estimated component delays for one network.

    Queried by the analysis through :meth:`arc_delay`,
    :meth:`arc_delay_min`, :meth:`arc_unateness`, :meth:`arcs_of` and
    :meth:`sync_timing`.  Immutable from the analysis's point of view;
    :meth:`with_scaled_cell` and :meth:`with_arc_override` return modified
    copies for what-if exploration and for the re-synthesis loop.
    """

    def __init__(
        self,
        arc_max: Dict[_ArcKey, RiseFall],
        arc_min: Dict[_ArcKey, RiseFall],
        arc_sense: Dict[_ArcKey, Unateness],
        cell_arcs: Dict[str, Tuple[Tuple[str, str], ...]],
        sync: Dict[str, SyncTiming],
    ) -> None:
        self._arc_max = arc_max
        self._arc_min = arc_min
        self._arc_sense = arc_sense
        self._cell_arcs = cell_arcs
        self._sync = sync

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def arcs_of(self, cell: Cell) -> Tuple[Tuple[str, str], ...]:
        """The (input pin, output pin) arcs of ``cell``."""
        return self._cell_arcs.get(cell.name, ())

    def arc_delay(self, cell: Cell, in_pin: str, out_pin: str) -> RiseFall:
        """Maximum propagation delay of an arc."""
        return self._arc_max[(cell.name, in_pin, out_pin)]

    def arc_delay_min(self, cell: Cell, in_pin: str, out_pin: str) -> RiseFall:
        """Minimum propagation delay of an arc."""
        return self._arc_min[(cell.name, in_pin, out_pin)]

    def arc_unateness(self, cell: Cell, in_pin: str, out_pin: str) -> Unateness:
        return self._arc_sense[(cell.name, in_pin, out_pin)]

    def sync_timing(self, cell: Cell) -> SyncTiming:
        """Timing parameters of a synchroniser instance."""
        try:
            return self._sync[cell.name]
        except KeyError:
            raise KeyError(
                f"{cell.name!r} has no synchroniser timing (role: "
                f"{cell.role.value})"
            ) from None

    def worst_arc_delay(self, cell: Cell) -> float:
        """Worst max delay over all arcs of ``cell`` (reporting aid)."""
        return max(
            (
                self._arc_max[(cell.name, i, o)].worst
                for i, o in self.arcs_of(cell)
            ),
            default=0.0,
        )

    # ------------------------------------------------------------------
    # what-if modification
    # ------------------------------------------------------------------
    def with_scaled_cell(self, cell_name: str, factor: float) -> "DelayMap":
        """A copy with every arc of ``cell_name`` scaled by ``factor``.

        This is the re-synthesis model's hook: "speeding up" a module
        multiplies its delays by a factor < 1.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        arc_max = dict(self._arc_max)
        arc_min = dict(self._arc_min)
        for key in self._cell_arcs.get(cell_name, ()):
            full_key = (cell_name, key[0], key[1])
            arc_max[full_key] = arc_max[full_key].scaled(factor)
            arc_min[full_key] = arc_min[full_key].scaled(factor)
        return DelayMap(
            arc_max, arc_min, self._arc_sense, self._cell_arcs, self._sync
        )

    def globally_scaled(self, factor: float) -> "DelayMap":
        """Every arc delay *and* every synchroniser parameter scaled.

        ``factor`` near zero approximates the paper's *ideal system*
        ("all synchronising elements switch with zero delay; ... other
        paths switch with arbitrarily small, but finite, delays") -- the
        reference the event simulator compares against.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return DelayMap(
            {k: v.scaled(factor) for k, v in self._arc_max.items()},
            {k: v.scaled(factor) for k, v in self._arc_min.items()},
            self._arc_sense,
            self._cell_arcs,
            {
                name: SyncTiming(
                    setup=t.setup * factor,
                    d_to_q=t.d_to_q * factor,
                    c_to_q=t.c_to_q * factor,
                    hold=t.hold * factor,
                    c_to_q_min=t.c_to_q_min * factor,
                )
                for name, t in self._sync.items()
            },
        )

    def with_arc_override(
        self,
        cell_name: str,
        in_pin: str,
        out_pin: str,
        max_delay: RiseFall,
        min_delay: Optional[RiseFall] = None,
    ) -> "DelayMap":
        """A copy with one arc's delays replaced."""
        key = (cell_name, in_pin, out_pin)
        if key not in self._arc_max:
            raise KeyError(f"no arc {in_pin}->{out_pin} on cell {cell_name!r}")
        arc_max = dict(self._arc_max)
        arc_min = dict(self._arc_min)
        arc_max[key] = max_delay
        arc_min[key] = min_delay if min_delay is not None else max_delay
        return DelayMap(
            arc_max, arc_min, self._arc_sense, self._cell_arcs, self._sync
        )


def terminal_load(
    network: Network, terminal, params: DelayParameters
) -> float:
    """Connected load seen by an output terminal."""
    net = terminal.net
    if net is None or not net.sinks:
        return params.dangling_output_load
    total = params.wire_cap_per_fanout * len(net.sinks)
    for sink in net.sinks:
        spec = sink.cell.spec
        cap_fn = getattr(spec, "input_cap", None)
        total += cap_fn(sink.pin) if cap_fn else params.default_pin_cap
    return total


def estimate_delays(
    network: Network, params: Optional[DelayParameters] = None
) -> DelayMap:
    """Estimate all component delays of ``network``."""
    with obs.span(
        "delay.estimate", category="delay", network=network.name
    ):
        return _estimate_delays(network, params)


def _estimate_delays(
    network: Network, params: Optional[DelayParameters]
) -> DelayMap:
    params = params or DelayParameters()
    arc_max: Dict[_ArcKey, RiseFall] = {}
    arc_min: Dict[_ArcKey, RiseFall] = {}
    arc_sense: Dict[_ArcKey, Unateness] = {}
    cell_arcs: Dict[str, Tuple[Tuple[str, str], ...]] = {}
    sync: Dict[str, SyncTiming] = {}
    module_cache: Dict[int, Dict] = {}
    cells_estimated = 0

    for cell in network.cells:
        cells_estimated += 1
        spec = cell.spec
        if isinstance(spec, SyncSpec):
            sync[cell.name] = SyncTiming(
                setup=spec.setup,
                d_to_q=spec.d_to_q,
                c_to_q=spec.c_to_q,
                hold=spec.hold,
                c_to_q_min=spec.c_to_q * params.min_derate,
            )
        elif isinstance(spec, ModuleSpec):
            pin_delays = module_cache.get(id(spec))
            if pin_delays is None:
                pin_delays = _characterise_module(spec, params)
                module_cache[id(spec)] = pin_delays
            pairs = []
            for (in_pin, out_pin), (dmax, dmin) in pin_delays.items():
                key = (cell.name, in_pin, out_pin)
                arc_max[key] = dmax
                arc_min[key] = dmin
                arc_sense[key] = Unateness.NON_UNATE
                pairs.append((in_pin, out_pin))
            cell_arcs[cell.name] = tuple(pairs)
        elif isinstance(spec, GateSpec):
            pairs = []
            for (in_pin, out_pin), arc in spec.arcs.items():
                load = terminal_load(network, cell.terminal(out_pin), params)
                delay = arc.delay_at(load)
                key = (cell.name, in_pin, out_pin)
                arc_max[key] = delay
                arc_min[key] = delay.scaled(params.min_derate)
                arc_sense[key] = arc.unateness
                pairs.append((in_pin, out_pin))
            cell_arcs[cell.name] = tuple(pairs)
        elif cell.role is CellRole.COMBINATIONAL:  # pragma: no cover
            raise TypeError(
                f"cell {cell.name!r} has unsupported combinational spec "
                f"{type(spec).__name__}"
            )
        # Clock sources and primary pads carry no delay arcs.

    rec = obs.active()
    if rec is not None:
        rec.counter("delay.cells_estimated", cells_estimated)
        rec.counter("delay.arcs_estimated", len(arc_max))
    return DelayMap(arc_max, arc_min, arc_sense, cell_arcs, sync)


def _characterise_module(spec: ModuleSpec, params: DelayParameters) -> Dict:
    """Pin-to-pin delays of a module, characterised in isolation.

    The module's inner network is estimated with the same parameters; nets
    feeding output ports additionally see ``module_port_load``.  The
    result is cached on the spec (library characterisation is done once,
    not per analysis), keyed by the estimation parameters.
    """
    from repro.delay.module_delay import module_pin_delays

    cache = getattr(spec, "_characterisation_cache", None)
    if cache is None:
        cache = {}
        spec._characterisation_cache = cache
    cached = cache.get(params)
    if cached is not None:
        return cached

    inner_map = estimate_delays(spec.definition.inner, params)
    inner_map = _add_port_loads(spec, params, inner_map)
    result = module_pin_delays(spec, inner_map)
    cache[params] = result
    return result


def _add_port_loads(
    spec: ModuleSpec, params: DelayParameters, inner_map: DelayMap
) -> DelayMap:
    """Re-estimate arcs that drive output-port nets with the port load.

    Arcs whose output net is a module port were estimated with only the
    net's inner sinks; add the assumed external load.
    """
    inner = spec.definition.inner
    port_nets = set(spec.definition.output_ports.values())
    adjusted = inner_map
    for cell in inner.cells:
        if not isinstance(cell.spec, GateSpec):
            continue
        for (in_pin, out_pin), arc in cell.spec.arcs.items():
            net = cell.terminal(out_pin).net
            if net is None or net.name not in port_nets:
                continue
            load = (
                terminal_load(inner, cell.terminal(out_pin), params)
                + params.module_port_load
            )
            delay = arc.delay_at(load)
            adjusted = adjusted.with_arc_override(
                cell.name,
                in_pin,
                out_pin,
                delay,
                delay.scaled(params.min_derate),
            )
    return adjusted


__all__ = [
    "DelayMap",
    "DelayParameters",
    "SyncTiming",
    "estimate_delays",
    "terminal_load",
]
