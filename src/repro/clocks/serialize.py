"""JSON (de)serialisation of clock schedules.

Times are written as exact strings (``"45"``, ``"12.5"``, ``"1/3"``) so
round-trips preserve the Fraction representation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.clocks.schedule import ClockSchedule
from repro.clocks.waveform import ClockWaveform


def _time_to_str(value) -> str:
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def schedule_to_dict(schedule: ClockSchedule) -> Dict[str, Any]:
    """Serialise a schedule to plain data."""
    return {
        "format": "repro-clocks-v1",
        "clocks": [
            {
                "name": w.name,
                "period": _time_to_str(w.period),
                "leading": _time_to_str(w.leading),
                "trailing": _time_to_str(w.trailing),
            }
            for w in schedule.waveforms()
        ],
    }


def schedule_from_dict(data: Dict[str, Any]) -> ClockSchedule:
    """Rebuild a schedule from :func:`schedule_to_dict` output."""
    if data.get("format") != "repro-clocks-v1":
        raise ValueError("not a repro clock schedule (missing format tag)")
    return ClockSchedule(
        ClockWaveform(
            entry["name"],
            entry["period"],
            entry["leading"],
            entry["trailing"],
        )
        for entry in data["clocks"]
    )


def save_schedule(schedule: ClockSchedule, path: Union[str, Path]) -> None:
    Path(path).write_text(json.dumps(schedule_to_dict(schedule), indent=2))


def load_schedule(path: Union[str, Path]) -> ClockSchedule:
    return schedule_from_dict(json.loads(Path(path).read_text()))
