"""Single clock waveforms.

A :class:`ClockWaveform` is a periodic signal with exactly one pulse per
period, described by the times of its *leading* and *trailing* edges within
the period.  All ideal times are exact :class:`~fractions.Fraction` values;
``as_time`` converts user input (int, float, str, Fraction) to that
representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

TimeLike = Union[int, float, str, Fraction]

#: Denominator bound used when converting floats to exact times.  Clock
#: descriptions are human-authored round numbers; a billionth resolution is
#: far finer than any of them while keeping Fractions small.
_FLOAT_DENOMINATOR_LIMIT = 10**9


def as_time(value: TimeLike) -> Fraction:
    """Convert ``value`` to an exact time.

    ints, strings (e.g. ``"12.5"``) and Fractions convert exactly; floats are
    snapped to the nearest fraction with denominator at most ``10**9`` so
    that e.g. ``0.1`` means one tenth rather than its binary approximation.

    >>> as_time(0.1) == Fraction(1, 10)
    True
    >>> as_time("25") == 25
    True
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(_FLOAT_DENOMINATOR_LIMIT)
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as a time")


@dataclass(frozen=True)
class ClockWaveform:
    """One clock signal: a periodic waveform with one pulse per period.

    Parameters
    ----------
    name:
        Identifier of the clock generator output terminal.
    period:
        Clock period (must be positive).
    leading:
        Time of the leading (pulse-asserting) edge within ``[0, period)``.
    trailing:
        Time of the trailing (pulse-removing) edge.  Must satisfy
        ``leading < trailing < leading + period`` so the pulse has positive
        width and positive off time; the trailing edge may wrap past the end
        of the period (it is stored un-normalised; use :meth:`trailing_mod`
        for the in-period value).
    """

    name: str
    period: Fraction
    leading: Fraction
    trailing: Fraction

    def __init__(
        self,
        name: str,
        period: TimeLike,
        leading: TimeLike,
        trailing: TimeLike,
    ) -> None:
        period_t = as_time(period)
        leading_t = as_time(leading)
        trailing_t = as_time(trailing)
        if period_t <= 0:
            raise ValueError(f"clock {name!r}: period must be positive")
        if not 0 <= leading_t < period_t:
            raise ValueError(
                f"clock {name!r}: leading edge {leading_t} outside [0, period)"
            )
        if trailing_t <= leading_t:
            trailing_t += period_t
        if not leading_t < trailing_t < leading_t + period_t:
            raise ValueError(
                f"clock {name!r}: trailing edge must fall strictly within one "
                f"period after the leading edge"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "period", period_t)
        object.__setattr__(self, "leading", leading_t)
        object.__setattr__(self, "trailing", trailing_t)

    @property
    def width(self) -> Fraction:
        """Width of the control pulse (the paper's ``W``)."""
        return self.trailing - self.leading

    def trailing_mod(self) -> Fraction:
        """Trailing edge time normalised into ``[0, period)``."""
        return self.trailing % self.period

    def is_high(self, t: TimeLike) -> bool:
        """True when the waveform is asserted at time ``t``."""
        phase = (as_time(t) - self.leading) % self.period
        return phase < self.width

    def shifted(self, delta: TimeLike) -> "ClockWaveform":
        """A copy of this waveform with both edges moved by ``delta``."""
        delta_t = as_time(delta)
        return ClockWaveform(
            self.name,
            self.period,
            (self.leading + delta_t) % self.period,
            # ClockWaveform.__init__ re-normalises the trailing edge.
            (self.trailing + delta_t) % self.period,
        )

    def with_width(self, width: TimeLike) -> "ClockWaveform":
        """A copy with the same leading edge but a new pulse width."""
        width_t = as_time(width)
        return ClockWaveform(
            self.name, self.period, self.leading, self.leading + width_t
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ClockWaveform({self.name!r}, period={self.period}, "
            f"leading={self.leading}, trailing={self.trailing})"
        )
