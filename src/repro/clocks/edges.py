"""Clock edges and pulses within the overall period.

A :class:`Pulse` is one assertion of a clock within the overall period; it
owns a leading and a trailing :class:`ClockEdge`.  Synchronising elements
clocked faster than the overall period are expanded into one generic
instance per pulse (paper, Section 4), so pulses carry an index.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction


class EdgeKind(enum.Enum):
    """Which transition of a clock pulse an edge is."""

    LEADING = "leading"
    TRAILING = "trailing"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class ClockEdge:
    """One clock transition within the overall period.

    Ordering is by ``(time, clock, kind, pulse_index)`` so sorted sequences
    of edges are chronological with a deterministic tie-break for coincident
    edges of different clocks.
    """

    time: Fraction
    clock: str
    kind: EdgeKind = EdgeKind.LEADING
    pulse_index: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("edge time must be non-negative")

    @property
    def label(self) -> str:
        """Short human-readable identifier, e.g. ``phi1.lead[0]``."""
        return f"{self.clock}.{'lead' if self.kind is EdgeKind.LEADING else 'trail'}[{self.pulse_index}]"

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class Pulse:
    """One pulse of a clock within the overall period.

    Edge times are normalised into ``[0, overall_period)``; a trailing edge
    that wraps past the end of the overall period therefore has a time
    *smaller* than the leading edge, which is why the pulse width is stored
    explicitly rather than derived.
    """

    clock: str
    index: int
    leading: ClockEdge
    trailing: ClockEdge
    width: Fraction

    def __post_init__(self) -> None:
        if self.leading.kind is not EdgeKind.LEADING:
            raise ValueError("pulse leading edge must be a LEADING edge")
        if self.trailing.kind is not EdgeKind.TRAILING:
            raise ValueError("pulse trailing edge must be a TRAILING edge")
        if self.width <= 0:
            raise ValueError("pulse width must be positive")

    @property
    def label(self) -> str:
        return f"{self.clock}[{self.index}]"

    def __str__(self) -> str:
        return self.label
