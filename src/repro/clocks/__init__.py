"""Clock substrate: waveforms, harmonic schedules and clock edges.

The paper (Section 3) assumes *synchronous* operation: all clock waveforms
have harmonically related frequencies and there is an overall period that is
an integer multiple of the period of each clock signal.  This package models

* :class:`~repro.clocks.waveform.ClockWaveform` -- one clock signal with one
  pulse per period,
* :class:`~repro.clocks.schedule.ClockSchedule` -- a set of waveforms with a
  common overall period, expanded into per-period pulses and edges,
* :class:`~repro.clocks.edges.ClockEdge` / :class:`~repro.clocks.edges.Pulse`
  -- the individual clock transitions the analysis reasons about.

Ideal clock-edge times are kept as exact :class:`fractions.Fraction` values
so that modular arithmetic on the overall period (Section 7's "breaking open"
of the clock cycle) never suffers floating point drift.
"""

from repro.clocks.edges import ClockEdge, EdgeKind, Pulse
from repro.clocks.schedule import ClockSchedule
from repro.clocks.serialize import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.clocks.waveform import ClockWaveform, as_time

__all__ = [
    "ClockEdge",
    "ClockSchedule",
    "ClockWaveform",
    "EdgeKind",
    "Pulse",
    "as_time",
    "load_schedule",
    "save_schedule",
    "schedule_from_dict",
    "schedule_to_dict",
]
