"""Harmonic clock schedules.

A :class:`ClockSchedule` collects the clock waveforms driving a design and
derives the *overall period*: the least common multiple of the individual
periods (Section 3 requires all frequencies to be harmonically related).
Within one overall period every clock contributes ``multiplier`` pulses;
each pulse yields a leading and a trailing :class:`~repro.clocks.edges.ClockEdge`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.clocks.edges import ClockEdge, EdgeKind, Pulse
from repro.clocks.waveform import ClockWaveform, TimeLike, as_time


def _lcm_fraction(values: Sequence[Fraction]) -> Fraction:
    """Least common multiple of positive fractions.

    ``lcm(a1/b1, a2/b2) = lcm(a1, a2) / gcd(b1, b2)``.
    """
    if not values:
        raise ValueError("need at least one value")
    numerator = values[0].numerator
    denominator = values[0].denominator
    for value in values[1:]:
        numerator = numerator * value.numerator // math.gcd(
            numerator, value.numerator
        )
        denominator = math.gcd(denominator, value.denominator)
    return Fraction(numerator, denominator)


class ClockSchedule:
    """The set of clock waveforms synchronising a design.

    Parameters
    ----------
    waveforms:
        The clock waveforms.  Names must be unique.  Periods must be
        harmonically related (each must divide the least common multiple an
        integer number of times -- automatic for an LCM, but the LCM itself
        must stay finite, which :func:`_lcm_fraction` guarantees for
        rational periods).

    The schedule is immutable; the what-if helpers (:meth:`replace`,
    :meth:`with_shifted_clock`, ...) return new schedules.
    """

    def __init__(self, waveforms: Iterable[ClockWaveform]) -> None:
        self._waveforms: Dict[str, ClockWaveform] = {}
        for waveform in waveforms:
            if waveform.name in self._waveforms:
                raise ValueError(f"duplicate clock name {waveform.name!r}")
            self._waveforms[waveform.name] = waveform
        if not self._waveforms:
            raise ValueError("a clock schedule needs at least one clock")
        self._overall_period = _lcm_fraction(
            [w.period for w in self._waveforms.values()]
        )
        self._pulses: Dict[str, Tuple[Pulse, ...]] = {
            name: self._expand_pulses(waveform)
            for name, waveform in self._waveforms.items()
        }

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def single(
        cls,
        name: str = "clk",
        period: TimeLike = 100,
        leading: TimeLike = 0,
        trailing: Optional[TimeLike] = None,
    ) -> "ClockSchedule":
        """A one-clock schedule; the pulse defaults to a 50% duty cycle."""
        period_t = as_time(period)
        if trailing is None:
            trailing = as_time(leading) + period_t / 2
        return cls([ClockWaveform(name, period_t, leading, trailing)])

    @classmethod
    def two_phase(
        cls,
        period: TimeLike = 100,
        width: Optional[TimeLike] = None,
        names: Tuple[str, str] = ("phi1", "phi2"),
    ) -> "ClockSchedule":
        """A classic non-overlapping two-phase schedule.

        ``phi1`` pulses in the first half of the period and ``phi2`` in the
        second half; ``width`` defaults to 40% of the period, leaving a 10%
        non-overlap gap on each side.
        """
        period_t = as_time(period)
        width_t = as_time(width) if width is not None else period_t * 2 / 5
        if not 0 < width_t < period_t / 2:
            raise ValueError("two-phase pulse width must be in (0, period/2)")
        gap = (period_t / 2 - width_t) / 2
        return cls(
            [
                ClockWaveform(names[0], period_t, gap, gap + width_t),
                ClockWaveform(
                    names[1], period_t, period_t / 2 + gap, period_t / 2 + gap + width_t
                ),
            ]
        )

    def _expand_pulses(self, waveform: ClockWaveform) -> Tuple[Pulse, ...]:
        multiplier = self._overall_period / waveform.period
        assert multiplier.denominator == 1, "LCM must be an integer multiple"
        pulses: List[Pulse] = []
        for index in range(int(multiplier)):
            base = index * waveform.period
            lead_time = (base + waveform.leading) % self._overall_period
            trail_time = (base + waveform.trailing) % self._overall_period
            leading = ClockEdge(lead_time, waveform.name, EdgeKind.LEADING, index)
            trailing = ClockEdge(
                trail_time, waveform.name, EdgeKind.TRAILING, index
            )
            pulses.append(
                Pulse(waveform.name, index, leading, trailing, waveform.width)
            )
        return tuple(pulses)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def overall_period(self) -> Fraction:
        """The overall period: LCM of all clock periods."""
        return self._overall_period

    @property
    def clock_names(self) -> Tuple[str, ...]:
        return tuple(self._waveforms)

    def waveform(self, name: str) -> ClockWaveform:
        try:
            return self._waveforms[name]
        except KeyError:
            raise KeyError(f"no clock named {name!r}") from None

    def waveforms(self) -> Tuple[ClockWaveform, ...]:
        return tuple(self._waveforms.values())

    def multiplier(self, name: str) -> int:
        """How many pulses clock ``name`` contributes per overall period."""
        return len(self._pulses[self.waveform(name).name])

    def pulses(self, name: str) -> Tuple[Pulse, ...]:
        """The pulses of clock ``name`` within one overall period."""
        self.waveform(name)
        return self._pulses[name]

    def all_pulses(self) -> Tuple[Pulse, ...]:
        return tuple(
            pulse for pulses in self._pulses.values() for pulse in pulses
        )

    def all_edges(self) -> Tuple[ClockEdge, ...]:
        """Every clock edge within the overall period, chronologically."""
        edges = [
            edge
            for pulse in self.all_pulses()
            for edge in (pulse.leading, pulse.trailing)
        ]
        return tuple(sorted(edges))

    def edge_times(self) -> Tuple[Fraction, ...]:
        """Sorted distinct edge times within the overall period."""
        return tuple(sorted({edge.time for edge in self.all_edges()}))

    # ------------------------------------------------------------------
    # what-if modification (interactive mode, paper Section 8)
    # ------------------------------------------------------------------
    def replace(self, waveform: ClockWaveform) -> "ClockSchedule":
        """A new schedule with the same clocks, one waveform replaced."""
        self.waveform(waveform.name)
        updated = dict(self._waveforms)
        updated[waveform.name] = waveform
        return ClockSchedule(updated.values())

    def with_shifted_clock(self, name: str, delta: TimeLike) -> "ClockSchedule":
        """Shift both edges of clock ``name`` by ``delta``."""
        return self.replace(self.waveform(name).shifted(delta))

    def with_pulse_width(self, name: str, width: TimeLike) -> "ClockSchedule":
        """Change the pulse width of clock ``name``."""
        return self.replace(self.waveform(name).with_width(width))

    def scaled(self, factor: TimeLike) -> "ClockSchedule":
        """A new schedule with every period and edge scaled by ``factor``.

        Used by the maximum-frequency search: scaling all waveforms keeps
        duty cycles and phase relationships while changing the clock speed.
        """
        factor_t = as_time(factor)
        if factor_t <= 0:
            raise ValueError("scale factor must be positive")
        return ClockSchedule(
            ClockWaveform(
                w.name,
                w.period * factor_t,
                w.leading * factor_t,
                w.trailing * factor_t,
            )
            for w in self._waveforms.values()
        )

    def describe(self) -> str:
        """Multi-line human-readable summary of the schedule."""
        lines = [f"overall period: {self._overall_period}"]
        for name, waveform in self._waveforms.items():
            lines.append(
                f"  {name}: period={waveform.period} "
                f"pulse=[{waveform.leading}, {waveform.trailing}) "
                f"x{self.multiplier(name)}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ClockSchedule({list(self._waveforms.values())!r})"

