"""Fluent construction API for networks.

Example
-------
>>> from repro.cells import standard_library
>>> from repro.netlist import NetworkBuilder
>>> lib = standard_library()
>>> b = NetworkBuilder(lib, name="demo")
>>> b.clock("phi1")                                    # doctest: +ELLIPSIS
Cell(...)
>>> b.input("in_a", "n_a", clock="phi1")               # doctest: +ELLIPSIS
Cell(...)
>>> b.gate("g1", "INV", A="n_a", Z="n_b")              # doctest: +ELLIPSIS
Cell(...)
>>> b.latch("l1", "DLATCH", D="n_b", G="phi1", Q="n_c")  # doctest: +ELLIPSIS
Cell(...)
>>> b.output("out", "n_c", clock="phi1")               # doctest: +ELLIPSIS
Cell(...)
>>> net = b.build()
>>> net.num_cells
5
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Protocol

from repro.netlist.cell import Cell
from repro.netlist.kinds import CellSpecLike
from repro.netlist.network import Network
from repro.netlist.ports import (
    CLOCK_SOURCE_SPEC,
    PRIMARY_INPUT_SPEC,
    PRIMARY_OUTPUT_SPEC,
)


class SpecSource(Protocol):
    """Anything that can resolve a spec name (e.g. a CellLibrary)."""

    def spec(self, name: str) -> CellSpecLike: ...


class NetworkBuilder:
    """Incrementally build a :class:`~repro.netlist.network.Network`.

    Pin-to-net bindings are given as keyword arguments, pin name -> net
    name.  Nets are created on first use.
    """

    def __init__(
        self, library: Optional[SpecSource] = None, name: str = "top"
    ) -> None:
        self._library = library
        self._network = Network(name)

    @property
    def network(self) -> Network:
        """The network under construction (also returned by :meth:`build`)."""
        return self._network

    # ------------------------------------------------------------------
    # cells
    # ------------------------------------------------------------------
    def instantiate(
        self,
        name: str,
        spec: CellSpecLike,
        attrs: Optional[Dict[str, Any]] = None,
        **pins: str,
    ) -> Cell:
        """Add a cell with an explicit spec object and connect its pins."""
        cell = self._network.add_cell(Cell(name, spec, attrs))
        for pin, net_name in pins.items():
            self._network.connect(net_name, cell.terminal(pin))
        return cell

    def gate(
        self,
        name: str,
        spec_name: str,
        attrs: Optional[Dict[str, Any]] = None,
        **pins: str,
    ) -> Cell:
        """Add a library cell by spec name (requires a library)."""
        if self._library is None:
            raise ValueError("builder was created without a cell library")
        return self.instantiate(name, self._library.spec(spec_name), attrs, **pins)

    #: Synchroniser instantiation reads identically to a gate; the alias
    #: exists so that netlist-construction code states intent.
    latch = gate

    def clock(self, clock_name: str, net_name: Optional[str] = None) -> Cell:
        """Add a clock generator driving net ``net_name`` (default: the
        clock's own name)."""
        return self.instantiate(
            f"clkgen_{clock_name}",
            CLOCK_SOURCE_SPEC,
            attrs={"clock": clock_name},
            Z=net_name or clock_name,
        )

    def input(
        self,
        name: str,
        net_name: str,
        clock: str,
        edge: str = "trailing",
        pulse_index: int = 0,
        offset: float = 0.0,
    ) -> Cell:
        """Add a primary input pad asserting onto ``net_name``."""
        return self.instantiate(
            name,
            PRIMARY_INPUT_SPEC,
            attrs={
                "clock": clock,
                "edge": edge,
                "pulse_index": pulse_index,
                "offset": offset,
            },
            Z=net_name,
        )

    def output(
        self,
        name: str,
        net_name: str,
        clock: str,
        edge: str = "trailing",
        pulse_index: int = 0,
        offset: float = 0.0,
    ) -> Cell:
        """Add a primary output pad capturing from ``net_name``."""
        return self.instantiate(
            name,
            PRIMARY_OUTPUT_SPEC,
            attrs={
                "clock": clock,
                "edge": edge,
                "pulse_index": pulse_index,
                "offset": offset,
            },
            A=net_name,
        )

    # ------------------------------------------------------------------
    # finishing
    # ------------------------------------------------------------------
    def build(self) -> Network:
        """Return the constructed network."""
        return self._network
