"""Specs for network boundary cells: clock sources and primary I/O pads.

The paper's analysis model assumes every transition originates at a
synchronising element output and every combinational path ends at a
synchronising element input.  Primary inputs and outputs are therefore
modelled as zero-freedom boundary elements: a primary input asserts its
signal at a specified clock edge plus an offset (its external arrival
time), and a primary output closes at a specified clock edge plus an
offset (its external required time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.netlist.kinds import CellRole, SyncStyle


@dataclass(frozen=True)
class ClockSourceSpec:
    """Output terminal of a clock generator.

    The instance's ``attrs['clock']`` (or its cell name, by default) names
    the :class:`~repro.clocks.waveform.ClockWaveform` it produces.
    """

    name: str = "CLOCK"
    role: CellRole = CellRole.CLOCK_SOURCE
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ("Z",)
    control: Optional[str] = None
    sync_style: Optional[SyncStyle] = None


@dataclass(frozen=True)
class PrimaryInputSpec:
    """Primary input pad.

    Timing attributes on the instance:

    ``clock``
        Name of the clock whose edge the external agent launches from.
    ``edge``
        ``"leading"`` or ``"trailing"`` (default ``"trailing"``).
    ``pulse_index``
        Which pulse within the overall period (default 0).
    ``offset``
        Arrival offset after that edge (default 0.0).
    """

    name: str = "INPUT"
    role: CellRole = CellRole.PRIMARY_INPUT
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ("Z",)
    control: Optional[str] = None
    sync_style: Optional[SyncStyle] = None


@dataclass(frozen=True)
class PrimaryOutputSpec:
    """Primary output pad.

    Timing attributes on the instance mirror :class:`PrimaryInputSpec`,
    with ``offset`` giving the external required time relative to the edge.
    """

    name: str = "OUTPUT"
    role: CellRole = CellRole.PRIMARY_OUTPUT
    inputs: Tuple[str, ...] = ("A",)
    outputs: Tuple[str, ...] = ()
    control: Optional[str] = None
    sync_style: Optional[SyncStyle] = None


CLOCK_SOURCE_SPEC = ClockSourceSpec()
PRIMARY_INPUT_SPEC = PrimaryInputSpec()
PRIMARY_OUTPUT_SPEC = PrimaryOutputSpec()
