"""Cell instances."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.netlist.kinds import CellRole, CellSpecLike, SyncStyle
from repro.netlist.terminals import Terminal, TerminalKind


class Cell:
    """One instance of a library cell (or module) in a network.

    Parameters
    ----------
    name:
        Instance name, unique within its network.
    spec:
        The cell spec (see :class:`~repro.netlist.kinds.CellSpecLike`)
        describing pins and role.
    attrs:
        Free-form attributes.  Used for e.g. primary-input arrival
        specifications (``clock``, ``pulse_index``, ``offset``) and module
        bindings; the netlist itself does not interpret them.
    """

    __slots__ = ("name", "spec", "attrs", "_terminals")

    def __init__(
        self,
        name: str,
        spec: CellSpecLike,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.spec = spec
        self.attrs: Dict[str, Any] = dict(attrs or {})
        terminals: Dict[str, Terminal] = {}
        for pin in spec.inputs:
            terminals[pin] = Terminal(self, pin, TerminalKind.INPUT)
        for pin in spec.outputs:
            if pin in terminals:
                raise ValueError(f"cell {name!r}: duplicate pin {pin!r}")
            terminals[pin] = Terminal(self, pin, TerminalKind.OUTPUT)
        if spec.control is not None:
            if spec.control in terminals:
                raise ValueError(
                    f"cell {name!r}: control pin {spec.control!r} collides"
                )
            terminals[spec.control] = Terminal(
                self, spec.control, TerminalKind.CONTROL
            )
        self._terminals = terminals

    # ------------------------------------------------------------------
    # role shortcuts
    # ------------------------------------------------------------------
    @property
    def role(self) -> CellRole:
        return self.spec.role

    @property
    def is_combinational(self) -> bool:
        return self.role is CellRole.COMBINATIONAL

    @property
    def is_synchroniser(self) -> bool:
        return self.role is CellRole.SYNCHRONISER

    @property
    def is_clock_source(self) -> bool:
        return self.role is CellRole.CLOCK_SOURCE

    @property
    def sync_style(self) -> Optional[SyncStyle]:
        return self.spec.sync_style

    # ------------------------------------------------------------------
    # terminal access
    # ------------------------------------------------------------------
    def terminal(self, pin: str) -> Terminal:
        try:
            return self._terminals[pin]
        except KeyError:
            raise KeyError(
                f"cell {self.name!r} ({self.spec.name}) has no pin {pin!r}"
            ) from None

    def terminals(self) -> Tuple[Terminal, ...]:
        return tuple(self._terminals.values())

    @property
    def input_terminals(self) -> Tuple[Terminal, ...]:
        return tuple(self.terminal(pin) for pin in self.spec.inputs)

    @property
    def output_terminals(self) -> Tuple[Terminal, ...]:
        return tuple(self.terminal(pin) for pin in self.spec.outputs)

    @property
    def control_terminal(self) -> Optional[Terminal]:
        if self.spec.control is None:
            return None
        return self.terminal(self.spec.control)

    @property
    def data_input(self) -> Terminal:
        """The data input of a synchroniser (which has exactly one)."""
        if not self.is_synchroniser:
            raise ValueError(f"{self.name!r} is not a synchroniser")
        (terminal,) = self.input_terminals
        return terminal

    @property
    def data_output(self) -> Terminal:
        """The data output of a synchroniser (which has exactly one)."""
        if not self.is_synchroniser:
            raise ValueError(f"{self.name!r} is not a synchroniser")
        (terminal,) = self.output_terminals
        return terminal

    def __repr__(self) -> str:
        return f"Cell({self.name!r}, {self.spec.name})"
