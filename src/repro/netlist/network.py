"""The flat network container and its graph queries."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole
from repro.netlist.net import Net
from repro.netlist.terminals import Terminal


class CombinationalCycleError(ValueError):
    """Raised when the combinational portion of a network has a directed
    cycle, violating the paper's Section 3 assumption."""

    def __init__(self, cells: List[str]) -> None:
        self.cells = cells
        super().__init__(
            "combinational logic contains a directed cycle through: "
            + ", ".join(sorted(cells))
        )


class Network:
    """A flat network of cells and nets.

    The network is a plain container plus graph queries; all timing
    semantics live in :mod:`repro.core`.  Cells and nets are identified by
    unique names.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._nets: Dict[str, Net] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_cell(self, cell: Cell) -> Cell:
        if cell.name in self._cells:
            raise ValueError(f"duplicate cell name {cell.name!r}")
        self._cells[cell.name] = cell
        return cell

    def add_net(self, name: str) -> Net:
        if name in self._nets:
            raise ValueError(f"duplicate net name {name!r}")
        net = Net(name)
        self._nets[name] = net
        return net

    def net_or_create(self, name: str) -> Net:
        net = self._nets.get(name)
        if net is None:
            net = self.add_net(name)
        return net

    def connect(self, net_name: str, terminal: Terminal) -> Net:
        """Attach ``terminal`` to the net called ``net_name`` (created on
        first use)."""
        net = self.net_or_create(net_name)
        net.attach(terminal)
        return net

    def remove_cell(self, name: str) -> None:
        """Remove a cell, detaching its terminals from their nets."""
        cell = self.cell(name)
        for terminal in cell.terminals():
            net = terminal.net
            if net is None:
                continue
            if terminal in net.drivers:
                net.drivers.remove(terminal)
            if terminal in net.sinks:
                net.sinks.remove(terminal)
            terminal.net = None
        del self._cells[name]

    def reconnect_sink(self, terminal: Terminal, net_name: str) -> Net:
        """Move a sink terminal onto another net (netlist surgery, e.g.
        buffer insertion).  The terminal must currently be a sink."""
        if terminal.is_driver:
            raise ValueError(
                f"{terminal.full_name} is a driver; only sinks can be "
                "reconnected"
            )
        old = terminal.net
        if old is not None:
            old.sinks.remove(terminal)
            terminal.net = None
        return self.connect(net_name, terminal)

    def remove_net_if_empty(self, name: str) -> bool:
        net = self._nets.get(name)
        if net is not None and not net.drivers and not net.sinks:
            del self._nets[name]
            return True
        return False

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"no cell named {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise KeyError(f"no net named {name!r}") from None

    def has_cell(self, name: str) -> bool:
        return name in self._cells

    @property
    def cells(self) -> Tuple[Cell, ...]:
        return tuple(self._cells.values())

    @property
    def nets(self) -> Tuple[Net, ...]:
        return tuple(self._nets.values())

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    def cells_with_role(self, role: CellRole) -> Tuple[Cell, ...]:
        return tuple(c for c in self._cells.values() if c.role is role)

    @property
    def combinational_cells(self) -> Tuple[Cell, ...]:
        return self.cells_with_role(CellRole.COMBINATIONAL)

    @property
    def synchronisers(self) -> Tuple[Cell, ...]:
        return self.cells_with_role(CellRole.SYNCHRONISER)

    @property
    def clock_sources(self) -> Tuple[Cell, ...]:
        return self.cells_with_role(CellRole.CLOCK_SOURCE)

    @property
    def primary_inputs(self) -> Tuple[Cell, ...]:
        return self.cells_with_role(CellRole.PRIMARY_INPUT)

    @property
    def primary_outputs(self) -> Tuple[Cell, ...]:
        return self.cells_with_role(CellRole.PRIMARY_OUTPUT)

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    def driver_of(self, terminal: Terminal) -> Optional[Terminal]:
        """The terminal driving ``terminal``'s net (None if undriven).

        For tristate buses with several drivers the caller must use
        ``terminal.net.drivers`` directly.
        """
        net = terminal.net
        if net is None or not net.drivers:
            return None
        if len(net.drivers) > 1:
            raise ValueError(
                f"net {net.name!r} has multiple drivers; "
                "resolve tristate buses explicitly"
            )
        return net.drivers[0]

    def sinks_of(self, terminal: Terminal) -> Tuple[Terminal, ...]:
        """The sink terminals on ``terminal``'s net."""
        net = terminal.net
        if net is None:
            return ()
        return tuple(net.sinks)

    def comb_fanin_cells(self, cell: Cell) -> Iterator[Cell]:
        """Combinational cells driving any data input of ``cell``."""
        seen = set()
        for terminal in cell.input_terminals:
            net = terminal.net
            if net is None:
                continue
            for driver in net.drivers:
                upstream = driver.cell
                if upstream.is_combinational and upstream.name not in seen:
                    seen.add(upstream.name)
                    yield upstream

    def comb_fanout_cells(self, cell: Cell) -> Iterator[Cell]:
        """Combinational cells fed by any output of ``cell``."""
        seen = set()
        for terminal in cell.output_terminals:
            for sink in self.sinks_of(terminal):
                downstream = sink.cell
                if downstream.is_combinational and downstream.name not in seen:
                    seen.add(downstream.name)
                    yield downstream

    def comb_topological_cells(self) -> Tuple[Cell, ...]:
        """Combinational cells in topological (fanin-before-fanout) order.

        Raises :class:`CombinationalCycleError` when the combinational
        portion of the network contains a directed cycle.
        """
        comb = self.combinational_cells
        indegree: Dict[str, int] = {c.name: 0 for c in comb}
        for cell in comb:
            for __ in self.comb_fanin_cells(cell):
                indegree[cell.name] += 1
        ready = deque(c for c in comb if indegree[c.name] == 0)
        order: List[Cell] = []
        while ready:
            cell = ready.popleft()
            order.append(cell)
            for downstream in self.comb_fanout_cells(cell):
                indegree[downstream.name] -= 1
                if indegree[downstream.name] == 0:
                    ready.append(downstream)
        if len(order) != len(comb):
            stuck = [name for name, degree in indegree.items() if degree > 0]
            raise CombinationalCycleError(stuck)
        return tuple(order)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Cell/net counts broken down by role (for Table-1 style rows)."""
        return {
            "cells": self.num_cells,
            "nets": self.num_nets,
            "combinational": len(self.combinational_cells),
            "synchronisers": len(self.synchronisers),
            "clock_sources": len(self.clock_sources),
            "primary_inputs": len(self.primary_inputs),
            "primary_outputs": len(self.primary_outputs),
        }

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, cells={self.num_cells}, "
            f"nets={self.num_nets})"
        )


def terminals_of(cells: Iterable[Cell]) -> Iterator[Terminal]:
    """All terminals of ``cells`` (helper for analyses)."""
    for cell in cells:
        yield from cell.terminals()
