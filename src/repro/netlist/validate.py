"""Validation of the paper's Section 3 behavioural assumptions.

The analysis algorithms are only correct for networks satisfying:

* data flows from input terminals to output terminals (structurally: every
  net has exactly one driver, except tristate buses where every driver is a
  clocked tristate element);
* no directed cycles within any portion of combinational logic;
* every synchronising element has a data input, a control input and a data
  output;
* the signal at every synchronising element's control input is a
  *monotonic* combinational function of *exactly one* clock signal.

:func:`validate_network` checks all of these (plus hygiene such as floating
input pins) and :func:`trace_control` extracts, for one synchroniser, the
controlling clock and the sense (non-inverted / inverted) of its control
function -- information the timing model needs to pick the effective pulse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole, SyncStyle, Unateness
from repro.netlist.network import CombinationalCycleError, Network
from repro.netlist.terminals import Terminal, TerminalKind


class ValidationError(ValueError):
    """A network violates the assumptions of the paper's Section 3."""


@dataclass(frozen=True)
class ControlTrace:
    """Result of tracing a synchroniser's control pin back to its clock.

    ``sense`` is :data:`Unateness.POSITIVE` when the control signal switches
    in the same direction as the clock and :data:`Unateness.NEGATIVE` when
    it always switches in the opposite direction (an inverted control means
    the element is transparent while the clock is *low*).
    ``comb_cells`` lists the combinational cells on the control path, in no
    particular order; their delays form the control-path delay.

    ``enable_sources`` lists synchroniser outputs / primary inputs found in
    the control cone: the starting terminals of *enable paths* (paper,
    Section 4 -- "a combinational logic path from a synchronising element
    output to a synchronising element control input").  Their constraints
    are checked by :mod:`repro.core.enable_paths`.
    """

    clock: str
    sense: Unateness
    comb_cells: Tuple[str, ...]
    enable_sources: Tuple[str, ...] = ()


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_network`."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    control_traces: Dict[str, ControlTrace] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            raise ValidationError("; ".join(self.errors))


def _arc_unateness(cell: Cell, in_pin: str, out_pin: str) -> Unateness:
    """Unateness of the ``in_pin -> out_pin`` arc of ``cell``.

    Falls back to NON_UNATE when the spec does not expose arcs (e.g.
    hierarchical modules), which makes control paths through it invalid.
    """
    arcs = getattr(cell.spec, "arcs", None)
    if arcs is None:
        return Unateness.NON_UNATE
    arc = arcs.get((in_pin, out_pin))
    if arc is None:
        return Unateness.NON_UNATE
    return arc.unateness


def trace_control(network: Network, sync_cell: Cell) -> ControlTrace:
    """Trace the control pin of ``sync_cell`` back to its clock source.

    Raises :class:`ValidationError` when the control signal is not a
    monotonic combinational function of exactly one clock.
    """
    control = sync_cell.control_terminal
    if control is None:
        raise ValidationError(
            f"synchroniser {sync_cell.name!r} has no control terminal"
        )

    clocks: Set[str] = set()
    senses: Set[Unateness] = set()
    comb_cells: Set[str] = set()
    enable_sources: Set[str] = set()

    # Depth-first walk against the direction of data flow.  Each stack
    # entry carries the accumulated sense from the visited terminal up to
    # the control pin.
    stack: List[Tuple[Terminal, Unateness]] = [(control, Unateness.POSITIVE)]
    visited: Set[Tuple[str, Unateness]] = set()
    while stack:
        terminal, sense = stack.pop()
        key = (terminal.full_name, sense)
        if key in visited:
            continue
        visited.add(key)
        net = terminal.net
        if net is None or not net.drivers:
            raise ValidationError(
                f"control path of {sync_cell.name!r} reaches undriven "
                f"terminal {terminal.full_name}"
            )
        for driver in net.drivers:
            cell = driver.cell
            if cell.role is CellRole.CLOCK_SOURCE:
                clocks.add(cell.attrs.get("clock", cell.name))
                senses.add(sense)
            elif cell.is_combinational:
                comb_cells.add(cell.name)
                for in_terminal in cell.input_terminals:
                    arc_sense = _arc_unateness(cell, in_terminal.pin, driver.pin)
                    if arc_sense is Unateness.NON_UNATE:
                        raise ValidationError(
                            f"control path of {sync_cell.name!r} crosses "
                            f"non-unate arc {in_terminal.pin}->{driver.pin} "
                            f"of cell {cell.name!r}"
                        )
                    combined = (
                        sense
                        if arc_sense is Unateness.POSITIVE
                        else _invert(sense)
                    )
                    stack.append((in_terminal, combined))
            elif (
                cell.is_synchroniser
                or cell.role is CellRole.PRIMARY_INPUT
            ):
                # An enable path: gating data entering the control cone.
                enable_sources.add(driver.full_name)
            else:
                raise ValidationError(
                    f"control path of {sync_cell.name!r} reaches "
                    f"{cell.role.value} cell {cell.name!r}; control inputs "
                    "must be combinational functions of a clock"
                )

    if len(clocks) != 1:
        raise ValidationError(
            f"control input of {sync_cell.name!r} depends on clocks "
            f"{sorted(clocks)}; exactly one is required"
        )
    if len(senses) != 1:
        raise ValidationError(
            f"control input of {sync_cell.name!r} is not a monotonic "
            "function of its clock (both senses reachable)"
        )
    return ControlTrace(
        clocks.pop(),
        senses.pop(),
        tuple(sorted(comb_cells)),
        tuple(sorted(enable_sources)),
    )


def _invert(sense: Unateness) -> Unateness:
    return (
        Unateness.NEGATIVE
        if sense is Unateness.POSITIVE
        else Unateness.POSITIVE
    )


def validate_network(
    network: Network, clock_names: Optional[Set[str]] = None
) -> ValidationReport:
    """Check all Section 3 assumptions; never raises, returns a report.

    ``clock_names``, when given, is the set of clocks the schedule defines;
    clock sources and primary I/O referring to unknown clocks are errors.
    """
    report = ValidationReport()

    _check_net_drivers(network, report)
    _check_connectivity(network, report)
    _check_acyclic(network, report)
    _check_synchronisers(network, report)
    _check_clock_references(network, clock_names, report)
    return report


def _check_net_drivers(network: Network, report: ValidationReport) -> None:
    for net in network.nets:
        if not net.drivers:
            if net.sinks:
                report.errors.append(f"net {net.name!r} has sinks but no driver")
            continue
        if len(net.drivers) > 1:
            non_tristate = [
                d.cell.name
                for d in net.drivers
                if d.cell.sync_style is not SyncStyle.TRISTATE
            ]
            if non_tristate:
                report.errors.append(
                    f"net {net.name!r} has multiple drivers and not all are "
                    f"tristate elements: {sorted(non_tristate)}"
                )


def _check_connectivity(network: Network, report: ValidationReport) -> None:
    for cell in network.cells:
        for terminal in cell.terminals():
            if terminal.kind.is_sink and (
                terminal.net is None or not terminal.net.drivers
            ):
                report.errors.append(
                    f"input terminal {terminal.full_name} is floating"
                )
            if terminal.kind is TerminalKind.OUTPUT and terminal.net is None:
                report.warnings.append(
                    f"output terminal {terminal.full_name} is unconnected"
                )


def _check_acyclic(network: Network, report: ValidationReport) -> None:
    try:
        network.comb_topological_cells()
    except CombinationalCycleError as exc:
        report.errors.append(str(exc))


def _check_synchronisers(network: Network, report: ValidationReport) -> None:
    for cell in network.synchronisers:
        if len(cell.spec.inputs) != 1 or len(cell.spec.outputs) != 1:
            report.errors.append(
                f"synchroniser {cell.name!r} must have exactly one data "
                "input and one data output"
            )
            continue
        try:
            trace = trace_control(network, cell)
        except ValidationError as exc:
            report.errors.append(str(exc))
            continue
        report.control_traces[cell.name] = trace
        if trace.enable_sources:
            report.warnings.append(
                f"synchroniser {cell.name!r} has enable paths from "
                f"{list(trace.enable_sources)}; check them with "
                "repro.core.enable_paths.check_enable_paths"
            )


def _check_clock_references(
    network: Network,
    clock_names: Optional[Set[str]],
    report: ValidationReport,
) -> None:
    if clock_names is None:
        return
    for cell in network.clock_sources:
        clock = cell.attrs.get("clock", cell.name)
        if clock not in clock_names:
            report.errors.append(
                f"clock source {cell.name!r} refers to unknown clock {clock!r}"
            )
    for cell in network.primary_inputs + network.primary_outputs:
        clock = cell.attrs.get("clock")
        if clock is not None and clock not in clock_names:
            report.errors.append(
                f"pad {cell.name!r} refers to unknown clock {clock!r}"
            )
        edge = cell.attrs.get("edge", "trailing")
        if edge not in ("leading", "trailing"):
            report.errors.append(
                f"pad {cell.name!r} has invalid edge kind {edge!r}"
            )
