"""Nets: the wires connecting cell terminals."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.netlist.terminals import Terminal


class Net:
    """A wire with exactly one driver and any number of sinks.

    Multiple drivers on one net are only legal when every driver is a
    clocked tristate element; :mod:`repro.netlist.validate` enforces that.
    For generality the net therefore keeps a driver *list*; :attr:`driver`
    returns the single driver and raises on tristate buses.
    """

    __slots__ = ("name", "drivers", "sinks")

    def __init__(self, name: str) -> None:
        self.name = name
        self.drivers: List[Terminal] = []
        self.sinks: List[Terminal] = []

    @property
    def driver(self) -> Terminal:
        if len(self.drivers) != 1:
            raise ValueError(
                f"net {self.name!r} has {len(self.drivers)} drivers; "
                "use .drivers for tristate buses"
            )
        return self.drivers[0]

    @property
    def terminals(self) -> Tuple[Terminal, ...]:
        return tuple(self.drivers) + tuple(self.sinks)

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def attach(self, terminal: Terminal) -> None:
        """Connect ``terminal`` to this net (used by Network.connect)."""
        if terminal.net is not None and terminal.net is not self:
            raise ValueError(
                f"terminal {terminal.full_name} is already on net "
                f"{terminal.net.name!r}"
            )
        if terminal.is_driver:
            if terminal not in self.drivers:
                self.drivers.append(terminal)
        else:
            if terminal not in self.sinks:
                self.sinks.append(terminal)
        terminal.net = self

    def __repr__(self) -> str:
        return f"Net({self.name!r}, drivers={len(self.drivers)}, sinks={len(self.sinks)})"


def driver_or_none(net: Optional[Net]) -> Optional[Terminal]:
    """The unique driver of ``net``, or ``None`` when unconnected/undriven."""
    if net is None or not net.drivers:
        return None
    return net.drivers[0]
