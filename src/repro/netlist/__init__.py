"""Netlist substrate: cells, nets, terminals, hierarchy and validation.

This package is the repository's stand-in for the OCT database the original
Hummingbird read designs from: an in-memory network of *cells* (instances of
library cell specs) connected by *nets*, with

* :mod:`repro.netlist.kinds` -- the cell-role / sync-style / unateness
  vocabulary shared with the cell library,
* :mod:`repro.netlist.network` -- the :class:`Network` container and graph
  queries (fanin/fanout, combinational topological order),
* :mod:`repro.netlist.builder` -- a convenient construction API,
* :mod:`repro.netlist.validate` -- checks for the behavioural assumptions of
  the paper's Section 3,
* :mod:`repro.netlist.hierarchy` -- module definitions and flattening
  (the SM1H vs SM1F distinction of Table 1),
* :mod:`repro.netlist.persistence` -- JSON save/load.
"""

from repro.netlist.blif import load_blif, save_blif
from repro.netlist.builder import NetworkBuilder
from repro.netlist.cell import Cell
from repro.netlist.hierarchy import ModuleDefinition, ModuleSpec, flatten
from repro.netlist.kinds import CellRole, SyncStyle, Unateness
from repro.netlist.net import Net
from repro.netlist.network import Network
from repro.netlist.persistence import load_network, save_network
from repro.netlist.terminals import Terminal, TerminalKind
from repro.netlist.validate import ValidationError, validate_network
from repro.netlist.verilog import load_verilog, save_verilog

__all__ = [
    "Cell",
    "CellRole",
    "ModuleDefinition",
    "ModuleSpec",
    "Net",
    "Network",
    "NetworkBuilder",
    "SyncStyle",
    "Terminal",
    "TerminalKind",
    "Unateness",
    "ValidationError",
    "flatten",
    "load_blif",
    "load_network",
    "load_verilog",
    "save_blif",
    "save_network",
    "save_verilog",
    "validate_network",
]
