"""Hierarchical modules and flattening.

Table 1 of the paper distinguishes SM1F -- a "flattened" network of standard
cells -- from SM1H -- the same machine with its combinational logic
"contained in a single module".  A :class:`ModuleDefinition` captures a
combinational subnetwork with named ports; a :class:`ModuleSpec` wraps it as
an ordinary combinational cell spec so the analyser can treat the module as
one component (using pin-to-pin delays from :mod:`repro.delay.module_delay`);
:func:`flatten` expands module instances back into their standard cells.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole, SyncStyle, TimingArc, Unateness
from repro.netlist.network import Network


class ModuleDefinition:
    """A purely combinational subnetwork with named ports.

    Parameters
    ----------
    inner:
        The subnetwork; every cell must be combinational.
    input_ports / output_ports:
        Mappings from port (pin) name to the inner net carrying it.
    """

    def __init__(
        self,
        inner: Network,
        input_ports: Mapping[str, str],
        output_ports: Mapping[str, str],
    ) -> None:
        for cell in inner.cells:
            if not cell.is_combinational:
                raise ValueError(
                    f"module {inner.name!r}: cell {cell.name!r} is "
                    f"{cell.role.value}; modules must be purely combinational"
                )
        for port, net_name in {**input_ports, **output_ports}.items():
            inner.net(net_name)  # raises KeyError on dangling port
        overlap = set(input_ports) & set(output_ports)
        if overlap:
            raise ValueError(f"ports used as both input and output: {overlap}")
        self.inner = inner
        self.input_ports: Dict[str, str] = dict(input_ports)
        self.output_ports: Dict[str, str] = dict(output_ports)

    def reachable_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """All (input port, output port) pairs connected by a path."""
        pairs: List[Tuple[str, str]] = []
        for in_port, in_net in self.input_ports.items():
            reached = self._reachable_nets(in_net)
            for out_port, out_net in self.output_ports.items():
                if out_net in reached:
                    pairs.append((in_port, out_port))
        return tuple(pairs)

    def _reachable_nets(self, start_net: str) -> set:
        reached = {start_net}
        frontier = [start_net]
        while frontier:
            net = self.inner.net(frontier.pop())
            for sink in net.sinks:
                for out_terminal in sink.cell.output_terminals:
                    out_net = out_terminal.net
                    if out_net is not None and out_net.name not in reached:
                        reached.add(out_net.name)
                        frontier.append(out_net.name)
        return reached


class ModuleSpec:
    """A module definition wrapped as a combinational cell spec."""

    def __init__(self, name: str, definition: ModuleDefinition) -> None:
        self._name = name
        self.definition = definition
        self._inputs = tuple(definition.input_ports)
        self._outputs = tuple(definition.output_ports)
        # Hierarchical arcs are conservatively non-unate: control paths may
        # not cross modules, and rise/fall analysis treats both transitions.
        self.arcs: Dict[Tuple[str, str], TimingArc] = {
            pair: TimingArc(Unateness.NON_UNATE)
            for pair in definition.reachable_pairs()
        }

    @property
    def name(self) -> str:
        return self._name

    @property
    def role(self) -> CellRole:
        return CellRole.COMBINATIONAL

    @property
    def inputs(self) -> Tuple[str, ...]:
        return self._inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        return self._outputs

    @property
    def control(self) -> Optional[str]:
        return None

    @property
    def sync_style(self) -> Optional[SyncStyle]:
        return None

    def __repr__(self) -> str:
        return f"ModuleSpec({self._name!r}, {len(self.arcs)} arcs)"


def flatten(network: Network, name: Optional[str] = None) -> Network:
    """Expand every module instance into its standard cells.

    Inner cell ``g`` of module instance ``m`` becomes ``m.g``; inner net
    ``n`` becomes ``m.n`` unless it is a port net, in which case it merges
    with the outer net bound to that port.  Flattening recurses until no
    module instances remain.
    """
    flat = Network(name or network.name)
    _flatten_into(network, flat, prefix="", port_binding={})
    while any(isinstance(c.spec, ModuleSpec) for c in flat.cells):
        flat = flatten(flat, name or network.name)  # pragma: no cover
    return flat


def _flatten_into(
    source: Network,
    target: Network,
    prefix: str,
    port_binding: Mapping[str, str],
) -> None:
    """Copy ``source`` into ``target``.

    ``port_binding`` maps a source net name to an existing target net name
    (used to merge module port nets with outer nets); all other net names
    are prefixed.
    """

    def target_net_name(inner_name: str) -> str:
        bound = port_binding.get(inner_name)
        if bound is not None:
            return bound
        return prefix + inner_name

    for cell in source.cells:
        if isinstance(cell.spec, ModuleSpec):
            definition = cell.spec.definition
            binding: Dict[str, str] = {}
            for port, inner_net in {
                **definition.input_ports,
                **definition.output_ports,
            }.items():
                outer_net = cell.terminal(port).net
                if outer_net is None:
                    raise ValueError(
                        f"module instance {cell.name!r}: port {port!r} "
                        "is unconnected"
                    )
                binding[inner_net] = target_net_name(outer_net.name)
            _flatten_into(
                definition.inner,
                target,
                prefix=prefix + cell.name + ".",
                port_binding=binding,
            )
        else:
            clone = target.add_cell(
                Cell(prefix + cell.name, cell.spec, cell.attrs)
            )
            for terminal in cell.terminals():
                if terminal.net is not None:
                    target.connect(
                        target_net_name(terminal.net.name),
                        clone.terminal(terminal.pin),
                    )
