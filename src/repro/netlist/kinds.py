"""Shared vocabulary between the netlist and the cell library.

The netlist layer does not depend on any concrete cell library; instead a
cell instance points at a *spec* object satisfying :class:`CellSpecLike`.
This module defines the enums those specs use and the protocol itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple, runtime_checkable


class CellRole(enum.Enum):
    """What a cell does in the timing model of the paper's Section 3."""

    #: Ordinary combinational logic (gates and hierarchical modules).
    COMBINATIONAL = "combinational"
    #: Synchronising element: edge-triggered or transparent latch, or a
    #: clocked tristate driver.  Three logical terminals: data input,
    #: control input, data output.
    SYNCHRONISER = "synchroniser"
    #: Clock generator output.  Drives control paths.
    CLOCK_SOURCE = "clock_source"
    #: Primary input pad: modelled as a zero-freedom synchroniser output
    #: asserted at a specified clock edge plus offset.
    PRIMARY_INPUT = "primary_input"
    #: Primary output pad: modelled as a zero-freedom synchroniser input
    #: with closure at a specified clock edge plus offset.
    PRIMARY_OUTPUT = "primary_output"


class SyncStyle(enum.Enum):
    """The synchronising element styles modelled in the paper's Section 5."""

    #: Trailing-edge triggered latch (flip-flop): input closure and output
    #: assertion both on the trailing edge of the control pulse.
    EDGE_TRIGGERED = "edge_triggered"
    #: Level-sensitive ("transparent") latch: output assertion on the
    #: leading edge, input closure on the trailing edge.
    TRANSPARENT = "transparent"
    #: Clocked tristate driver -- "modeled in the same way as transparent
    #: latches" (Section 5).
    TRISTATE = "tristate"


class Unateness(enum.Enum):
    """Sense of a combinational timing arc, for rise/fall propagation."""

    #: Output rises when the input rises (buffer-like).
    POSITIVE = "positive"
    #: Output falls when the input rises (inverter-like).
    NEGATIVE = "negative"
    #: Either transition can cause either (xor-like).
    NON_UNATE = "non_unate"


@dataclass(frozen=True)
class TimingArc:
    """A combinational input-to-output timing arc.

    The netlist layer only needs the unateness (for control-path
    monotonicity checks and rise/fall propagation).  Concrete cell
    libraries subclass this with delay parameters; hierarchical modules use
    it directly with :data:`Unateness.NON_UNATE`.
    """

    unateness: Unateness = Unateness.NON_UNATE


@runtime_checkable
class CellSpecLike(Protocol):
    """What the netlist requires of a cell spec.

    Concrete specs live in :mod:`repro.cells`; hierarchical module specs in
    :mod:`repro.netlist.hierarchy`.  The delay model is *not* part of this
    protocol -- delays are estimated separately (:mod:`repro.delay`) and
    attached to the analysis, mirroring the paper's separation of component
    delay estimation from system timing analysis.
    """

    @property
    def name(self) -> str:
        """Library name of the spec (e.g. ``NAND2``)."""

    @property
    def role(self) -> CellRole: ...

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Data input pin names (excludes the control pin)."""

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Output pin names."""

    @property
    def control(self) -> Optional[str]:
        """Control pin name for synchronisers, ``None`` otherwise."""

    @property
    def sync_style(self) -> Optional[SyncStyle]:
        """Element style for synchronisers, ``None`` otherwise."""
