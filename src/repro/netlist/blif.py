"""BLIF-style netlist interchange (mapped subset).

The original Hummingbird read designs produced by the Berkeley Synthesis
System; BLIF was that system's interchange format.  This module supports
a *mapped* BLIF subset round-trip:

* ``.model`` / ``.end`` -- design name,
* ``.inputs`` / ``.outputs`` -- primary I/O *net* names,
* ``.clock`` -- clock net names (each implies a clock generator),
* ``.gate SPEC pin=net ...`` -- a library gate instance,
* ``.mlatch SPEC pin=net ...`` -- a mapped synchroniser instance,
* ``# pragma`` comments carrying the information plain BLIF cannot:
  instance names (``cell``) and pad timing attributes (``input`` /
  ``output`` with ``clock=/edge=/pulse_index=/offset=``).

Hierarchical designs must be flattened first
(:func:`repro.netlist.hierarchy.flatten`); plain-logic (``.names``)
constructs are not supported -- this is a *mapped* netlist format, as
consumed by a timing analyser.
"""

from __future__ import annotations

import shlex
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.netlist.builder import SpecSource
from repro.netlist.cell import Cell
from repro.netlist.hierarchy import ModuleSpec
from repro.netlist.kinds import CellRole
from repro.netlist.network import Network
from repro.netlist.ports import (
    CLOCK_SOURCE_SPEC,
    PRIMARY_INPUT_SPEC,
    PRIMARY_OUTPUT_SPEC,
)


class BlifError(ValueError):
    """Malformed or unsupported BLIF input."""


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def network_to_blif(network: Network) -> str:
    """Serialise a flat network to the mapped BLIF subset."""
    lines: List[str] = [f".model {network.name}"]

    input_nets = []
    for cell in network.primary_inputs:
        net = cell.terminal("Z").net
        if net is None:
            raise BlifError(f"primary input {cell.name!r} drives no net")
        input_nets.append(net.name)
    if input_nets:
        lines.append(".inputs " + " ".join(input_nets))

    output_nets = []
    for cell in network.primary_outputs:
        net = cell.terminal("A").net
        if net is None:
            raise BlifError(f"primary output {cell.name!r} reads no net")
        output_nets.append(net.name)
    if output_nets:
        lines.append(".outputs " + " ".join(output_nets))

    clock_nets = []
    for cell in network.clock_sources:
        net = cell.terminal("Z").net
        if net is None:
            raise BlifError(f"clock source {cell.name!r} drives no net")
        clock_nets.append((cell, net.name))
    if clock_nets:
        lines.append(".clock " + " ".join(name for __, name in clock_nets))
    for cell, net_name in clock_nets:
        clock = cell.attrs.get("clock", net_name)
        lines.append(f"# pragma clock {net_name} name={clock}")

    for cell in network.primary_inputs + network.primary_outputs:
        kind = "input" if cell.role is CellRole.PRIMARY_INPUT else "output"
        pin = "Z" if kind == "input" else "A"
        net = cell.terminal(pin).net
        attrs = " ".join(
            f"{key}={cell.attrs[key]}"
            for key in ("clock", "edge", "pulse_index", "offset")
            if key in cell.attrs
        )
        lines.append(
            f"# pragma {kind} {cell.name} net={net.name} {attrs}".rstrip()
        )

    for cell in network.cells:
        if isinstance(cell.spec, ModuleSpec):
            raise BlifError(
                f"cell {cell.name!r} is a module instance; flatten the "
                "network before writing BLIF"
            )
        if cell.is_combinational or cell.is_synchroniser:
            keyword = ".mlatch" if cell.is_synchroniser else ".gate"
            bindings = " ".join(
                f"{t.pin}={t.net.name}"
                for t in cell.terminals()
                if t.net is not None
            )
            lines.append(f"{keyword} {cell.spec.name} {bindings}")
            lines.append(f"# pragma cell {cell.name}")

    lines.append(".end")
    return "\n".join(lines) + "\n"


def save_blif(network: Network, path: Union[str, Path]) -> None:
    """Write ``network`` to ``path`` in the mapped BLIF subset."""
    Path(path).write_text(network_to_blif(network))


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _parse_bindings(tokens: List[str]) -> Dict[str, str]:
    bindings = {}
    for token in tokens:
        pin, eq, net = token.partition("=")
        if not eq or not pin or not net:
            raise BlifError(f"malformed pin binding {token!r}")
        bindings[pin] = net
    return bindings


def _coerce(value: str):
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def blif_to_network(
    text: str,
    library: SpecSource,
    default_clock: Optional[str] = None,
) -> Network:
    """Parse the mapped BLIF subset back into a network.

    ``default_clock`` supplies pad timing for hand-written files without
    ``# pragma input/output`` lines (every pad needs a reference clock).
    """
    network = Network("top")
    pending_name: Optional[str] = None
    input_nets: List[str] = []
    output_nets: List[str] = []
    clock_nets: List[str] = []
    clock_pragmas: Dict[str, str] = {}
    pad_pragmas: List[Dict] = []
    instances: List[Dict] = []

    # BLIF continuation lines.
    joined: List[str] = []
    for raw in text.splitlines():
        if joined and joined[-1].endswith("\\"):
            joined[-1] = joined[-1][:-1] + " " + raw
        else:
            joined.append(raw)

    for raw in joined:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if body.startswith("pragma "):
                tokens = shlex.split(body)[1:]
                if not tokens:
                    raise BlifError(f"empty pragma: {raw!r}")
                kind = tokens[0]
                if kind == "cell" and len(tokens) >= 2:
                    if instances:
                        instances[-1]["name"] = tokens[1]
                elif kind == "clock" and len(tokens) >= 2:
                    net = tokens[1]
                    attrs = _parse_bindings(tokens[2:])
                    clock_pragmas[net] = attrs.get("name", net)
                elif kind in ("input", "output") and len(tokens) >= 2:
                    attrs = _parse_bindings(tokens[2:])
                    pad_pragmas.append(
                        {
                            "kind": kind,
                            "name": tokens[1],
                            "net": attrs.pop("net", None),
                            "attrs": {
                                key: _coerce(value)
                                for key, value in attrs.items()
                            },
                        }
                    )
            continue
        tokens = line.split()
        keyword, rest = tokens[0], tokens[1:]
        if keyword == ".model":
            network.name = rest[0] if rest else "top"
        elif keyword == ".inputs":
            input_nets.extend(rest)
        elif keyword == ".outputs":
            output_nets.extend(rest)
        elif keyword == ".clock":
            clock_nets.extend(rest)
        elif keyword in (".gate", ".mlatch"):
            if not rest:
                raise BlifError(f"{keyword} without a spec name")
            instances.append(
                {
                    "spec": rest[0],
                    "pins": _parse_bindings(rest[1:]),
                    "name": None,
                }
            )
        elif keyword == ".names":
            raise BlifError(
                ".names (unmapped logic) is not supported; map to library "
                "gates first"
            )
        elif keyword == ".end":
            break
        elif keyword == ".latch":
            raise BlifError(
                "generic .latch is not supported; use .mlatch SPEC pin=net ..."
            )
        else:
            raise BlifError(f"unsupported BLIF construct {keyword!r}")

    # Clock generators.
    for net_name in clock_nets:
        clock = clock_pragmas.get(net_name, net_name)
        cell = network.add_cell(
            Cell(f"clkgen_{clock}", CLOCK_SOURCE_SPEC, {"clock": clock})
        )
        network.connect(net_name, cell.terminal("Z"))

    # Pads: pragma-described first, then bare .inputs/.outputs entries.
    described = {entry["net"] for entry in pad_pragmas}
    for entry in pad_pragmas:
        if entry["net"] is None:
            raise BlifError(f"pad pragma for {entry['name']!r} lacks net=")
        spec = (
            PRIMARY_INPUT_SPEC if entry["kind"] == "input" else PRIMARY_OUTPUT_SPEC
        )
        cell = network.add_cell(Cell(entry["name"], spec, entry["attrs"]))
        pin = "Z" if entry["kind"] == "input" else "A"
        network.connect(entry["net"], cell.terminal(pin))
    for kind, nets in (("input", input_nets), ("output", output_nets)):
        for net_name in nets:
            if net_name in described:
                continue
            if default_clock is None:
                raise BlifError(
                    f"pad net {net_name!r} has no pragma and no "
                    "default_clock was given"
                )
            spec = PRIMARY_INPUT_SPEC if kind == "input" else PRIMARY_OUTPUT_SPEC
            cell = network.add_cell(
                Cell(f"{kind[0]}pad_{net_name}", spec, {"clock": default_clock})
            )
            pin = "Z" if kind == "input" else "A"
            network.connect(net_name, cell.terminal(pin))

    # Gates and synchronisers.
    for index, entry in enumerate(instances):
        spec = library.spec(entry["spec"])
        name = entry["name"] or f"u{index}"
        cell = network.add_cell(Cell(name, spec))
        for pin, net_name in entry["pins"].items():
            network.connect(net_name, cell.terminal(pin))
    return network


def load_blif(
    path: Union[str, Path],
    library: SpecSource,
    default_clock: Optional[str] = None,
) -> Network:
    """Read a network previously written by :func:`save_blif` (or a
    hand-written file in the same subset)."""
    return blif_to_network(Path(path).read_text(), library, default_clock)
