"""Cell terminals.

A :class:`Terminal` is one pin of one cell instance.  Terminals are the
nodes the timing analysis reasons about: signal ready times live on them,
node slacks live on them, and synchronising-element offsets are attached to
the data-input and data-output terminals of synchroniser cells.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netlist.cell import Cell
    from repro.netlist.net import Net


class TerminalKind(enum.Enum):
    """Direction of a terminal, from the cell's point of view."""

    INPUT = "input"
    OUTPUT = "output"
    CONTROL = "control"

    @property
    def is_sink(self) -> bool:
        """True when a net drives *into* this terminal."""
        return self in (TerminalKind.INPUT, TerminalKind.CONTROL)


class Terminal:
    """One pin of a cell instance.

    Terminals are created by :class:`~repro.netlist.cell.Cell` and are
    identified by ``(cell name, pin name)``; equality is identity, which is
    safe because every terminal object is owned by exactly one cell in one
    network.
    """

    __slots__ = ("cell", "pin", "kind", "net")

    def __init__(self, cell: "Cell", pin: str, kind: TerminalKind) -> None:
        self.cell = cell
        self.pin = pin
        self.kind = kind
        #: The net this terminal connects to; assigned by Network.connect.
        self.net: "Net | None" = None

    @property
    def full_name(self) -> str:
        """Globally unique ``cell/pin`` identifier."""
        return f"{self.cell.name}/{self.pin}"

    @property
    def is_driver(self) -> bool:
        return self.kind is TerminalKind.OUTPUT

    def __repr__(self) -> str:
        return f"Terminal({self.full_name}, {self.kind.value})"

    def __str__(self) -> str:
        return self.full_name
