"""Structural Verilog interchange (gate-level subset).

Writes and reads the flat, mapped netlists this analyser works on as a
conservative structural-Verilog subset::

    module demo (din, dout, phi1, phi2);
      // pragma clock phi1 name=phi1
      // pragma input din_pad net=din clock=phi2 edge=leading offset=1.0
      input din;
      input phi1, phi2;
      output dout;
      wire n1, n2;
      NAND2 u1 (.A(din), .B(din), .Z(n1));
      DLATCH L1 (.D(n1), .Q(n2), .G(phi1));
      ...
    endmodule

Clock generators and pad timing cannot be expressed in plain structural
Verilog, so -- exactly as in :mod:`repro.netlist.blif` -- they travel in
``// pragma`` comments.  Ports are nets; clocks are ports flagged by a
``pragma clock`` line.  Supported constructs: ``module``/``endmodule``,
``input``/``output``/``wire`` declarations, named-port instantiations
and comments.  Behavioural constructs, buses, assigns and escaped
identifiers are rejected.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.netlist.builder import SpecSource
from repro.netlist.cell import Cell
from repro.netlist.hierarchy import ModuleSpec
from repro.netlist.network import Network
from repro.netlist.ports import (
    CLOCK_SOURCE_SPEC,
    PRIMARY_INPUT_SPEC,
    PRIMARY_OUTPUT_SPEC,
)


class VerilogError(ValueError):
    """Malformed or unsupported Verilog input."""


_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")


def _check_ident(name: str, what: str) -> str:
    if not _IDENT.match(name):
        raise VerilogError(f"{what} {name!r} is not a plain identifier")
    return name


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def network_to_verilog(network: Network) -> str:
    """Serialise a flat network to the structural subset."""
    input_nets: List[str] = []
    output_nets: List[str] = []
    clock_nets: List[str] = []
    pragmas: List[str] = []

    for cell in network.clock_sources:
        net = cell.terminal("Z").net
        if net is None:
            raise VerilogError(f"clock source {cell.name!r} drives no net")
        clock_nets.append(_check_ident(net.name, "clock net"))
        pragmas.append(
            f"  // pragma clock {net.name} "
            f"name={cell.attrs.get('clock', net.name)}"
        )
    for cell in network.primary_inputs:
        net = cell.terminal("Z").net
        if net is None:
            raise VerilogError(f"input pad {cell.name!r} drives no net")
        input_nets.append(_check_ident(net.name, "input net"))
        pragmas.append(_pad_pragma("input", cell, net.name))
    for cell in network.primary_outputs:
        net = cell.terminal("A").net
        if net is None:
            raise VerilogError(f"output pad {cell.name!r} reads no net")
        output_nets.append(_check_ident(net.name, "output net"))
        pragmas.append(_pad_pragma("output", cell, net.name))

    ports = input_nets + output_nets + clock_nets
    port_set = set(ports)
    wires = sorted(
        _check_ident(net.name, "net")
        for net in network.nets
        if net.name not in port_set
    )

    lines = [f"module {_check_ident(network.name, 'module')} ("]
    lines.append("  " + ", ".join(ports))
    lines.append(");")
    lines.extend(pragmas)
    for net in input_nets + clock_nets:
        lines.append(f"  input {net};")
    for net in output_nets:
        lines.append(f"  output {net};")
    for net in wires:
        lines.append(f"  wire {net};")

    for cell in network.cells:
        if isinstance(cell.spec, ModuleSpec):
            raise VerilogError(
                f"cell {cell.name!r} is a module instance; flatten first"
            )
        if not (cell.is_combinational or cell.is_synchroniser):
            continue
        bindings = ", ".join(
            f".{t.pin}({t.net.name})"
            for t in cell.terminals()
            if t.net is not None
        )
        lines.append(
            f"  {cell.spec.name} {_check_ident(cell.name, 'instance')} "
            f"({bindings});"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def _pad_pragma(kind: str, cell: Cell, net_name: str) -> str:
    attrs = " ".join(
        f"{key}={cell.attrs[key]}"
        for key in ("clock", "edge", "pulse_index", "offset")
        if key in cell.attrs
    )
    return f"  // pragma {kind} {cell.name} net={net_name} {attrs}".rstrip()


def save_verilog(network: Network, path: Union[str, Path]) -> None:
    Path(path).write_text(network_to_verilog(network))


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
_INSTANCE = re.compile(
    r"^(?P<spec>[A-Za-z_][A-Za-z0-9_$]*)\s+"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_$]*)\s*\((?P<bindings>.*)\)$"
)
_BINDING = re.compile(
    r"\.(?P<pin>[A-Za-z_][A-Za-z0-9_$]*)\s*\(\s*"
    r"(?P<net>[A-Za-z_][A-Za-z0-9_$]*)\s*\)"
)


def _coerce(value: str):
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


def verilog_to_network(
    text: str,
    library: SpecSource,
    default_clock: Optional[str] = None,
) -> Network:
    """Parse the structural subset back into a network."""
    # Collect pragmas before stripping comments.
    clock_pragmas: Dict[str, str] = {}
    pad_pragmas: List[Dict] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if not stripped.startswith("//"):
            continue
        body = stripped.lstrip("/").strip()
        if not body.startswith("pragma "):
            continue
        tokens = body.split()[1:]
        kind = tokens[0]
        if kind == "clock" and len(tokens) >= 2:
            attrs = dict(t.partition("=")[::2] for t in tokens[2:])
            clock_pragmas[tokens[1]] = attrs.get("name", tokens[1])
        elif kind in ("input", "output") and len(tokens) >= 2:
            attrs = dict(t.partition("=")[::2] for t in tokens[2:])
            pad_pragmas.append(
                {
                    "kind": kind,
                    "name": tokens[1],
                    "net": attrs.pop("net", None),
                    "attrs": {k: _coerce(v) for k, v in attrs.items()},
                }
            )

    no_comments = re.sub(r"//[^\n]*", "", text)
    statements = [
        s.strip() for s in no_comments.replace("\n", " ").split(";")
    ]

    network = Network("top")
    inputs: List[str] = []
    outputs: List[str] = []
    instances: List[Dict] = []
    saw_module = saw_end = False

    for statement in statements:
        if not statement:
            continue
        if statement.startswith("module"):
            match = re.match(r"module\s+([A-Za-z_][A-Za-z0-9_$]*)", statement)
            if match is None:
                raise VerilogError(f"malformed module header: {statement!r}")
            network.name = match.group(1)
            saw_module = True
            continue
        if statement == "endmodule" or statement.startswith("endmodule"):
            saw_end = True
            break
        for keyword, bucket in (("input", inputs), ("output", outputs)):
            if statement.startswith(keyword + " "):
                names = statement[len(keyword) :].replace(",", " ").split()
                bucket.extend(names)
                break
        else:
            if statement.startswith("wire "):
                continue  # wires are implicit in our model
            if statement.startswith(("assign", "always", "initial", "reg")):
                raise VerilogError(
                    f"behavioural construct not supported: {statement[:40]!r}"
                )
            match = _INSTANCE.match(statement)
            if match is None:
                raise VerilogError(f"unsupported statement: {statement[:60]!r}")
            bindings = {
                m.group("pin"): m.group("net")
                for m in _BINDING.finditer(match.group("bindings"))
            }
            if not bindings and match.group("bindings").strip():
                raise VerilogError(
                    "only named port bindings (.PIN(net)) are supported: "
                    f"{statement[:60]!r}"
                )
            instances.append(
                {
                    "spec": match.group("spec"),
                    "name": match.group("name"),
                    "pins": bindings,
                }
            )

    if not saw_module or not saw_end:
        raise VerilogError("missing module/endmodule")

    # Clock generators from pragma-flagged input nets.
    for net_name, clock in clock_pragmas.items():
        cell = network.add_cell(
            Cell(f"clkgen_{clock}", CLOCK_SOURCE_SPEC, {"clock": clock})
        )
        network.connect(net_name, cell.terminal("Z"))

    described = {entry["net"] for entry in pad_pragmas}
    for entry in pad_pragmas:
        if entry["net"] is None:
            raise VerilogError(f"pad pragma {entry['name']!r} lacks net=")
        spec = (
            PRIMARY_INPUT_SPEC
            if entry["kind"] == "input"
            else PRIMARY_OUTPUT_SPEC
        )
        cell = network.add_cell(Cell(entry["name"], spec, entry["attrs"]))
        pin = "Z" if entry["kind"] == "input" else "A"
        network.connect(entry["net"], cell.terminal(pin))
    for kind, names in (("input", inputs), ("output", outputs)):
        for net_name in names:
            if net_name in described or net_name in clock_pragmas:
                continue
            if default_clock is None:
                raise VerilogError(
                    f"port {net_name!r} has no pragma and no default_clock"
                )
            spec = (
                PRIMARY_INPUT_SPEC if kind == "input" else PRIMARY_OUTPUT_SPEC
            )
            cell = network.add_cell(
                Cell(
                    f"{kind[0]}pad_{net_name}", spec, {"clock": default_clock}
                )
            )
            pin = "Z" if kind == "input" else "A"
            network.connect(net_name, cell.terminal(pin))

    for entry in instances:
        spec = library.spec(entry["spec"])
        cell = network.add_cell(Cell(entry["name"], spec))
        for pin, net_name in entry["pins"].items():
            network.connect(net_name, cell.terminal(pin))
    return network


def load_verilog(
    path: Union[str, Path],
    library: SpecSource,
    default_clock: Optional[str] = None,
) -> Network:
    return verilog_to_network(Path(path).read_text(), library, default_clock)
