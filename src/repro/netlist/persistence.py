"""JSON persistence for networks (the repository's OCT-database stand-in).

The format stores, per cell: instance name, spec name, attributes and the
pin -> net binding.  Module definitions are stored once in a ``modules``
section and referenced by spec name.  Loading requires the same cell
library that was used to build the network.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.netlist.builder import SpecSource
from repro.netlist.cell import Cell
from repro.netlist.hierarchy import ModuleDefinition, ModuleSpec
from repro.netlist.kinds import CellSpecLike
from repro.netlist.network import Network
from repro.netlist.ports import (
    CLOCK_SOURCE_SPEC,
    PRIMARY_INPUT_SPEC,
    PRIMARY_OUTPUT_SPEC,
)

_PORT_SPECS: Dict[str, CellSpecLike] = {
    CLOCK_SOURCE_SPEC.name: CLOCK_SOURCE_SPEC,
    PRIMARY_INPUT_SPEC.name: PRIMARY_INPUT_SPEC,
    PRIMARY_OUTPUT_SPEC.name: PRIMARY_OUTPUT_SPEC,
}


def _cell_to_json(cell: Cell) -> Dict[str, Any]:
    return {
        "name": cell.name,
        "spec": cell.spec.name,
        "attrs": cell.attrs,
        "pins": {
            t.pin: t.net.name for t in cell.terminals() if t.net is not None
        },
    }


def _network_to_json(
    network: Network, modules: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    for cell in network.cells:
        spec = cell.spec
        if isinstance(spec, ModuleSpec) and spec.name not in modules:
            modules[spec.name] = {
                "inner": _network_to_json(spec.definition.inner, modules),
                "input_ports": spec.definition.input_ports,
                "output_ports": spec.definition.output_ports,
            }
    return {
        "name": network.name,
        "cells": [_cell_to_json(cell) for cell in network.cells],
    }


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialise ``network`` (and any module definitions) to plain data."""
    modules: Dict[str, Dict[str, Any]] = {}
    body = _network_to_json(network, modules)
    return {"format": "repro-netlist-v1", "modules": modules, **body}


def save_network(network: Network, path: Union[str, Path]) -> None:
    """Write ``network`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network), indent=2))


def _network_from_json(
    data: Dict[str, Any],
    library: SpecSource,
    module_specs: Dict[str, ModuleSpec],
) -> Network:
    network = Network(data["name"])
    for entry in data["cells"]:
        spec_name = entry["spec"]
        spec: CellSpecLike
        if spec_name in module_specs:
            spec = module_specs[spec_name]
        elif spec_name in _PORT_SPECS:
            spec = _PORT_SPECS[spec_name]
        else:
            spec = library.spec(spec_name)
        cell = network.add_cell(Cell(entry["name"], spec, entry.get("attrs")))
        for pin, net_name in entry["pins"].items():
            network.connect(net_name, cell.terminal(pin))
    return network


def network_from_dict(data: Dict[str, Any], library: SpecSource) -> Network:
    """Rebuild a network from :func:`network_to_dict` output."""
    if data.get("format") != "repro-netlist-v1":
        raise ValueError("not a repro netlist (missing/unknown format tag)")
    module_specs: Dict[str, ModuleSpec] = {}
    # Module definitions may reference other modules; resolve until stable.
    pending = dict(data.get("modules", {}))
    while pending:
        progressed = False
        for name in list(pending):
            body = pending[name]
            referenced = {
                entry["spec"]
                for entry in body["inner"]["cells"]
                if entry["spec"] in data.get("modules", {})
            }
            if referenced - set(module_specs):
                continue
            inner = _network_from_json(body["inner"], library, module_specs)
            module_specs[name] = ModuleSpec(
                name,
                ModuleDefinition(
                    inner, body["input_ports"], body["output_ports"]
                ),
            )
            del pending[name]
            progressed = True
        if not progressed:
            raise ValueError(
                f"circular module references among {sorted(pending)}"
            )
    return _network_from_json(data, library, module_specs)


def load_network(path: Union[str, Path], library: SpecSource) -> Network:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()), library)
