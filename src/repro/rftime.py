"""Rise/fall time pairs.

The paper adopts the technique of Bening et al. [7]: rising and falling
signal settling times are calculated separately.  :class:`RiseFall` is the
two-component value used for ready times, required times, slacks and
delays throughout the analysis; combinational arcs combine pairs according
to their unateness (an inverting arc maps input *fall* to output *rise*).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Union

from repro.netlist.kinds import Unateness

Number = Union[int, float]

#: Sentinel "no signal yet" / "no requirement" values.
NEG_INF = -math.inf
POS_INF = math.inf


@dataclass(frozen=True)
class RiseFall:
    """A pair of values, one per output transition direction."""

    rise: float
    fall: float

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def both(value: Number) -> "RiseFall":
        """The pair ``(value, value)``."""
        return RiseFall(float(value), float(value))

    @staticmethod
    def never() -> "RiseFall":
        """Identity for :meth:`max_with`: no transition has arrived."""
        return RiseFall(NEG_INF, NEG_INF)

    @staticmethod
    def unconstrained() -> "RiseFall":
        """Identity for :meth:`min_with`: no requirement applies."""
        return RiseFall(POS_INF, POS_INF)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def shifted(self, delta: Number) -> "RiseFall":
        return RiseFall(self.rise + float(delta), self.fall + float(delta))

    def plus(self, other: "RiseFall") -> "RiseFall":
        return RiseFall(self.rise + other.rise, self.fall + other.fall)

    def minus(self, other: "RiseFall") -> "RiseFall":
        return RiseFall(self.rise - other.rise, self.fall - other.fall)

    def max_with(self, other: "RiseFall") -> "RiseFall":
        return RiseFall(max(self.rise, other.rise), max(self.fall, other.fall))

    def min_with(self, other: "RiseFall") -> "RiseFall":
        return RiseFall(min(self.rise, other.rise), min(self.fall, other.fall))

    def scaled(self, factor: Number) -> "RiseFall":
        return RiseFall(self.rise * float(factor), self.fall * float(factor))

    def swapped(self) -> "RiseFall":
        """Rise and fall exchanged (effect of an inverting arc)."""
        return RiseFall(self.fall, self.rise)

    def map(self, fn: Callable[[float], float]) -> "RiseFall":
        return RiseFall(fn(self.rise), fn(self.fall))

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    @property
    def worst(self) -> float:
        """The larger component (latest arrival / largest delay)."""
        return max(self.rise, self.fall)

    @property
    def best(self) -> float:
        """The smaller component (earliest arrival / smallest slack)."""
        return min(self.rise, self.fall)

    def is_finite(self) -> bool:
        return math.isfinite(self.rise) and math.isfinite(self.fall)

    # ------------------------------------------------------------------
    # unateness-aware propagation
    # ------------------------------------------------------------------
    def through_arc(self, unateness: Unateness) -> "RiseFall":
        """Input-transition pair seen from the output of an arc.

        For a positive-unate arc an output rise is caused by an input rise;
        for a negative-unate arc by an input fall; a non-unate arc must
        assume the worse of the two for each output transition.
        """
        if unateness is Unateness.POSITIVE:
            return self
        if unateness is Unateness.NEGATIVE:
            return self.swapped()
        worst_component = self.worst
        return RiseFall(worst_component, worst_component)

    def back_through_arc(self, unateness: Unateness) -> "RiseFall":
        """Output-requirement pair seen from the input of an arc.

        The adjoint of :meth:`through_arc` for backward (required time /
        slack) propagation: a non-unate arc imposes the *tighter* (smaller)
        of the two output requirements on both input transitions.
        """
        if unateness is Unateness.POSITIVE:
            return self
        if unateness is Unateness.NEGATIVE:
            return self.swapped()
        best_component = self.best
        return RiseFall(best_component, best_component)

    def __iter__(self):
        yield self.rise
        yield self.fall

    def __str__(self) -> str:
        return f"(r={self.rise:g}, f={self.fall:g})"


def max_over(values: Iterable[RiseFall]) -> RiseFall:
    """Component-wise maximum; :meth:`RiseFall.never` when empty."""
    result = RiseFall.never()
    for value in values:
        result = result.max_with(value)
    return result


def min_over(values: Iterable[RiseFall]) -> RiseFall:
    """Component-wise minimum; :meth:`RiseFall.unconstrained` when empty."""
    result = RiseFall.unconstrained()
    for value in values:
        result = result.min_with(value)
    return result
