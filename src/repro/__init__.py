"""Hummingbird reproduction: system-level timing analysis for logic synthesis.

A faithful Python implementation of N. Weiner and A. Sangiovanni-
Vincentelli, "Timing Analysis in a Logic Synthesis Environment",
26th Design Automation Conference (DAC), 1989.

Quickstart
----------
>>> from repro import (
...     ClockSchedule, Hummingbird, NetworkBuilder, standard_library,
... )
>>> lib = standard_library()
>>> b = NetworkBuilder(lib)
>>> _ = b.clock("phi1"); _ = b.clock("phi2")
>>> _ = b.input("din", "n0", clock="phi1")
>>> _ = b.gate("u1", "INV", A="n0", Z="n1")
>>> _ = b.latch("l1", "DLATCH", D="n1", G="phi2", Q="n2")
>>> _ = b.output("dout", "n2", clock="phi2")
>>> hb = Hummingbird(b.build(), ClockSchedule.two_phase(100))
>>> hb.analyze().intended
True

Public surface
--------------
* network construction: :class:`NetworkBuilder`, :func:`standard_library`,
  :class:`Network`, :class:`ModuleDefinition`, :class:`ModuleSpec`,
  :func:`flatten`, :func:`save_network`, :func:`load_network`;
* clocks: :class:`ClockWaveform`, :class:`ClockSchedule`;
* delays: :func:`estimate_delays`, :class:`DelayParameters`,
  :class:`DelayMap`;
* analysis: :class:`Hummingbird`, :class:`TimingResult`,
  :func:`run_algorithm1`, :func:`run_algorithm2`,
  :func:`check_min_delays`, :func:`find_max_frequency`,
  :func:`run_redesign_loop`.
"""

from repro.cells import CellLibrary, standard_library
from repro.clocks import ClockSchedule, ClockWaveform
from repro.core.algorithm1 import Algorithm1Result, run_algorithm1
from repro.core.algorithm2 import (
    Algorithm2Result,
    TimingConstraints,
    run_algorithm2,
)
from repro.core.analyzer import Hummingbird, TimingResult
from repro.core.corners import Corner, MultiCornerResult, analyze_corners
from repro.core.domains import domain_crossings, render_domain_crossings
from repro.core.enable_paths import (
    EnablePathCheck,
    check_enable_paths,
    enable_path_checks,
)
from repro.core.frequency import FrequencySearchResult, find_max_frequency
from repro.core.mindelay import (
    HoldViolation,
    MinDelayViolation,
    check_hold,
    check_min_delays,
)
from repro.core.export import result_to_dict, save_result, statistics_to_dict
from repro.core.incremental import IncrementalAnalyzer
from repro.core.model import AnalysisModel, build_model
from repro.core.resynthesis import (
    RedesignResult,
    SpeedupModel,
    run_redesign_loop,
)
from repro.core.slack import SlackEngine
from repro.core.statistics import TimingStatistics, timing_statistics
from repro.delay import DelayMap, DelayParameters, estimate_delays
from repro.netlist import (
    ModuleDefinition,
    ModuleSpec,
    Network,
    NetworkBuilder,
    flatten,
    load_network,
    save_network,
    validate_network,
)
from repro.rftime import RiseFall
from repro.sim import EventSimulator, dynamic_intended_check
from repro.synth import (
    parse_expr,
    size_for_timing,
    synthesize_into,
    synthesize_module,
)

__version__ = "1.0.0"

__all__ = [
    "Algorithm1Result",
    "Algorithm2Result",
    "AnalysisModel",
    "CellLibrary",
    "ClockSchedule",
    "Corner",
    "ClockWaveform",
    "DelayMap",
    "DelayParameters",
    "EnablePathCheck",
    "EventSimulator",
    "FrequencySearchResult",
    "HoldViolation",
    "Hummingbird",
    "IncrementalAnalyzer",
    "MinDelayViolation",
    "ModuleDefinition",
    "MultiCornerResult",
    "ModuleSpec",
    "Network",
    "NetworkBuilder",
    "RedesignResult",
    "RiseFall",
    "SlackEngine",
    "SpeedupModel",
    "TimingConstraints",
    "TimingResult",
    "TimingStatistics",
    "analyze_corners",
    "build_model",
    "check_enable_paths",
    "check_hold",
    "check_min_delays",
    "domain_crossings",
    "dynamic_intended_check",
    "enable_path_checks",
    "estimate_delays",
    "find_max_frequency",
    "flatten",
    "load_network",
    "parse_expr",
    "render_domain_crossings",
    "result_to_dict",
    "run_algorithm1",
    "run_algorithm2",
    "run_redesign_loop",
    "save_network",
    "save_result",
    "statistics_to_dict",
    "size_for_timing",
    "standard_library",
    "synthesize_into",
    "synthesize_module",
    "timing_statistics",
    "validate_network",
]
