"""Text rendering: clock waveforms and slow-path reports.

The original flagged slow paths in the OCT database for graphical viewing
in VEM; this package renders the same information as terminal text.
"""

from repro.viz.ascii_waveform import render_schedule, render_waveform
from repro.viz.path_report import render_constraints, render_slow_paths
from repro.viz.windows import render_all_windows, render_cluster_windows

__all__ = [
    "render_all_windows",
    "render_cluster_windows",
    "render_constraints",
    "render_schedule",
    "render_slow_paths",
    "render_waveform",
]
