"""Latch-window charts: the broken-open axis, drawn.

Renders one cluster analysis pass as text: the time axis (one overall
period starting at the pass's break point), each launch port's assertion
instant, each capture's closure instant, and -- for transparent elements
-- the extent of the transparency window with the current position of
the effective clocking point.  The picture makes slack transfer visible:
Algorithm 1 literally slides the ``=`` marker inside each latch's
``[ ... ]`` span.

Example output::

    axis   0 .......................................... 100
    L1@0   A ----[=======|..........]---------------------
    L2@0   C ------------------------[..........|====]----
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.core.sync_elements import InstanceKind


def render_cluster_windows(
    model: AnalysisModel,
    engine: SlackEngine,
    cluster_name: str,
    pass_index: int = 0,
    columns: int = 64,
) -> str:
    """Render one cluster pass's launch/capture geometry."""
    cluster = next(c for c in model.clusters if c.name == cluster_name)
    plan = model.plans[cluster_name]
    if not 0 <= pass_index < plan.num_passes:
        raise ValueError(
            f"cluster {cluster_name!r} has {plan.num_passes} pass(es)"
        )
    period = float(plan.period)
    scale = (columns - 1) / period

    def column(t: float) -> int:
        return max(0, min(columns - 1, int(round(t * scale))))

    lines: List[str] = [
        f"cluster {cluster_name}, pass {pass_index} "
        f"(break at t={plan.breaks[pass_index]}):",
        f"{'axis':<12} 0 {'.' * (columns - 2)} {period:g}",
    ]

    for port in model.launch_ports[cluster_name]:
        instance = port.instance
        position = float(
            plan.position_assertion(instance.assertion_edge, pass_index)
        )
        row = ["-"] * columns
        marker = column(position + instance.assertion_offset)
        if instance.kind is InstanceKind.TRANSPARENT:
            start = column(position)
            end = column(position + instance.width)
            for i in range(start, end + 1):
                row[i] = "."
            row[start] = "["
            row[end] = "]"
            row[column(position + instance.w)] = "="
        row[marker] = "A"
        lines.append(f"{instance.name:<12} {''.join(row)}")

    for port in model.capture_ports[cluster_name]:
        if port.pass_index != pass_index:
            continue
        instance = port.instance
        position = float(
            plan.position_closure(instance.closure_edge, port.pass_index)
        )
        row = ["-"] * columns
        if instance.kind is InstanceKind.TRANSPARENT:
            start = column(position - instance.width)
            end = column(position)
            for i in range(start, end + 1):
                row[i] = "."
            row[start] = "["
            row[end] = "]"
            row[column(position - instance.width + instance.w)] = "="
        row[column(position + instance.closure_offset)] = "C"
        lines.append(f"{instance.name:<12} {''.join(row)}")

    lines.append(
        "A = actual assertion, C = actual closure, [..] = transparency "
        "window, = = effective clocking point"
    )
    return "\n".join(lines)


def render_all_windows(
    model: AnalysisModel,
    engine: SlackEngine,
    columns: int = 64,
    max_clusters: Optional[int] = 8,
) -> str:
    """Window charts for every (non-degenerate) cluster and pass."""
    blocks: List[str] = []
    shown = 0
    for cluster in model.clusters:
        if cluster.is_degenerate:
            continue
        if max_clusters is not None and shown >= max_clusters:
            blocks.append(f"... remaining clusters omitted")
            break
        plan = model.plans[cluster.name]
        for pass_index in range(plan.num_passes):
            blocks.append(
                render_cluster_windows(
                    model, engine, cluster.name, pass_index, columns
                )
            )
        shown += 1
    return "\n\n".join(blocks)
