"""Tabular slow-path and constraint rendering."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

from repro.core.algorithm2 import TimingConstraints
from repro.core.report import SlowPath
from repro.netlist.network import Network


def render_slow_paths(paths: Sequence[SlowPath], limit: int = 20) -> str:
    """A table of the worst slow paths (most violating first)."""
    if not paths:
        return "no slow paths"
    header = f"{'slack':>9}  {'violation':>9}  path"
    lines = [header, "-" * len(header)]
    for path in paths[:limit]:
        lines.append(
            f"{path.slack:>9.3f}  {path.violation:>9.3f}  {path.describe()}"
        )
    if len(paths) > limit:
        lines.append(f"... {len(paths) - limit} more")
    return "\n".join(lines)


def render_constraints(
    constraints: TimingConstraints,
    network: Network,
    nets: Iterable[str] = (),
    limit: int = 40,
) -> str:
    """Ready/required/slack table for selected nets (default: all with
    both values, tightest slack first)."""
    names: List[str] = list(nets)
    if not names:
        names = [
            net.name
            for net in network.nets
            if constraints.ready.get(net.name)
            and constraints.required.get(net.name)
        ]
        names.sort(key=constraints.node_slack)
    header = (
        f"{'net':<24} {'settles':>7} {'ready':>9} {'required':>9} {'slack':>9}"
    )
    lines = [header, "-" * len(header)]
    for name in names[:limit]:
        ready = constraints.ready_time(name)
        required = constraints.required_time(name)
        slack = constraints.node_slack(name)
        lines.append(
            f"{name:<24} {constraints.settling_count(name):>7} "
            f"{_fmt(ready):>9} {_fmt(required):>9} {_fmt(slack):>9}"
        )
    if len(names) > limit:
        lines.append(f"... {len(names) - limit} more")
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return f"{value:.3f}"
