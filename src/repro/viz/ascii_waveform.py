"""ASCII clock waveform rendering.

>>> from repro.clocks import ClockSchedule
>>> print(render_schedule(ClockSchedule.two_phase(100), columns=20))
phi1 |_#######_________|  pulse [5, 45)
phi2 |__________#######|  pulse [55, 95)
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.clocks.schedule import ClockSchedule
from repro.clocks.waveform import ClockWaveform


def render_waveform(
    waveform: ClockWaveform,
    overall_period: Optional[Fraction] = None,
    columns: int = 60,
    high: str = "#",
    low: str = "_",
) -> str:
    """One clock line: ``columns`` samples across the overall period."""
    period = overall_period if overall_period is not None else waveform.period
    cells = []
    for i in range(columns - 3):
        t = period * i / (columns - 3)
        cells.append(high if waveform.is_high(t) else low)
    return "|" + "".join(cells) + "|"


def render_schedule(
    schedule: ClockSchedule, columns: int = 60, show_pulses: bool = True
) -> str:
    """All clocks, one line each, on a shared time axis."""
    width = max(len(name) for name in schedule.clock_names)
    lines = []
    for waveform in schedule.waveforms():
        line = (
            f"{waveform.name:<{width}} "
            f"{render_waveform(waveform, schedule.overall_period, columns)}"
        )
        if show_pulses:
            line += f"  pulse [{waveform.leading}, {waveform.trailing})"
        lines.append(line)
    return "\n".join(lines)
