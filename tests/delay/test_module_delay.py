"""Unit tests for hierarchical module delay characterisation."""

import pytest

from repro.delay import estimate_delays
from repro.delay.estimator import DelayParameters
from repro.delay.module_delay import module_pin_delays
from repro.netlist import ModuleDefinition, ModuleSpec, NetworkBuilder


def _chain_module(lib, length=3):
    """A module that is an inverter chain of known depth."""
    b = NetworkBuilder(lib, name="chain")
    current = "pa"
    for i in range(length):
        b.gate(f"i{i}", "INV", A=current, Z=f"n{i}")
        current = f"n{i}"
    return ModuleSpec(
        "CHAIN",
        ModuleDefinition(
            b.build(), input_ports={"A": "pa"}, output_ports={"Z": current}
        ),
    )


class TestModulePinDelays:
    def test_chain_delay_sums_stages(self, lib):
        spec = _chain_module(lib, length=3)
        inner_map = estimate_delays(spec.definition.inner)
        delays = module_pin_delays(spec, inner_map)
        assert set(delays) == {("A", "Z")}
        dmax, dmin = delays[("A", "Z")]
        single = inner_map.arc_delay(
            spec.definition.inner.cell("i1"), "A", "Z"
        )
        # Three stages: at least 3x one mid-chain stage's best delay.
        assert dmax.worst >= 3 * single.best
        assert dmin.worst <= dmax.best

    def test_longer_chain_longer_delay(self, lib):
        short = _chain_module(lib, 2)
        long = _chain_module(lib, 6)
        d_short = module_pin_delays(
            short, estimate_delays(short.definition.inner)
        )[("A", "Z")][0]
        d_long = module_pin_delays(
            long, estimate_delays(long.definition.inner)
        )[("A", "Z")][0]
        assert d_long.worst > d_short.worst

    def test_parallel_paths_max_and_min(self, lib):
        b = NetworkBuilder(lib, name="par")
        # Short path: one inverter.  Long path: three inverters.  Both
        # reconverge on a NAND2.
        b.gate("s0", "INV", A="pa", Z="sp")
        b.gate("l0", "INV", A="pa", Z="n0")
        b.gate("l1", "INV", A="n0", Z="n1")
        b.gate("l2", "INV", A="n1", Z="lp")
        b.gate("out", "NAND2", A="sp", B="lp", Z="pz")
        spec = ModuleSpec(
            "PAR",
            ModuleDefinition(
                b.build(), input_ports={"A": "pa"}, output_ports={"Z": "pz"}
            ),
        )
        dmax, dmin = module_pin_delays(
            spec, estimate_delays(spec.definition.inner)
        )[("A", "Z")]
        assert dmax.worst > dmin.best
        # The min path (1 INV + NAND) must be shorter than the max (3 INV
        # + NAND) by roughly two inverter delays.
        assert dmax.worst - dmin.worst > 0.5

    def test_estimate_delays_on_module_instance(self, lib):
        spec = _chain_module(lib, 3)
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.instantiate("m", spec, A="w", Z="wz")
        b.latch("l", "DFF", D="wz", CK="clk", Q="wq")
        b.output("o", "wq", clock="clk")
        n = b.build()
        dm = estimate_delays(n)
        assert dm.arcs_of(n.cell("m")) == (("A", "Z"),)
        assert dm.arc_delay(n.cell("m"), "A", "Z").worst > 1.0

    def test_port_load_increases_module_delay(self, lib):
        spec = _chain_module(lib, 3)

        def instance_delay(port_load):
            b = NetworkBuilder(lib)
            b.clock("clk")
            b.input("i", "w", clock="clk")
            b.instantiate("m", spec, A="w", Z="wz")
            b.latch("l", "DFF", D="wz", CK="clk", Q="wq")
            b.output("o", "wq", clock="clk")
            n = b.build()
            dm = estimate_delays(
                n, DelayParameters(module_port_load=port_load)
            )
            return dm.arc_delay(n.cell("m"), "A", "Z").worst

        assert instance_delay(10.0) > instance_delay(1.0)

    def test_module_shares_characterisation_across_instances(self, lib):
        spec = _chain_module(lib, 3)
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.instantiate("m1", spec, A="w", Z="z1")
        b.instantiate("m2", spec, A="w", Z="z2")
        b.gate("j", "NAND2", A="z1", B="z2", Z="zj")
        b.latch("l", "DFF", D="zj", CK="clk", Q="wq")
        b.output("o", "wq", clock="clk")
        n = b.build()
        dm = estimate_delays(n)
        assert dm.arc_delay(n.cell("m1"), "A", "Z") == dm.arc_delay(
            n.cell("m2"), "A", "Z"
        )
