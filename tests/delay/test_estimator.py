"""Unit tests for load computation and the delay map."""

import pytest

from repro.delay import DelayParameters, estimate_delays
from repro.delay.estimator import terminal_load
from repro.netlist import NetworkBuilder
from repro.netlist.kinds import Unateness
from repro.rftime import RiseFall


def _fanout_network(lib, fanout):
    b = NetworkBuilder(lib)
    b.gate("drv", "INV", A="w_in", Z="w_out")
    b.gate("src", "INV", A="w_loop", Z="w_in")
    for i in range(fanout):
        b.gate(f"sink{i}", "INV", A="w_out", Z=f"w_s{i}")
    return b.build()


class TestTerminalLoad:
    def test_load_grows_with_fanout(self, lib):
        params = DelayParameters()
        n1 = _fanout_network(lib, 1)
        n4 = _fanout_network(lib, 4)
        load1 = terminal_load(n1, n1.cell("drv").terminal("Z"), params)
        load4 = terminal_load(n4, n4.cell("drv").terminal("Z"), params)
        assert load4 > load1
        # 1 INV pin (1.0) + wire cap per fanout (0.4).
        assert load1 == pytest.approx(1.4)

    def test_dangling_output_default_load(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g", "INV", A="w", Z="dangling")
        n = b.build()
        params = DelayParameters(dangling_output_load=2.5)
        assert terminal_load(n, n.cell("g").terminal("Z"), params) == 2.5


class TestEstimateDelays:
    def test_delay_increases_with_fanout(self, lib):
        n1, n4 = _fanout_network(lib, 1), _fanout_network(lib, 4)
        d1 = estimate_delays(n1).arc_delay(n1.cell("drv"), "A", "Z")
        d4 = estimate_delays(n4).arc_delay(n4.cell("drv"), "A", "Z")
        assert d4.rise > d1.rise and d4.fall > d1.fall

    def test_min_delay_derated(self, lib):
        n = _fanout_network(lib, 2)
        params = DelayParameters(min_derate=0.5)
        dm = estimate_delays(n, params)
        dmax = dm.arc_delay(n.cell("drv"), "A", "Z")
        dmin = dm.arc_delay_min(n.cell("drv"), "A", "Z")
        assert dmin.rise == pytest.approx(0.5 * dmax.rise)

    def test_rejects_bad_derate(self):
        with pytest.raises(ValueError):
            DelayParameters(min_derate=0.0)

    def test_sync_timing_from_spec(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.latch("l", "DLATCH", D="d", G="clk", Q="q")
        n = b.build()
        timing = estimate_delays(n).sync_timing(n.cell("l"))
        spec = lib.spec("DLATCH")
        assert timing.setup == spec.setup
        assert timing.d_to_q == spec.d_to_q
        assert timing.c_to_q == spec.c_to_q

    def test_sync_timing_on_gate_raises(self, lib):
        n = _fanout_network(lib, 1)
        with pytest.raises(KeyError):
            estimate_delays(n).sync_timing(n.cell("drv"))

    def test_arc_unateness_exposed(self, lib):
        n = _fanout_network(lib, 1)
        dm = estimate_delays(n)
        assert (
            dm.arc_unateness(n.cell("drv"), "A", "Z") is Unateness.NEGATIVE
        )

    def test_arcs_of_lists_spec_arcs(self, lib):
        b = NetworkBuilder(lib)
        b.gate("m", "MUX2", A="a", B="b", S="s", Z="z")
        n = b.build()
        dm = estimate_delays(n)
        assert set(dm.arcs_of(n.cell("m"))) == {
            ("A", "Z"),
            ("B", "Z"),
            ("S", "Z"),
        }


class TestWhatIfAdjustments:
    def test_with_scaled_cell(self, lib):
        n = _fanout_network(lib, 1)
        dm = estimate_delays(n)
        before = dm.arc_delay(n.cell("drv"), "A", "Z")
        dm2 = dm.with_scaled_cell("drv", 0.5)
        after = dm2.arc_delay(n.cell("drv"), "A", "Z")
        assert after.rise == pytest.approx(0.5 * before.rise)
        # Original map unchanged.
        assert dm.arc_delay(n.cell("drv"), "A", "Z") == before

    def test_with_arc_override(self, lib):
        n = _fanout_network(lib, 1)
        dm = estimate_delays(n).with_arc_override(
            "drv", "A", "Z", RiseFall(9.0, 8.0)
        )
        assert dm.arc_delay(n.cell("drv"), "A", "Z") == RiseFall(9.0, 8.0)
        assert dm.arc_delay_min(n.cell("drv"), "A", "Z") == RiseFall(9.0, 8.0)

    def test_override_unknown_arc_raises(self, lib):
        n = _fanout_network(lib, 1)
        with pytest.raises(KeyError):
            estimate_delays(n).with_arc_override(
                "drv", "Q", "Z", RiseFall(1.0, 1.0)
            )

    def test_scale_rejects_negative(self, lib):
        n = _fanout_network(lib, 1)
        with pytest.raises(ValueError):
            estimate_delays(n).with_scaled_cell("drv", -1.0)

    def test_worst_arc_delay(self, lib):
        n = _fanout_network(lib, 1)
        dm = estimate_delays(n)
        drv = n.cell("drv")
        assert dm.worst_arc_delay(drv) == dm.arc_delay(drv, "A", "Z").worst
