"""Unit tests for rise/fall pairs."""

import math

from repro.netlist.kinds import Unateness
from repro.rftime import RiseFall, max_over, min_over


class TestConstruction:
    def test_both(self):
        assert RiseFall.both(3) == RiseFall(3.0, 3.0)

    def test_never_is_max_identity(self):
        v = RiseFall(1.0, 2.0)
        assert RiseFall.never().max_with(v) == v

    def test_unconstrained_is_min_identity(self):
        v = RiseFall(1.0, 2.0)
        assert RiseFall.unconstrained().min_with(v) == v


class TestArithmetic:
    def test_shifted(self):
        assert RiseFall(1.0, 2.0).shifted(0.5) == RiseFall(1.5, 2.5)

    def test_plus_minus_roundtrip(self):
        a, b = RiseFall(1.0, 2.0), RiseFall(0.25, 0.75)
        assert a.plus(b).minus(b) == a

    def test_swapped(self):
        assert RiseFall(1.0, 2.0).swapped() == RiseFall(2.0, 1.0)

    def test_worst_best(self):
        v = RiseFall(1.0, 2.0)
        assert v.worst == 2.0
        assert v.best == 1.0

    def test_scaled(self):
        assert RiseFall(2.0, 4.0).scaled(0.5) == RiseFall(1.0, 2.0)

    def test_iter(self):
        assert list(RiseFall(1.0, 2.0)) == [1.0, 2.0]


class TestUnatenessPropagation:
    def test_positive_forward_identity(self):
        v = RiseFall(1.0, 2.0)
        assert v.through_arc(Unateness.POSITIVE) == v

    def test_negative_forward_swaps(self):
        assert RiseFall(1.0, 2.0).through_arc(Unateness.NEGATIVE) == RiseFall(
            2.0, 1.0
        )

    def test_non_unate_forward_takes_worst(self):
        assert RiseFall(1.0, 2.0).through_arc(Unateness.NON_UNATE) == RiseFall(
            2.0, 2.0
        )

    def test_non_unate_backward_takes_best(self):
        assert RiseFall(1.0, 2.0).back_through_arc(
            Unateness.NON_UNATE
        ) == RiseFall(1.0, 1.0)

    def test_forward_backward_adjoint_for_unate_arcs(self):
        # For unate arcs, backward is the inverse re-indexing of forward.
        v = RiseFall(1.0, 2.0)
        for sense in (Unateness.POSITIVE, Unateness.NEGATIVE):
            assert v.through_arc(sense).back_through_arc(sense) == v


class TestReductions:
    def test_max_over(self):
        vals = [RiseFall(1.0, 5.0), RiseFall(3.0, 2.0)]
        assert max_over(vals) == RiseFall(3.0, 5.0)

    def test_min_over(self):
        vals = [RiseFall(1.0, 5.0), RiseFall(3.0, 2.0)]
        assert min_over(vals) == RiseFall(1.0, 2.0)

    def test_max_over_empty(self):
        assert max_over([]) == RiseFall.never()

    def test_is_finite(self):
        assert RiseFall(1.0, 2.0).is_finite()
        assert not RiseFall(1.0, math.inf).is_finite()
        assert not RiseFall.never().is_finite()
