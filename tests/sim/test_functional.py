"""Tests for zero-delay functional evaluation."""

import itertools

import pytest

from repro.netlist import NetworkBuilder
from repro.sim.functional import (
    FunctionError,
    evaluate_combinational,
    evaluate_module,
)


class TestEvaluateCombinational:
    def test_gate_chain(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g1", "NAND2", A="a", B="b", Z="n1")
        b.gate("g2", "INV", A="n1", Z="y")
        network = b.build()
        for a, bv in itertools.product([False, True], repeat=2):
            values = evaluate_combinational(network, {"a": a, "b": bv})
            assert values["y"] == (a and bv)

    def test_all_default_gates_have_functions(self, lib):
        for spec in lib.gates():
            assert spec.function is not None, spec.name
            # Smoke-evaluate with all-False inputs.
            pins = {pin: False for pin in spec.inputs}
            assert isinstance(spec.function(pins), bool)

    def test_gate_functions_match_semantics(self, lib):
        cases = {
            "NAND3": lambda a, b, c: not (a and b and c),
            "NOR3": lambda a, b, c: not (a or b or c),
            "AOI21": lambda a, b, c: not ((a and b) or c),
            "OAI21": lambda a, b, c: not ((a or b) and c),
        }
        for name, golden in cases.items():
            spec = lib.spec(name)
            for a, b, c in itertools.product([False, True], repeat=3):
                assert spec.function({"A": a, "B": b, "C": c}) == golden(
                    a, b, c
                ), name

    def test_mux_function(self, lib):
        spec = lib.spec("MUX2")
        assert spec.function({"A": True, "B": False, "S": False}) is True
        assert spec.function({"A": True, "B": False, "S": True}) is False

    def test_partial_cone_skips_unreachable(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g1", "INV", A="a", Z="y1")
        b.gate("g2", "INV", A="other", Z="y2")
        values = evaluate_combinational(b.build(), {"a": True})
        assert values["y1"] is False
        assert "y2" not in values

    def test_functionless_cell_raises(self, lib):
        from dataclasses import replace

        b = NetworkBuilder(lib)
        silent = replace(lib.spec("INV"), function=None)
        b.instantiate("g", silent, A="a", Z="y")
        with pytest.raises(FunctionError):
            evaluate_combinational(b.build(), {"a": True})


class TestEvaluateModule:
    def test_missing_port_rejected(self, lib):
        from repro.synth import synthesize_module

        module = synthesize_module("M", {"y": "a & b"}, lib)
        with pytest.raises(ValueError, match="missing values"):
            evaluate_module(module, {"a": True})
