"""Tests for the event-driven timing simulator."""

import pytest

from repro.clocks import ClockSchedule
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder
from repro.sim import EventSimulator, dynamic_intended_check

from tests.conftest import build_ff_stage


def _simulate(network, schedule, cycles=6, stimulus=None, seed=0):
    delays = estimate_delays(network)
    sim = EventSimulator(network, schedule, delays, stimulus, seed)
    return sim, sim.run(cycles)


class TestClockGeneration:
    def test_clock_net_follows_waveform(self, lib):
        network, schedule = build_ff_stage(lib, chain=1, period=10)
        __, trace = _simulate(network, schedule, cycles=3)
        times = trace.transitions["clk"]
        assert times[0] == (0.0, True)
        assert times[1] == (5.0, False)
        assert times[2] == (10.0, True)

    def test_buffered_clock_is_delayed(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.gate("cb", "BUF", A="clk", Z="bclk")
        b.input("i", "w", clock="clk")
        b.latch("l", "DLATCH", D="w", G="bclk", Q="q")
        b.output("o", "q", clock="clk")
        network = b.build()
        schedule = ClockSchedule.single("clk", 20)
        sim, trace = _simulate(network, schedule, cycles=2)
        delay = sim.delays.arc_delay(network.cell("cb"), "A", "Z")
        (t_clk, __) = trace.transitions["clk"][0]
        (t_bclk, __) = trace.transitions["bclk"][0]
        assert t_bclk == pytest.approx(t_clk + delay.rise)


class TestGateBehaviour:
    def test_inverter_inverts_with_delay(self, lib):
        network, schedule = build_ff_stage(lib, chain=1, period=20)
        sim, trace = _simulate(
            network, schedule, cycles=4, stimulus=lambda n, c: c % 2 == 0
        )
        inv = network.cell("inv0")
        delay = sim.delays.arc_delay(inv, "A", "Z")
        n0 = trace.transitions["n0"]
        n1 = trace.transitions["n1"]
        assert n0 and n1
        # Every n1 transition is an inversion of an n0 transition, one
        # arc delay later.
        for (t0, v0), (t1, v1) in zip(n0, n1):
            assert v1 == (not v0)
            expected = delay.rise if v1 else delay.fall
            assert t1 - t0 == pytest.approx(expected)


class TestLatchBehaviour:
    def _latch_design(self, lib):
        b = NetworkBuilder(lib)
        b.clock("phi")
        b.input("i", "d_in", clock="phi", edge="leading", offset=-6.0)
        b.latch("l", "DLATCH", D="d_in", G="phi", Q="q")
        b.output("o", "q", clock="phi")
        return b.build(), ClockSchedule.single("phi", 20, leading=8, trailing=16)

    def test_transparent_window_passes_data(self, lib):
        network, schedule = self._latch_design(lib)
        sim, trace = _simulate(
            network, schedule, cycles=4, stimulus=lambda n, c: c % 2 == 0
        )
        timing = sim.delays.sync_timing(network.cell("l"))
        # Data changes at 2.0 each cycle (before the window at 8); Q
        # updates at window opening + c_to_q.
        q = trace.transitions["q"]
        assert q
        first_time, first_value = q[0]
        assert first_time == pytest.approx(8 + timing.c_to_q)
        assert first_value is True

    def test_data_change_during_window_flows_through(self, lib):
        network, schedule = self._latch_design(lib)
        # Drive the input *inside* the window: offset +2 puts changes at
        # t = 10 (window is [8, 16)).
        network.cell("i").attrs["offset"] = 2.0
        sim, trace = _simulate(
            network, schedule, cycles=4, stimulus=lambda n, c: c % 2 == 0
        )
        timing = sim.delays.sync_timing(network.cell("l"))
        q = trace.transitions["q"]
        assert q[0][0] == pytest.approx(10 + timing.d_to_q)

    def test_data_change_after_close_held(self, lib):
        network, schedule = self._latch_design(lib)
        network.cell("i").attrs["offset"] = 9.0  # t = 17, window closed
        sim, trace = _simulate(
            network, schedule, cycles=4, stimulus=lambda n, c: c % 2 == 0
        )
        timing = sim.delays.sync_timing(network.cell("l"))
        q = trace.transitions["q"]
        # Value launched at 17 only appears when the *next* window opens.
        assert q[0][0] == pytest.approx(28 + timing.c_to_q)


class TestEdgeTriggered:
    def test_captures_on_trailing_edge_only(self, lib):
        network, schedule = build_ff_stage(lib, chain=1, period=20)
        sim, trace = _simulate(
            network, schedule, cycles=4, stimulus=lambda n, c: c % 2 == 0
        )
        timing = sim.delays.sync_timing(network.cell("ff_a"))
        n0 = trace.transitions["n0"]
        # Q changes only at falling clock edges (10, 30, 50...) + c_to_q.
        for t, __ in n0:
            offset = (t - timing.c_to_q) % 20
            assert offset == pytest.approx(10.0)


class TestGuards:
    def test_event_budget(self, lib):
        network, schedule = build_ff_stage(lib, chain=4, period=20)
        delays = estimate_delays(network)
        sim = EventSimulator(
            network, schedule, delays, max_events=5
        )
        with pytest.raises(RuntimeError, match="events"):
            sim.run(cycles=4)

    def test_functionless_gate_rejected(self, lib):
        from dataclasses import replace

        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        silent = replace(lib.spec("INV"), function=None)
        b.instantiate("g", silent, A="w", Z="z")
        b.latch("f", "DFF", D="z", CK="clk", Q="q")
        b.output("o", "q", clock="clk")
        network = b.build()
        delays = estimate_delays(network)
        sim = EventSimulator(
            network,
            ClockSchedule.single("clk", 20),
            delays,
            stimulus=lambda n, c: c % 2 == 0,
        )
        with pytest.raises(ValueError, match="boolean"):
            sim.run(cycles=2)
