"""Dynamic validation of the static analysis.

The strongest correctness evidence in this repository: the event
simulator implements the paper's *definition* of intended behaviour (the
real system must capture the same values as the ideal, delays-to-zero
system), so

* STA "intended" + clean supplementary check  =>  no simulated stimulus
  may produce a capture mismatch or setup violation,
* designs STA rejects show real capture mismatches in simulation.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm1 import run_algorithm1
from repro.core.mindelay import check_min_delays
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import fig1_circuit, latch_pipeline
from repro.sim import dynamic_intended_check

from tests.conftest import build_ff_stage


def _sta_verdict(network, schedule, delays):
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    result = run_algorithm1(model, engine)
    min_clean = not check_min_delays(model, engine)
    return result, min_clean


def _assert_sound(network, schedule, seeds=(0, 1, 2), cycles=8):
    delays = estimate_delays(network)
    result, min_clean = _sta_verdict(network, schedule, delays)
    assert result.intended and min_clean, "workload must be STA-clean"
    for seed in seeds:
        check = dynamic_intended_check(
            network, schedule, delays, cycles=cycles, seed=seed
        )
        assert check.captures_compared > 0
        assert check.intended, (seed, check.mismatches[:3])


class TestSoundnessOnCleanDesigns:
    def test_ff_pipeline(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        _assert_sound(network, schedule)

    def test_latch_pipeline_with_borrowing(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[18, 2], period=26, library=lib
        )
        _assert_sound(network, schedule)

    def test_four_phase_fig1(self):
        network, schedule = fig1_circuit(period=100)
        _assert_sound(network, schedule)

    def test_balanced_latch_pipeline(self, lib):
        network, schedule = latch_pipeline(
            stages=4, chain_length=4, period=40, library=lib
        )
        _assert_sound(network, schedule)


class TestDetectionOnSlowDesigns:
    def test_slow_ff_pipeline_mismatches(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=2.5)
        delays = estimate_delays(network)
        result, __ = _sta_verdict(network, schedule, delays)
        assert not result.intended
        check = dynamic_intended_check(
            network,
            schedule,
            delays,
            cycles=10,
            stimulus=lambda name, cycle: cycle % 2 == 0,
        )
        assert not check.intended
        assert check.mismatches

    def test_slow_latch_pipeline_mismatches(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[48, 48], period=12, library=lib
        )
        delays = estimate_delays(network)
        result, __ = _sta_verdict(network, schedule, delays)
        assert not result.intended
        check = dynamic_intended_check(
            network,
            schedule,
            delays,
            cycles=12,
            stimulus=lambda name, cycle: cycle % 2 == 0,
        )
        assert not check.intended


class TestSoundnessProperty:
    @given(
        lengths=st.lists(
            st.integers(min_value=1, max_value=12), min_size=2, max_size=3
        ),
        period=st.integers(min_value=14, max_value=60),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sta_intended_implies_simulation_clean(
        self, lengths, period, seed
    ):
        network, schedule = latch_pipeline(
            stages=len(lengths), stage_lengths=lengths, period=period
        )
        delays = estimate_delays(network)
        result, min_clean = _sta_verdict(network, schedule, delays)
        if not (result.intended and min_clean):
            return  # soundness only promises anything for clean designs
        check = dynamic_intended_check(
            network, schedule, delays, cycles=6, seed=seed
        )
        assert check.intended, check.mismatches[:3]
