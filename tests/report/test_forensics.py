"""Tests for the explainable path reports (repro.report.forensics).

The borrow-pipeline numbers asserted here are hand-computed from the
two-phase schedule ``ClockSchedule.two_phase(12)``:

* phi1 pulse ``[3/5, 27/5)``, phi2 pulse ``[33/5, 57/5)``, so every
  latch window is ``W = 24/5 = 4.8`` wide;
* endpoint ``s1_l`` is captured on phi2 (closure edge ``57/5``) and
  launched from ``s0_l`` on phi1 (assertion edge ``3/5``), hence the
  ideal path constraint ``D_p = 57/5 - 3/5 = 54/5 = 10.8`` (Section 4);
* ``O_x = max(O_zc, O_zd)`` and ``O_y = min(O_dc, O_dz)`` are the
  Section 5 terminal-offset decompositions, and the borrowed time
  through a latch is ``max(0, O_zd - O_zc)``.
"""

import json
import math

import pytest

from repro.core.analyzer import Hummingbird
from repro.generators.pipelines import latch_pipeline
from repro.report import PathForensics

from tests.conftest import build_ff_stage


@pytest.fixture(scope="module")
def borrow_result():
    """Long first stage: the upstream path borrows through the latches."""
    network, schedule = latch_pipeline(
        stages=4, stage_lengths=[12, 1, 1, 1], period=12.0
    )
    return Hummingbird(network, schedule).analyze()


@pytest.fixture(scope="module")
def forensics(borrow_result):
    return borrow_result.path_forensics()


class TestHandComputedOffsets:
    def test_ideal_path_constraint(self, forensics):
        f = forensics.explain("s1_l")
        # D_p = capture closure edge - launch assertion edge
        #     = 57/5 - 3/5 = 10.8 for a phi1 -> phi2 stage.
        assert f.ideal_constraint == pytest.approx(10.8)

    def test_launch_offset_is_max_of_parts(self, forensics):
        f = forensics.explain("s1_l")
        parts = f.launch_offset_parts
        assert f.launch_offset == pytest.approx(
            max(parts["o_zc"], parts["o_zd"])
        )
        # The long first stage makes the latch input-limited.
        assert parts["o_zd"] > parts["o_zc"]
        assert parts["bound"] == "input (O_zd)"

    def test_capture_offset_is_min_of_parts(self, forensics):
        f = forensics.explain("s1_l")
        parts = f.capture_offset_parts
        assert f.capture_offset == pytest.approx(
            min(parts["o_dc"], parts["o_dz"])
        )
        assert parts["bound"] in ("setup (O_dc)", "window (O_dz)")

    def test_available_time_identity(self, forensics):
        f = forensics.explain("s1_l")
        # available = D_p - O_x + O_y (the Section 5 path budget).
        assert f.available_time == pytest.approx(
            f.ideal_constraint - f.launch_offset + f.capture_offset
        )

    def test_slack_is_closure_minus_arrival(self, forensics):
        f = forensics.explain("s1_l")
        assert f.slack == pytest.approx(f.closure - f.arrival)
        assert not f.violated
        assert f.binding_constraint == "setup"


class TestBorrowChain:
    def test_immediate_donor(self, forensics):
        f = forensics.explain("s1_l")
        assert f.launch_instance == "s0_l@0"
        assert f.borrow_chain, "expected a borrow chain"
        link = f.borrow_chain[0]
        assert link.latch == "s0_l@0"
        # borrowed = max(0, O_zd - O_zc): the window position is O_zd.
        assert link.borrowed == pytest.approx(
            link.position - link.control_offset
        )
        assert link.borrowed > 0
        assert link.window == pytest.approx(4.8)  # phi1 pulse width
        assert link.donor.endswith("/Q")
        assert link.recipient.endswith("/D")

    def test_figure2_style_chain_walks_upstream(self, forensics):
        # The long stage feeds s0_l; every later latch is input-limited
        # because the borrow propagates: s3_l's path chains back
        # s2_l -> s1_l -> s0_l (downstream first).
        f = forensics.explain("s3_l")
        latches = [link.latch for link in f.borrow_chain]
        assert latches == ["s2_l@0", "s1_l@0", "s0_l@0"]
        for link in f.borrow_chain:
            assert link.borrowed > 0
            assert link.donor == f"{link.cell}/Q"
            assert link.recipient == f"{link.cell}/D"

    def test_edge_triggered_design_has_no_chain(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=100.0)
        result = Hummingbird(network, schedule).analyze()
        f = result.forensics("dout")
        assert f.borrow_chain == ()
        assert f.capture_offset_parts.get("bound") == "fixed"


class TestEndpointResolution:
    def test_resolves_net_instance_cell_names(self, forensics):
        by_cell = forensics.explain("s1_l")
        by_instance = forensics.explain("s1_l@0")
        by_net = forensics.explain(by_cell.capture_net)
        assert (
            by_cell.capture_instance
            == by_instance.capture_instance
            == by_net.capture_instance
        )

    def test_unknown_endpoint_raises(self, forensics):
        with pytest.raises(KeyError, match="no capture endpoint"):
            forensics.explain("nonexistent_net_42")

    def test_endpoints_listing(self, forensics):
        labels = forensics.endpoints()
        assert labels == sorted(labels)
        assert any("s1_l@0" in label for label in labels)


class TestRenderers:
    def test_text_mentions_the_story(self, forensics):
        f = forensics.explain("s1_l")
        text = forensics.render_text(f)
        assert "D_p" in text
        assert "O_x" in text and "O_y" in text
        assert "borrow chain" in text
        assert "launched by s0_l@0" in text

    def test_json_schema_round_trip(self, forensics):
        explained = [forensics.explain("s1_l"), forensics.explain("s3_l")]
        doc = json.loads(forensics.to_json(explained))
        assert doc["schema"] == "repro.report/1"
        assert doc["design"] == "latch_pipeline"
        assert len(doc["endpoints"]) == 2
        first = doc["endpoints"][0]
        for key in (
            "endpoint", "slack", "ideal_constraint", "launch_offset",
            "capture_offset", "available_time", "borrow_chain", "steps",
            "binding_constraint",
        ):
            assert key in first
        # Re-serialising the parsed document must be stable.
        assert json.loads(json.dumps(doc)) == doc

    def test_json_encodes_infinities_as_strings(self, forensics):
        f = forensics.explain("s1_l")
        payload = f.to_dict()
        patched = json.dumps(payload)  # must never raise
        assert "Infinity" not in patched

    def test_html_is_static_and_escaped(self, forensics):
        explained = [forensics.explain("s1_l")]
        page = forensics.render_html(explained)
        assert page.startswith("<!DOCTYPE html>")
        assert "latch_pipeline" in page
        assert "slack histogram" in page
        assert "<script" not in page  # static, dependency-free

    def test_result_accessor(self, borrow_result):
        direct = borrow_result.forensics("s1_l")
        assert direct.capture_instance == "s1_l@0"
        assert isinstance(borrow_result.path_forensics(), PathForensics)


class TestWorstEndpointSelection:
    def test_multiple_matches_pick_worst(self, forensics, borrow_result):
        # Querying a cell name with several generic instances must
        # explain the worst-slack one.
        f = forensics.explain("s1_l")
        capture = borrow_result.algorithm1.slacks.capture
        candidates = [
            value
            for name, value in capture.items()
            if name.startswith("s1_l")
        ]
        assert f.slack == pytest.approx(min(candidates))
        assert not math.isinf(f.slack)
