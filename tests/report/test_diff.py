"""Tests for run-to-run manifest diffs (repro.report.diff)."""

import json

import pytest

from repro.core.analyzer import Hummingbird
from repro.generators.pipelines import latch_pipeline
from repro.report import diff_manifests, write_manifest


def _manifest(endpoint_slacks, label="run", iterations=3, wns=None):
    values = [v for v in endpoint_slacks.values() if isinstance(v, float)]
    return {
        "schema": "repro.manifest/1",
        "label": label,
        "input_digest": "d" * 64,
        "timing": {
            "worst_slack": wns if wns is not None else min(values),
            "total_negative_slack": sum(v for v in values if v <= 0),
            "endpoint_slacks": endpoint_slacks,
        },
        "iterations": {"total": iterations},
        "cost": {"analysis_s": 0.01},
    }


@pytest.fixture
def golden_pair():
    """One fixed endpoint, one regressed into violation, plus noise."""
    a = _manifest(
        {
            "fixed_ep": -0.5,   # violated in A, met in B
            "broken_ep": 1.0,   # met in A, violated in B
            "slower_ep": 2.0,   # met, loses slack
            "faster_ep": 1.0,   # met, gains slack
            "stable_ep": 3.0,   # unchanged
            "gone_ep": 0.7,     # removed in B
        },
        label="baseline",
    )
    b = _manifest(
        {
            "fixed_ep": 0.4,
            "broken_ep": -0.2,
            "slower_ep": 1.5,
            "faster_ep": 1.6,
            "stable_ep": 3.0,
            "new_ep": 0.9,      # added in B
        },
        label="candidate",
        iterations=5,
    )
    return a, b


class TestGoldenPair:
    def test_statuses(self, golden_pair):
        diff = diff_manifests(*golden_pair)
        status = {e.endpoint: e.status for e in diff.endpoints}
        assert status == {
            "fixed_ep": "fixed",
            "broken_ep": "new-violation",
            "slower_ep": "regressed",
            "faster_ep": "improved",
            "stable_ep": "unchanged",
            "gone_ep": "removed",
            "new_ep": "added",
        }

    def test_violation_lists(self, golden_pair):
        diff = diff_manifests(*golden_pair)
        assert [e.endpoint for e in diff.new_violations] == ["broken_ep"]
        assert [e.endpoint for e in diff.fixed_violations] == ["fixed_ep"]
        assert diff.has_regression

    def test_deltas(self, golden_pair):
        diff = diff_manifests(*golden_pair)
        by_name = {e.endpoint: e for e in diff.endpoints}
        assert by_name["slower_ep"].delta == pytest.approx(-0.5)
        assert by_name["faster_ep"].delta == pytest.approx(0.6)
        assert by_name["gone_ep"].delta is None
        # WNS moves from fixed_ep's -0.5 to broken_ep's -0.2.
        assert diff.wns_delta == pytest.approx(0.3)

    def test_iteration_regression(self, golden_pair):
        diff = diff_manifests(*golden_pair)
        assert diff.iteration_regression == 2

    def test_render_text_verdict_and_order(self, golden_pair):
        text = diff_manifests(*golden_pair).render_text()
        assert "baseline -> candidate" in text
        assert "REGRESSION detected" in text
        assert "(REGRESSION +2)" in text
        # New violations are listed before improvements.
        assert text.index("broken_ep") < text.index("faster_ep")

    def test_to_dict_schema(self, golden_pair):
        doc = diff_manifests(*golden_pair).to_dict()
        assert doc["schema"] == "repro.diff/1"
        assert doc["has_regression"] is True
        assert doc["counts"]["new-violation"] == 1
        assert doc["counts"]["fixed"] == 1
        # Unchanged endpoints are elided from the endpoint listing.
        listed = {e["endpoint"] for e in doc["endpoints"]}
        assert "stable_ep" not in listed
        json.dumps(doc)  # must be JSON-serialisable


class TestIdenticalRuns:
    def test_no_regression(self):
        a = _manifest({"ep": 1.0}, label="a")
        b = _manifest({"ep": 1.0}, label="b")
        diff = diff_manifests(a, b)
        assert not diff.has_regression
        assert diff.endpoints[0].status == "unchanged"
        assert "no regression" in diff.render_text()

    def test_sub_tolerance_jitter_is_unchanged(self):
        a = _manifest({"ep": 1.0}, label="a")
        b = _manifest({"ep": 1.0 + 1e-12}, label="b")
        assert diff_manifests(a, b).endpoints[0].status == "unchanged"


class TestInfinities:
    def test_unconstrained_endpoints_compare_equal(self):
        a = _manifest({"ep": "inf"}, label="a", wns="inf")
        b = _manifest({"ep": "inf"}, label="b", wns="inf")
        diff = diff_manifests(a, b)
        assert diff.endpoints[0].delta == 0.0
        assert diff.wns_delta == 0.0
        assert not diff.has_regression


class TestRealManifests:
    """End-to-end: two analyzer runs at different clock periods."""

    @staticmethod
    def _manifest_for(period, label, tmp_path):
        network, schedule = latch_pipeline(
            stages=4, stage_lengths=[12, 1, 1, 1], period=period
        )
        result = Hummingbird(network, schedule).analyze()
        return write_manifest(
            result.manifest(label=label), tmp_path / f"{label}.json"
        )

    def test_tightened_clock_regresses(self, tmp_path):
        slow = self._manifest_for(12.0, "slow", tmp_path)
        fast = self._manifest_for(7.0, "fast", tmp_path)
        diff = diff_manifests(slow, fast)
        assert not diff.same_inputs  # different schedules
        assert diff.has_regression
        # s0_l@0 goes negative at period 7: a new violation.
        assert "s0_l@0" in [e.endpoint for e in diff.new_violations]
        # The reverse diff reports it as fixed.
        reverse = diff_manifests(fast, slow)
        assert "s0_l@0" in [e.endpoint for e in reverse.fixed_violations]

    def test_identical_runs_diff_clean(self, tmp_path):
        a = self._manifest_for(12.0, "a", tmp_path)
        b = self._manifest_for(12.0, "b", tmp_path)
        diff = diff_manifests(a, b)
        assert diff.same_inputs
        assert not diff.has_regression
        assert all(e.status == "unchanged" for e in diff.endpoints)
