"""Tests for the slack-transfer audit trail (repro.report.provenance)."""

import json

import pytest

from repro.core.analyzer import Hummingbird
from repro.generators.pipelines import latch_pipeline
from repro.report import (
    AuditTrail,
    TransferEvent,
    active_trail,
    auditing,
    set_trail,
    trail_to_dict,
    write_audit_json,
)


@pytest.fixture(autouse=True)
def _no_leak():
    """Every test must leave the process-wide trail disabled."""
    assert active_trail() is None
    yield
    assert active_trail() is None


@pytest.fixture
def borrowing_design():
    """Uneven stage lengths force slack transfer through the latches."""
    return latch_pipeline(
        stages=4, stage_lengths=[12, 1, 1, 1], period=12.0
    )


def _run(design):
    network, schedule = design
    return Hummingbird(network, schedule).analyze()


class TestEnablePattern:
    def test_disabled_by_default(self, borrowing_design):
        # Analysis without auditing must neither fail nor install a trail.
        result = _run(borrowing_design)
        assert result.intended
        assert active_trail() is None

    def test_auditing_context_installs_and_restores(self):
        outer = AuditTrail()
        set_trail(outer)
        try:
            with auditing() as inner:
                assert active_trail() is inner
                assert inner is not outer
            assert active_trail() is outer
        finally:
            set_trail(None)

    def test_set_trail_returns_previous(self):
        trail = AuditTrail()
        assert set_trail(trail) is None
        assert set_trail(None) is trail


class TestRecordedEvents:
    def test_transfers_are_recorded(self, borrowing_design):
        with auditing() as trail:
            result = _run(borrowing_design)
        assert result.intended
        assert trail.total_events > 0
        assert len(trail.events) == trail.total_events
        for event in trail.events:
            assert event.amount > 0.0
            assert event.direction in ("forward", "backward")
            assert event.instance
            assert event.donor and event.recipient
            assert event.phase.startswith(("iteration", "alg2"))
            assert event.cycle >= 1

    def test_forward_donor_is_the_data_input(self, borrowing_design):
        with auditing() as trail:
            _run(borrowing_design)
        forward = [e for e in trail.events if e.direction == "forward"]
        backward = [e for e in trail.events if e.direction == "backward"]
        assert forward and backward
        for event in forward:
            # Input-side paths donate to output-side ones.
            assert event.donor.endswith("/D") or ".D" in event.donor
            assert event.recipient.endswith("/Q") or ".Q" in event.recipient
        for event in backward:
            assert event.donor.endswith("/Q") or ".Q" in event.donor
            assert event.recipient.endswith("/D") or ".D" in event.recipient

    def test_window_moves_match_direction(self, borrowing_design):
        with auditing() as trail:
            _run(borrowing_design)
        for event in trail.events:
            delta = event.window_after - event.window_before
            if event.direction == "forward":
                assert delta == pytest.approx(-event.amount)
            else:
                assert delta == pytest.approx(event.amount)

    def test_sequence_is_gapless(self, borrowing_design):
        with auditing() as trail:
            _run(borrowing_design)
        assert [e.sequence for e in trail.events] == list(
            range(trail.total_events)
        )

    def test_aggregate_totals(self, borrowing_design):
        with auditing() as trail:
            _run(borrowing_design)
        assert trail.total_moved == pytest.approx(
            sum(e.amount for e in trail.events)
        )
        assert trail.moved_by_direction["forward"] == pytest.approx(
            sum(e.amount for e in trail.events if e.direction == "forward")
        )


class TestRingBuffer:
    @staticmethod
    def _record(trail, n):
        for i in range(n):
            trail.record(
                phase="iteration1.forward",
                cycle=1,
                operation="complete_forward",
                instance=f"l{i}@0",
                cell=f"l{i}",
                donor=f"l{i}/D",
                recipient=f"l{i}/Q",
                amount=1.0,
                window_before=5.0,
                window_after=4.0,
                driving_slack=1.0,
            )

    def test_capacity_bounds_retained_events(self):
        trail = AuditTrail(capacity=4)
        self._record(trail, 10)
        assert len(trail) == 4
        assert trail.total_events == 10
        assert trail.dropped_events == 6
        # The *newest* events are retained.
        assert [e.instance for e in trail.events] == [
            "l6@0", "l7@0", "l8@0", "l9@0",
        ]
        # Aggregates keep counting past the cap.
        assert trail.total_moved == pytest.approx(10.0)

    def test_net_movement_signs(self):
        trail = AuditTrail()
        self._record(trail, 1)
        trail.record(
            phase="iteration2.backward", cycle=1,
            operation="complete_backward", instance="l0@0", cell="l0",
            donor="l0/Q", recipient="l0/D", amount=0.25,
            window_before=4.0, window_after=4.25, driving_slack=2.0,
        )
        net = trail.net_movement()
        # forward 1.0 earlier, backward 0.25 later -> net -0.75.
        assert net["l0@0"] == pytest.approx(-0.75)


class TestSerialisation:
    def test_byte_identical_across_identical_runs(
        self, borrowing_design, tmp_path
    ):
        paths = []
        for name in ("a.json", "b.json"):
            with auditing() as trail:
                _run(borrowing_design)
            paths.append(write_audit_json(trail, tmp_path / name))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_schema_and_round_trip(self, borrowing_design, tmp_path):
        with auditing() as trail:
            _run(borrowing_design)
        path = write_audit_json(trail, tmp_path / "audit.json")
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.audit/1"
        assert data["total_events"] == trail.total_events
        assert len(data["events"]) == len(trail.events)
        first = data["events"][0]
        for key in (
            "sequence", "phase", "cycle", "operation", "direction",
            "instance", "cell", "donor", "recipient", "amount",
            "window_before", "window_after", "driving_slack",
        ):
            assert key in first

    def test_infinite_driving_slack_encoded_as_string(self):
        event = TransferEvent(
            sequence=0, phase="p", cycle=1, operation="complete_forward",
            instance="l@0", cell="l", donor="l/D", recipient="l/Q",
            amount=1.0, window_before=1.0, window_after=0.0,
            driving_slack=float("inf"),
        )
        payload = event.to_dict()
        assert payload["driving_slack"] == "inf"
        json.dumps(payload)  # must be valid JSON

    def test_describe_mentions_the_move(self):
        trail = AuditTrail()
        TestRingBuffer._record(trail, 2)
        text = trail.describe()
        assert "2 event(s)" in text
        assert "l0@0" in text and "l1@0" in text

    def test_trail_to_dict_sorted_directions(self):
        trail = AuditTrail()
        data = trail_to_dict(trail)
        assert list(data["moved_by_direction"]) == sorted(
            data["moved_by_direction"]
        )
