"""Tests for the perf-regression gate (repro.report.perf / perf-diff)."""

from __future__ import annotations

import json

import pytest

from repro.report.perf import (
    BENCH_SCHEMA,
    PERFDIFF_SCHEMA,
    diff_bench,
    load_bench,
)


def _doc(walls, quick=True, counters=None):
    return {
        "schema": BENCH_SCHEMA,
        "quick": quick,
        "benches": {
            name: {
                "wall_s": wall,
                "peak_rss_kb": 1000,
                "counters": dict(counters or {}),
                "extra": {},
            }
            for name, wall in walls.items()
        },
    }


class TestLoadBench:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_doc({"a": 1.0})))
        doc = load_bench(path)
        assert doc["benches"]["a"]["wall_s"] == 1.0

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "nope", "benches": {}}))
        with pytest.raises(ValueError, match="not a repro.bench/1"):
            load_bench(path)

    def test_rejects_missing_benches(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA}))
        with pytest.raises(ValueError, match="benches"):
            load_bench(path)


class TestDiffBench:
    def test_within_tolerance_passes(self):
        diff = diff_bench(_doc({"a": 1.0}), _doc({"a": 1.2}))
        (row,) = diff.rows
        assert row.status == "ok"
        assert row.delta_pct == pytest.approx(20.0)
        assert diff.exit_code() == 0

    def test_regression_fails(self):
        diff = diff_bench(_doc({"a": 1.0}), _doc({"a": 1.35}))
        (row,) = diff.rows
        assert row.status == "regressed"
        assert row.delta_pct == pytest.approx(35.0)
        assert diff.exit_code() == 1

    def test_improvement_never_fails(self):
        diff = diff_bench(_doc({"a": 1.0}), _doc({"a": 0.1}))
        assert diff.rows[0].status == "ok"
        assert diff.exit_code() == 0

    def test_new_and_removed_never_gate(self):
        diff = diff_bench(
            _doc({"old": 1.0, "same": 1.0}),
            _doc({"new": 9.0, "same": 1.0}),
        )
        by_name = {row.name: row for row in diff.rows}
        assert by_name["new"].status == "new"
        assert by_name["old"].status == "removed"
        assert by_name["same"].status == "ok"
        assert diff.compared == 1
        assert diff.exit_code() == 0

    def test_disjoint_sets_exit_2(self):
        diff = diff_bench(_doc({"a": 1.0}), _doc({"b": 1.0}))
        assert diff.compared == 0
        assert diff.exit_code() == 2

    def test_per_workload_tolerance_override(self):
        base, cand = _doc({"a": 1.0, "b": 1.0}), _doc({"a": 1.2, "b": 1.2})
        diff = diff_bench(base, cand, per_workload={"a": 10.0})
        by_name = {row.name: row for row in diff.rows}
        assert by_name["a"].status == "regressed"
        assert by_name["b"].status == "ok"

    def test_workload_filter(self):
        diff = diff_bench(
            _doc({"a": 1.0, "b": 1.0}),
            _doc({"a": 5.0, "b": 1.0}),
            workloads=["b"],
        )
        assert [row.name for row in diff.rows] == ["b"]
        assert diff.exit_code() == 0

    def test_counter_deltas_ride_along(self):
        base = _doc({"a": 1.0}, counters={"alg1.iterations_total": 10})
        cand = _doc({"a": 1.5}, counters={"alg1.iterations_total": 14})
        diff = diff_bench(base, cand)
        assert diff.rows[0].counter_deltas == {
            "alg1.iterations_total": 4.0
        }

    def test_zero_baseline(self):
        diff = diff_bench(_doc({"a": 0.0}), _doc({"a": 0.1}))
        assert diff.rows[0].delta_pct == float("inf")
        assert diff.exit_code() == 1

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            diff_bench(_doc({}), _doc({}), default_tolerance_pct=-1)


class TestRendering:
    def test_to_dict_schema(self):
        diff = diff_bench(_doc({"a": 1.0}), _doc({"a": 1.5}))
        doc = diff.to_dict()
        assert doc["schema"] == PERFDIFF_SCHEMA
        assert doc["exit_code"] == 1
        assert doc["regressed"] == 1
        assert doc["rows"][0]["delta_pct"] == 50.0
        json.dumps(doc)  # must be JSON-safe

    def test_render_text_flags_worst(self):
        diff = diff_bench(
            _doc({"a": 1.0, "b": 1.0}), _doc({"a": 1.4, "b": 2.0})
        )
        text = diff.render_text()
        assert "REGRESSED" in text
        assert "worst: b +100.0%" in text

    def test_render_text_warns_on_quick_mismatch(self):
        diff = diff_bench(
            _doc({"a": 1.0}, quick=True), _doc({"a": 1.0}, quick=False)
        )
        assert "quick/full mode mismatch" in diff.render_text()

    def test_render_text_nothing_comparable(self):
        diff = diff_bench(_doc({"a": 1.0}), _doc({"b": 1.0}))
        assert "no common workloads" in diff.render_text()


class TestCli:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def _run(self, argv, capsys):
        from repro.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_self_diff_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc({"a": 1.0}))
        code, out = self._run(["perf-diff", base, base], capsys)
        assert code == 0
        assert "within tolerance" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc({"a": 1.0}))
        cand = self._write(tmp_path, "cand.json", _doc({"a": 1.4}))
        code, out = self._run(["perf-diff", base, cand], capsys)
        assert code == 1
        assert "REGRESSED" in out

    def test_json_output(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc({"a": 1.0}))
        cand = self._write(tmp_path, "cand.json", _doc({"a": 1.4}))
        code, out = self._run(
            ["perf-diff", base, cand, "--json"], capsys
        )
        doc = json.loads(out)
        assert doc["schema"] == PERFDIFF_SCHEMA
        assert doc["exit_code"] == code == 1

    def test_tolerance_override_flag(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc({"a": 1.0}))
        cand = self._write(tmp_path, "cand.json", _doc({"a": 1.4}))
        code, __ = self._run(
            ["perf-diff", base, cand, "--tolerance", "a=50"], capsys
        )
        assert code == 0

    def test_malformed_tolerance_rejected(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _doc({"a": 1.0}))
        with pytest.raises(SystemExit):
            self._run(
                ["perf-diff", base, base, "--tolerance", "nope"], capsys
            )

    def test_invalid_document_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "x"}))
        base = self._write(tmp_path, "base.json", _doc({"a": 1.0}))
        with pytest.raises(SystemExit):
            self._run(["perf-diff", str(bad), base], capsys)
