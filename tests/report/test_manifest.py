"""Tests for run manifests (repro.report.manifest)."""

import json

import pytest

from repro import obs
from repro.clocks.serialize import save_schedule
from repro.core.analyzer import Hummingbird
from repro.generators.pipelines import latch_pipeline
from repro.netlist.persistence import save_network
from repro.report import (
    build_manifest,
    load_manifest,
    manifest_digest,
    write_manifest,
)


def _design(period=12.0):
    return latch_pipeline(
        stages=4, stage_lengths=[12, 1, 1, 1], period=period
    )


def _run(period=12.0):
    network, schedule = _design(period)
    analyzer = Hummingbird(network, schedule)
    return analyzer, analyzer.analyze()


class TestBuildManifest:
    def test_schema_and_sections(self):
        analyzer, result = _run()
        manifest = build_manifest(analyzer, result)
        assert manifest["schema"] == "repro.manifest/1"
        assert manifest["design"] == "latch_pipeline"
        for key in (
            "input_digest", "clock_schedule", "config", "design_stats",
            "timing", "iterations", "cost", "created_at",
        ):
            assert key in manifest
        timing = manifest["timing"]
        assert timing["intended"] is True
        assert timing["endpoints"] == len(timing["endpoint_slacks"])
        assert timing["worst_slack"] == pytest.approx(1.0)

    def test_endpoint_slacks_are_sorted(self):
        analyzer, result = _run()
        manifest = build_manifest(analyzer, result)
        names = list(manifest["timing"]["endpoint_slacks"])
        assert names == sorted(names)

    def test_result_accessor_and_label(self):
        __, result = _run()
        manifest = result.manifest(label="nightly")
        assert manifest["label"] == "nightly"
        assert manifest["schema"] == "repro.manifest/1"

    def test_obs_snapshot_optional(self):
        network, schedule = _design()
        with obs.recording() as recorder:
            analyzer = Hummingbird(network, schedule)
            result = analyzer.analyze()
        plain = build_manifest(analyzer, result)
        assert "obs" not in plain
        instrumented = build_manifest(analyzer, result, recorder=recorder)
        assert instrumented["obs"]["counters"]["alg1.runs"] == 1.0
        # Zero-valued counters are elided from the snapshot.
        assert all(instrumented["obs"]["counters"].values())


class TestDigests:
    def test_identical_runs_same_content_digest(self):
        digests = [manifest_digest(build_manifest(*_run())) for __ in range(2)]
        assert digests[0] == digests[1]

    def test_different_schedule_different_digest(self):
        fast = manifest_digest(build_manifest(*_run(period=8.0)))
        slow = manifest_digest(build_manifest(*_run(period=12.0)))
        assert fast != slow

    def test_input_digest_prefers_files(self, tmp_path):
        network, schedule = _design()
        netlist = tmp_path / "design.json"
        clocks = tmp_path / "clocks.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        analyzer = Hummingbird(network, schedule)
        result = analyzer.analyze()
        from_files = build_manifest(
            analyzer, result, netlist_path=netlist, clocks_path=clocks
        )
        in_memory = build_manifest(analyzer, result)
        # Both digests are stable but hash different byte streams.
        assert from_files["input_digest"] != in_memory["input_digest"]
        again = build_manifest(
            analyzer, result, netlist_path=netlist, clocks_path=clocks
        )
        assert from_files["input_digest"] == again["input_digest"]


class TestWriteAndLoad:
    def test_write_to_directory_uses_label(self, tmp_path):
        __, result = _run()
        manifest = result.manifest(label="base")
        path = write_manifest(manifest, tmp_path / "runs")
        assert path.name == "base.manifest.json"
        loaded = load_manifest(path)
        assert loaded["label"] == "base"

    def test_write_to_explicit_file(self, tmp_path):
        __, result = _run()
        target = tmp_path / "deep" / "run.json"
        path = write_manifest(result.manifest(), target)
        assert path == target
        assert path.exists()

    def test_deterministic_serialisation(self, tmp_path):
        analyzer, result = _run()
        manifest = build_manifest(analyzer, result)
        a = write_manifest(dict(manifest), tmp_path / "a.json")
        b = write_manifest(dict(manifest), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_load_rejects_non_manifest(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "repro.obs.metrics/1"}))
        with pytest.raises(ValueError, match="not a run manifest"):
            load_manifest(bogus)
