"""Tests for the repro-sta command-line interface."""

import json

import pytest

from repro.cli import main
from repro.clocks import ClockSchedule
from repro.clocks.serialize import (
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.netlist.blif import save_blif
from repro.netlist.persistence import save_network

from tests.conftest import build_ff_stage


@pytest.fixture
def workspace(lib, tmp_path):
    network, schedule = build_ff_stage(lib, chain=2, period=10)
    netlist_json = tmp_path / "design.json"
    netlist_blif = tmp_path / "design.blif"
    clocks = tmp_path / "clocks.json"
    save_network(network, netlist_json)
    save_blif(network, netlist_blif)
    save_schedule(schedule, clocks)
    return netlist_json, netlist_blif, clocks, tmp_path


class TestScheduleSerialisation:
    def test_roundtrip(self, tmp_path):
        schedule = ClockSchedule.two_phase(100)
        path = tmp_path / "clk.json"
        save_schedule(schedule, path)
        loaded = load_schedule(path)
        assert loaded.overall_period == schedule.overall_period
        assert loaded.clock_names == schedule.clock_names
        assert loaded.waveform("phi1").leading == schedule.waveform(
            "phi1"
        ).leading

    def test_fractional_times(self):
        schedule = ClockSchedule.single("clk", "1/3", leading=0, trailing="1/6")
        data = schedule_to_dict(schedule)
        assert data["clocks"][0]["period"] == "1/3"
        loaded = schedule_from_dict(data)
        assert loaded.waveform("clk").period == schedule.waveform("clk").period

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="format"):
            schedule_from_dict({"clocks": []})


class TestAnalyzeCommand:
    def test_analyze_json_ok(self, workspace, capsys):
        netlist_json, __, clocks, __ = workspace
        code = main(["analyze", str(netlist_json), "--clocks", str(clocks)])
        out = capsys.readouterr().out
        assert code == 0
        assert "behaves as intended" in out

    def test_analyze_blif_ok(self, workspace, capsys):
        __, netlist_blif, clocks, __ = workspace
        code = main(["analyze", str(netlist_blif), "--clocks", str(clocks)])
        assert code == 0

    def test_analyze_slow_design_exit_code(self, lib, tmp_path, capsys):
        network, schedule = build_ff_stage(lib, chain=2, period=2.0)
        netlist = tmp_path / "slow.json"
        clocks = tmp_path / "clk.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        code = main(["analyze", str(netlist), "--clocks", str(clocks)])
        out = capsys.readouterr().out
        assert code == 1
        assert "slow path" in out

    def test_min_delay_flag(self, workspace, capsys):
        netlist_json, __, clocks, __ = workspace
        code = main(
            [
                "analyze",
                str(netlist_json),
                "--clocks",
                str(clocks),
                "--min-delay",
            ]
        )
        out = capsys.readouterr().out
        assert "min-delay" in out
        assert code == 0

    def test_unknown_extension_rejected(self, workspace):
        __, __, clocks, tmp_path = workspace
        bogus = tmp_path / "design.vhdl"
        bogus.write_text("")
        with pytest.raises(SystemExit):
            main(["analyze", str(bogus), "--clocks", str(clocks)])


class TestOtherCommands:
    def test_constraints(self, workspace, capsys):
        netlist_json, __, clocks, __ = workspace
        code = main(
            [
                "constraints",
                str(netlist_json),
                "--clocks",
                str(clocks),
                "--net",
                "n1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "n1" in out and "required" in out

    def test_maxfreq(self, workspace, capsys):
        netlist_json, __, clocks, __ = workspace
        code = main(["maxfreq", str(netlist_json), "--clocks", str(clocks)])
        out = capsys.readouterr().out
        assert code == 0
        assert "minimum feasible overall period: 3.0" in out

    def test_waveforms(self, workspace, capsys):
        __, __, clocks, __ = workspace
        code = main(["waveforms", "--clocks", str(clocks)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clk" in out and "#" in out

    def test_stats(self, workspace, capsys):
        netlist_json, __, clocks, __ = workspace
        code = main(["stats", str(netlist_json), "--clocks", str(clocks)])
        out = capsys.readouterr().out
        assert code == 0
        assert "WNS" in out and "TNS" in out

    def test_simulate_clean(self, workspace, capsys):
        netlist_json, __, clocks, __ = workspace
        code = main(
            [
                "simulate",
                str(netlist_json),
                "--clocks",
                str(clocks),
                "--cycles",
                "6",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "behaves as intended (dynamic)" in out

    def test_simulate_slow_design(self, lib, tmp_path, capsys):
        network, schedule = build_ff_stage(lib, chain=3, period=2.5)
        netlist = tmp_path / "slow.json"
        clocks = tmp_path / "clk.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        code = main(
            [
                "simulate",
                str(netlist),
                "--clocks",
                str(clocks),
                "--cycles",
                "12",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert "dynamic check" in out
        # With a toggling-enough random seed the slow design mismatches;
        # at minimum the command must complete and report.
        assert code in (0, 1)


class TestVerilogAndCorners:
    def test_analyze_verilog(self, lib, tmp_path, capsys):
        from repro.netlist.verilog import save_verilog

        network, schedule = build_ff_stage(lib, chain=2, period=10)
        netlist = tmp_path / "design.v"
        clocks = tmp_path / "clk.json"
        save_verilog(network, netlist)
        save_schedule(schedule, clocks)
        code = main(["analyze", str(netlist), "--clocks", str(clocks)])
        assert code == 0
        assert "behaves as intended" in capsys.readouterr().out

    def test_corners_command(self, lib, tmp_path, capsys):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        network.cell("din").attrs["offset"] = 1.0
        netlist = tmp_path / "d.json"
        clocks = tmp_path / "clk.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        code = main(["corners", str(netlist), "--clocks", str(clocks)])
        out = capsys.readouterr().out
        assert code == 0
        assert "all corners clean" in out
        assert "slow" in out and "fast" in out

    def test_corners_command_failure_exit(self, lib, tmp_path, capsys):
        network, schedule = build_ff_stage(lib, chain=2, period=3.3)
        netlist = tmp_path / "d.json"
        clocks = tmp_path / "clk.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        code = main(["corners", str(netlist), "--clocks", str(clocks)])
        assert code == 1


@pytest.fixture
def borrow_workspace(tmp_path):
    """A cycle-borrowing latch pipeline saved to disk."""
    from repro.generators.pipelines import latch_pipeline

    network, schedule = latch_pipeline(
        stages=4, stage_lengths=[12, 1, 1, 1], period=12.0
    )
    netlist = tmp_path / "pipeline.json"
    clocks = tmp_path / "clocks.json"
    save_network(network, netlist)
    save_schedule(schedule, clocks)
    return netlist, clocks, tmp_path


class TestForensicsCommands:
    def test_analyze_manifest_and_audit(self, borrow_workspace, capsys):
        netlist, clocks, tmp_path = borrow_workspace
        code = main(
            [
                "analyze", str(netlist), "--clocks", str(clocks),
                "--manifest", str(tmp_path / "runs"),
                "--label", "base",
                "--audit", str(tmp_path / "audit.json"),
            ]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "manifest written" in err and "audit trail written" in err
        manifest = json.loads(
            (tmp_path / "runs" / "base.manifest.json").read_text()
        )
        assert manifest["schema"] == "repro.manifest/1"
        audit = json.loads((tmp_path / "audit.json").read_text())
        assert audit["schema"] == "repro.audit/1"
        assert audit["total_events"] > 0

    def test_report_named_endpoint(self, borrow_workspace, capsys):
        netlist, clocks, __ = borrow_workspace
        code = main(
            [
                "report", str(netlist), "--clocks", str(clocks),
                "--endpoint", "s1_l",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "D_p" in out and "borrow chain" in out

    def test_report_default_worst_endpoints(self, borrow_workspace, capsys):
        netlist, clocks, __ = borrow_workspace
        code = main(
            ["report", str(netlist), "--clocks", str(clocks), "--limit", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("endpoint ") >= 1

    def test_report_json_to_file(self, borrow_workspace, capsys):
        netlist, clocks, tmp_path = borrow_workspace
        target = tmp_path / "report.json"
        code = main(
            [
                "report", str(netlist), "--clocks", str(clocks),
                "--format", "json", "--out", str(target),
            ]
        )
        assert code == 0
        doc = json.loads(target.read_text())
        assert doc["schema"] == "repro.report/1"
        assert doc["endpoints"]

    def test_report_html(self, borrow_workspace, capsys):
        netlist, clocks, __ = borrow_workspace
        code = main(
            [
                "report", str(netlist), "--clocks", str(clocks),
                "--format", "html", "--endpoint", "s1_l",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("<!DOCTYPE html>")

    def test_report_unknown_endpoint_exits(self, borrow_workspace):
        netlist, clocks, __ = borrow_workspace
        with pytest.raises(SystemExit):
            main(
                [
                    "report", str(netlist), "--clocks", str(clocks),
                    "--endpoint", "no_such_net",
                ]
            )

    def test_diff_identical_runs(self, borrow_workspace, capsys):
        netlist, clocks, tmp_path = borrow_workspace
        for label in ("a", "b"):
            main(
                [
                    "analyze", str(netlist), "--clocks", str(clocks),
                    "--manifest", str(tmp_path / f"{label}.json"),
                    "--label", label,
                ]
            )
        capsys.readouterr()
        code = main(
            ["diff", str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "no regression" in out

    def test_diff_regression_exit_code(self, borrow_workspace, capsys):
        from repro.clocks.serialize import load_schedule as _load
        from repro.generators.pipelines import latch_pipeline

        netlist, clocks, tmp_path = borrow_workspace
        main(
            [
                "analyze", str(netlist), "--clocks", str(clocks),
                "--manifest", str(tmp_path / "slow.json"), "--label", "slow",
            ]
        )
        # Re-save a tighter schedule and rerun: endpoints regress.
        network, fast_schedule = latch_pipeline(
            stages=4, stage_lengths=[12, 1, 1, 1], period=8.0
        )
        fast_clocks = tmp_path / "fast_clocks.json"
        save_schedule(fast_schedule, fast_clocks)
        main(
            [
                "analyze", str(netlist), "--clocks", str(fast_clocks),
                "--manifest", str(tmp_path / "fast.json"), "--label", "fast",
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "diff", str(tmp_path / "slow.json"),
                str(tmp_path / "fast.json"), "--json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        doc = json.loads(out)
        assert doc["schema"] == "repro.diff/1"
        assert doc["has_regression"] is True

    def test_diff_rejects_non_manifest(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(SystemExit):
            main(["diff", str(bogus), str(bogus)])

    def test_stats_json(self, borrow_workspace, capsys):
        netlist, clocks, __ = borrow_workspace
        code = main(
            ["stats", str(netlist), "--clocks", str(clocks), "--json"]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        assert doc["schema"] == "repro.stats/1"
        assert doc["timing"]["endpoint_slacks"]
        assert doc["histogram"]

    def test_stats_json_matches_manifest_timing(self, borrow_workspace, capsys):
        netlist, clocks, tmp_path = borrow_workspace
        main(
            [
                "analyze", str(netlist), "--clocks", str(clocks),
                "--manifest", str(tmp_path / "m.json"),
            ]
        )
        capsys.readouterr()
        main(["stats", str(netlist), "--clocks", str(clocks), "--json"])
        out = capsys.readouterr().out
        stats_doc = json.loads(out)
        manifest = json.loads((tmp_path / "m.json").read_text())
        assert stats_doc["timing"] == manifest["timing"]
