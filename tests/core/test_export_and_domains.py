"""Tests for JSON result export and the clock-domain report."""

import json
import math

import pytest

from repro.clocks import ClockSchedule, ClockWaveform
from repro.core import Hummingbird
from repro.core.domains import domain_crossings, render_domain_crossings
from repro.core.export import (
    constraints_to_dict,
    load_result_dict,
    result_to_dict,
    save_result,
    statistics_to_dict,
)
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from tests.conftest import build_ff_stage


class TestResultExport:
    def test_clean_result_roundtrip(self, lib, tmp_path):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        result = Hummingbird(network, schedule).analyze()
        path = tmp_path / "result.json"
        save_result(result, path)
        data = load_result_dict(path)
        assert data["intended"] is True
        assert data["worst_slack"] == pytest.approx(7.0)
        assert data["slow_paths"] == []
        assert data["capture_slacks"]["ff_b@0"] == pytest.approx(7.0)

    def test_slow_paths_exported(self, lib, tmp_path):
        network, schedule = build_ff_stage(lib, chain=3, period=2.5)
        result = Hummingbird(network, schedule).analyze()
        data = result_to_dict(result)
        assert not data["intended"]
        assert data["slow_paths"]
        worst = data["slow_paths"][0]
        assert worst["cells"] == ["inv0", "inv1", "inv2"]
        assert worst["slack"] < 0

    def test_json_serialisable_with_infinities(self, lib):
        from repro.netlist import NetworkBuilder

        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("f", "DFF", D="w", CK="clk", Q="q")
        b.gate("g", "INV", A="q", Z="dangling")
        network = b.build()
        result = Hummingbird(network, ClockSchedule.single("clk", 10)).analyze()
        text = json.dumps(result_to_dict(result))
        data = json.loads(text)
        # Unconstrained launch slack becomes null, not Infinity.
        assert data["launch_slacks"]["f@0"] is None

    def test_statistics_export(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        hb.analyze()
        data = statistics_to_dict(hb.statistics())
        assert data["overall"]["endpoints"] == 3
        assert data["by_clock"]["clk"]["violating"] == 0
        json.dumps(data)  # fully serialisable

    def test_constraints_export(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        constraints = hb.generate_constraints().constraints
        data = constraints_to_dict(constraints)
        assert "n1" in data["ready"]
        assert data["ready"]["n1"][0]["rise"] is not None
        json.dumps(data)

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"something": 1}')
        with pytest.raises(ValueError, match="timing result"):
            load_result_dict(path)


class TestDomainCrossings:
    def test_single_clock_design(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        model = Hummingbird(network, schedule).model
        crossings = domain_crossings(model)
        pairs = {(c.launch_clock, c.capture_clock) for c in crossings}
        assert pairs == {("clk", "clk")}
        (crossing,) = crossings
        # Same-edge FF pairs: D_p is exactly one period.
        assert crossing.max_constraint == pytest.approx(10.0)

    def test_two_phase_crossings(self, lib):
        network, schedule = latch_pipeline(
            stages=2, chain_length=2, period=100, library=lib
        )
        model = Hummingbird(network, schedule).model
        crossings = domain_crossings(model)
        pairs = {(c.launch_clock, c.capture_clock) for c in crossings}
        assert ("phi1", "phi2") in pairs
        assert ("phi2", "phi1") in pairs

    def test_multifrequency_constraints(self, lib):
        from repro.netlist import NetworkBuilder

        b = NetworkBuilder(lib)
        b.clock("fast")
        b.clock("slow")
        b.input("i", "w", clock="slow")
        b.latch("ls", "DFF", D="w", CK="slow", Q="qs")
        b.gate("g", "INV", A="qs", Z="z")
        b.latch("lf", "DFF", D="z", CK="fast", Q="qf")
        b.output("o", "qf", clock="fast")
        network = b.build()
        schedule = ClockSchedule(
            [
                ClockWaveform("fast", 25, 0, "12.5"),
                ClockWaveform("slow", 100, 0, 50),
            ]
        )
        model = Hummingbird(network, schedule).model
        crossing = next(
            c
            for c in domain_crossings(model)
            if (c.launch_clock, c.capture_clock) == ("slow", "fast")
        )
        # Launch at 50; fast closures at 12.5k: tightest pairing 12.5.
        assert crossing.min_constraint == pytest.approx(12.5)
        assert crossing.path_pairs == 4

    def test_render(self, lib):
        network, schedule = latch_pipeline(
            stages=2, chain_length=2, period=100, library=lib
        )
        model = Hummingbird(network, schedule).model
        text = render_domain_crossings(domain_crossings(model))
        assert "phi1" in text and "min D_p" in text

    def test_render_empty(self):
        assert "no clocked data paths" in render_domain_crossings([])
