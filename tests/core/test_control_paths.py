"""Unit tests for control-path delay extraction (O_ac)."""

import pytest

from repro.core.control_paths import control_arrivals
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder


def _network_with_buffered_control(lib, buffers):
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("i", "w", clock="clk")
    current = "clk"
    for k in range(buffers):
        b.gate(f"cb{k}", "BUF", A=current, Z=f"cnet{k}")
        current = f"cnet{k}"
    b.latch("l", "DLATCH", D="w", G=current, Q="q")
    b.output("o", "q", clock="clk")
    return b.build()


class TestControlArrivals:
    def test_direct_connection_zero_delay(self, lib):
        n = _network_with_buffered_control(lib, 0)
        arrival = control_arrivals(n, estimate_delays(n))["l"]
        assert arrival.latest == 0.0
        assert arrival.earliest == 0.0
        assert arrival.skew_spread == 0.0

    def test_buffer_adds_delay(self, lib):
        n = _network_with_buffered_control(lib, 1)
        dm = estimate_delays(n)
        arrival = control_arrivals(n, dm)["l"]
        buf_delay = dm.arc_delay(n.cell("cb0"), "A", "Z")
        assert arrival.latest == pytest.approx(buf_delay.worst)
        assert arrival.earliest < arrival.latest  # min-derated

    def test_delay_accumulates_along_chain(self, lib):
        d1 = control_arrivals(
            (n1 := _network_with_buffered_control(lib, 1)), estimate_delays(n1)
        )["l"].latest
        d3 = control_arrivals(
            (n3 := _network_with_buffered_control(lib, 3)), estimate_delays(n3)
        )["l"].latest
        assert d3 > 2 * d1

    def test_reconvergent_control_takes_worst(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        # Two parallel control branches of different depth reconverging
        # through a NAND (both inputs clock-derived, same sense via two
        # inversions on one branch and none on... keep both non-inverted
        # buffers to preserve monotonicity).
        b.gate("ca", "BUF", A="clk", Z="na")
        b.gate("cb1", "BUF", A="clk", Z="nb1")
        b.gate("cb2", "BUF", A="nb1", Z="nb2")
        b.gate("cj", "AND2", A="na", B="nb2", Z="gated")
        b.latch("l", "DLATCH", D="w", G="gated", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        dm = estimate_delays(n)
        arrival = control_arrivals(n, dm)["l"]
        shallow = dm.arc_delay(n.cell("ca"), "A", "Z").worst
        assert arrival.latest > shallow  # deep branch dominates

    def test_undriven_control_raises(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("l", "DLATCH", D="w", G="floating_ctl", Q="q")
        n = b.build()
        with pytest.raises(ValueError, match="undriven"):
            control_arrivals(n, estimate_delays(n))
