"""Unit tests for the generic synchronising-element model (Sections 4-5).

Includes the paper's worked example: "consider a transparent latch, with
no internal delays, controlled during each clock period by a 20ns clock
pulse.  Suppose the output is asserted 5ns after the beginning of the
control pulse, then O_zd = 5ns and O_dz = -15ns.  If there is a delay of
2ns between the clock source and the control input of the latch then
O_ac = O_zc = 2ns."
"""

from fractions import Fraction

import pytest

from repro.clocks import ClockSchedule, ClockWaveform
from repro.core.sync_elements import (
    GenericInstance,
    InstanceKind,
    effective_windows,
    expand_synchroniser,
    pad_instance,
)
from repro.delay.estimator import SyncTiming
from repro.netlist import NetworkBuilder
from repro.netlist.kinds import Unateness


def _transparent(width=20.0, setup=0.0, d_to_q=0.0, c_to_q=0.0, arrival=0.0):
    return GenericInstance(
        name="lat@0",
        cell_name="lat",
        kind=InstanceKind.TRANSPARENT,
        assertion_edge=Fraction(0),
        closure_edge=Fraction(20),
        clock_period=Fraction(100),
        width=width,
        setup=setup,
        d_to_q=d_to_q,
        c_to_q=c_to_q,
        control_arrival=arrival,
        control_arrival_min=arrival,
    )


class TestPaperWorkedExample:
    """Figure 3 / Section 5 numeric example."""

    def test_offsets(self):
        latch = _transparent(width=20.0, arrival=2.0)
        latch.w = 5.0  # output asserted 5ns after the leading edge
        assert latch.o_zd == pytest.approx(5.0)
        assert latch.o_dz == pytest.approx(-15.0)
        assert latch.o_zc == pytest.approx(2.0)
        assert latch.control_arrival == pytest.approx(2.0)  # O_ac

    def test_figure3_relation(self):
        """O_zd = W + O_dz + D_dz holds at every window position."""
        latch = _transparent(width=20.0, d_to_q=1.5)
        for w in (0.0, 3.0, 10.0, 20.0):
            latch.w = w
            assert latch.o_zd == pytest.approx(
                latch.width + latch.o_dz + latch.d_to_q
            )

    def test_constraint_bounds(self):
        """O_zd >= 0 and O_dz <= -D_dz across the legal range."""
        latch = _transparent(width=20.0, d_to_q=1.5)
        latch.w = 0.0
        assert latch.o_dz == pytest.approx(-21.5)
        latch.w = 20.0
        assert latch.o_dz == pytest.approx(-1.5)
        assert latch.o_zd >= 0.0


class TestEffectiveTimes:
    def test_assertion_is_max_of_control_and_data(self):
        latch = _transparent(c_to_q=1.0, arrival=2.0)
        latch.w = 1.0
        assert latch.assertion_offset == pytest.approx(3.0)  # O_zc wins
        latch.w = 10.0
        assert latch.assertion_offset == pytest.approx(10.0)  # O_zd wins

    def test_closure_is_min_of_control_and_data(self):
        latch = _transparent(setup=2.0, d_to_q=0.0)
        latch.w = 20.0  # O_dz = 0 > -setup
        assert latch.closure_offset == pytest.approx(-2.0)
        latch.w = 5.0  # O_dz = -15 < -setup
        assert latch.closure_offset == pytest.approx(-15.0)

    def test_edge_triggered_decoupled(self):
        ff = GenericInstance(
            name="ff@0",
            cell_name="ff",
            kind=InstanceKind.EDGE_TRIGGERED,
            assertion_edge=Fraction(50),
            closure_edge=Fraction(50),
            clock_period=Fraction(100),
            setup=0.8,
            c_to_q=1.2,
            control_arrival=0.5,
        )
        assert ff.assertion_offset == pytest.approx(1.7)
        assert ff.closure_offset == pytest.approx(-0.8)
        assert ff.max_decrease == 0.0
        assert ff.max_increase == 0.0

    def test_negative_control_arrival_rejected(self):
        with pytest.raises(ValueError, match="O_ac"):
            _transparent(arrival=-1.0)


class TestWindowMovement:
    def test_shift_and_bounds(self):
        latch = _transparent(width=20.0)
        latch.shift_window(-5.0)
        assert latch.w == pytest.approx(15.0)
        assert latch.max_decrease == pytest.approx(15.0)
        assert latch.max_increase == pytest.approx(5.0)

    def test_shift_beyond_bounds_raises(self):
        latch = _transparent(width=20.0)
        with pytest.raises(ValueError):
            latch.shift_window(5.0)  # already at w = width

    def test_tiny_overshoot_clamped(self):
        latch = _transparent(width=20.0)
        latch.shift_window(-20.0 - 1e-12)
        assert latch.w == 0.0

    def test_edge_triggered_not_adjustable(self):
        ff = GenericInstance(
            name="ff@0",
            cell_name="ff",
            kind=InstanceKind.EDGE_TRIGGERED,
            assertion_edge=Fraction(0),
            closure_edge=Fraction(0),
            clock_period=Fraction(100),
        )
        with pytest.raises(ValueError):
            ff.shift_window(-1.0)

    def test_reset_window(self):
        latch = _transparent(width=20.0)
        latch.shift_window(-7.0)
        latch.reset_window()
        assert latch.w == pytest.approx(20.0)


class TestEffectiveWindows:
    def test_positive_sense_uses_pulses(self):
        s = ClockSchedule.two_phase(100)
        windows = effective_windows(s, "phi1", Unateness.POSITIVE)
        assert len(windows) == 1
        assert windows[0].leading == s.waveform("phi1").leading

    def test_negative_sense_complements(self):
        s = ClockSchedule([ClockWaveform("clk", 100, 10, 60)])
        (window,) = effective_windows(s, "clk", Unateness.NEGATIVE)
        assert window.leading == 60  # transparent while clock low
        assert window.trailing == 10
        assert window.width == 50

    def test_negative_sense_multi_pulse(self):
        s = ClockSchedule(
            [
                ClockWaveform("fast", 50, 0, 20),
                ClockWaveform("slow", 100, 0, 50),
            ]
        )
        windows = effective_windows(s, "fast", Unateness.NEGATIVE)
        assert len(windows) == 2
        assert [w.width for w in windows] == [30, 30]
        assert windows[0].leading == 20
        assert windows[0].trailing == 50

    def test_non_unate_sense_rejected(self):
        s = ClockSchedule.single("clk", 100)
        with pytest.raises(ValueError):
            effective_windows(s, "clk", Unateness.NON_UNATE)


class TestExpansion:
    def test_fast_clock_expands(self, lib):
        b = NetworkBuilder(lib)
        b.clock("fast")
        b.latch("l", "DLATCH", D="d", G="fast", Q="q")
        n = b.build()
        s = ClockSchedule(
            [
                ClockWaveform("fast", 50, 5, 25),
                ClockWaveform("slow", 100, 0, 40),
            ]
        )
        instances = expand_synchroniser(
            n.cell("l"),
            s,
            "fast",
            Unateness.POSITIVE,
            SyncTiming(setup=0.5, d_to_q=0.4, c_to_q=0.6, hold=0.1),
            control_arrival=0.0,
            control_arrival_min=0.0,
        )
        assert len(instances) == 2
        assert instances[0].assertion_edge == 5
        assert instances[1].assertion_edge == 55
        assert all(i.kind is InstanceKind.TRANSPARENT for i in instances)
        assert all(i.clock_period == 50 for i in instances)

    def test_edge_triggered_edges_coincide(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.latch("f", "DFF", D="d", CK="clk", Q="q")
        n = b.build()
        s = ClockSchedule.single("clk", 100, leading=0, trailing=50)
        (inst,) = expand_synchroniser(
            n.cell("f"),
            s,
            "clk",
            Unateness.POSITIVE,
            SyncTiming(setup=0.8, d_to_q=0.0, c_to_q=1.2, hold=0.3),
            control_arrival=0.0,
            control_arrival_min=0.0,
        )
        assert inst.kind is InstanceKind.EDGE_TRIGGERED
        assert inst.assertion_edge == inst.closure_edge == 50


class TestPads:
    def _pad_network(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk", edge="leading", offset=3.0)
        b.gate("g", "INV", A="w", Z="w2")
        b.output("o", "w2", clock="clk", edge="trailing", offset=-1.0)
        return b.build()

    def test_input_pad_instance(self, lib):
        n = self._pad_network(lib)
        s = ClockSchedule.single("clk", 100, leading=0, trailing=50)
        inst = pad_instance(n.cell("i"), s)
        assert inst.kind is InstanceKind.FIXED_SOURCE
        assert inst.assertion_edge == 0
        assert inst.assertion_offset == pytest.approx(3.0)
        assert not inst.adjustable

    def test_output_pad_instance(self, lib):
        n = self._pad_network(lib)
        s = ClockSchedule.single("clk", 100, leading=0, trailing=50)
        inst = pad_instance(n.cell("o"), s)
        assert inst.kind is InstanceKind.FIXED_SINK
        assert inst.closure_edge == 50
        assert inst.closure_offset == pytest.approx(-1.0)

    def test_pad_missing_clock_raises(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        cell = b.instantiate(
            "bad",
            __import__(
                "repro.netlist.ports", fromlist=["PRIMARY_INPUT_SPEC"]
            ).PRIMARY_INPUT_SPEC,
            Z="w",
        )
        s = ClockSchedule.single("clk", 100)
        with pytest.raises(ValueError, match="clock"):
            pad_instance(cell, s)

    def test_pad_bad_pulse_index(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk", pulse_index=5)
        n = b.build()
        s = ClockSchedule.single("clk", 100)
        with pytest.raises(ValueError, match="pulse_index"):
            pad_instance(n.cell("i"), s)
