"""Tests for incremental re-analysis."""

import pytest

from repro.core.incremental import IncrementalAnalyzer
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.core.algorithm1 import run_algorithm1
from repro.delay import estimate_delays
from repro.generators import latch_pipeline
from repro.generators.gating import clock_gated_design

from tests.conftest import build_ff_stage


class TestWarmStart:
    def test_same_verdict_as_cold(self, lib):
        network, schedule = latch_pipeline(
            stages=3, stage_lengths=[14, 4, 14], period=30, library=lib
        )
        inc = IncrementalAnalyzer(network, schedule)
        first = inc.analyze()
        for factor, expected in [(1.5, None), (0.4, None)]:
            for cell in ("s0_i2", "s2_i5"):
                inc.scale_cell(cell, factor)
            warm = inc.analyze(warm=True)
            # Cold reference with identical delays.
            model = AnalysisModel(network, schedule, inc.delays)
            cold = run_algorithm1(model, SlackEngine(model))
            # Different fixed points may assign different (equally valid)
            # offsets, so slack *values* can differ; the verdict and the
            # sign of the worst slack are what Algorithm 1 guarantees.
            assert warm.intended == cold.intended
            assert (warm.worst_slack > 0) == (cold.worst_slack > 0)

    def test_warm_flag_reuses_offsets(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[18, 2], period=22, library=lib
        )
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        windows = [i.w for i in inc.model.adjustable_instances()]
        inc.analyze(warm=True)
        # A second warm run from the fixed point should not move windows
        # beyond the partial-transfer wobble.
        after = [i.w for i in inc.model.adjustable_instances()]
        assert len(after) == len(windows)

    def test_data_change_swaps_without_rebuild(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        model_before = inc.model
        inc.scale_cell("inv1", 0.5)
        assert inc.model is model_before
        assert inc.swaps == 1
        assert inc.rebuilds == 0

    def test_control_change_triggers_rebuild(self):
        network, schedule = clock_gated_design()
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        model_before = inc.model
        inc.scale_cell("clk_gate", 2.0)  # AND gate on the control path
        assert inc.model is not model_before
        assert inc.rebuilds == 1

    def test_control_rebuild_updates_o_ac(self):
        network, schedule = clock_gated_design()
        inc = IncrementalAnalyzer(network, schedule)
        (before,) = [
            i
            for i in inc.model.instances["gated_l"]
        ]
        o_zc_before = before.o_zc
        inc.scale_cell("clk_gate", 3.0)
        (after,) = [i for i in inc.model.instances["gated_l"]]
        assert after.o_zc > o_zc_before

    def test_verdict_tracks_delay_changes(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=3.2)
        inc = IncrementalAnalyzer(network, schedule)
        assert inc.analyze().intended
        inc.scale_cell("inv0", 3.0)
        assert not inc.analyze().intended
        inc.scale_cell("inv0", 1 / 3.0)
        assert inc.analyze().intended

    def test_set_delays_rebuilds(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        inc = IncrementalAnalyzer(network, schedule)
        inc.set_delays(estimate_delays(network))
        assert inc.rebuilds == 1
