"""Tests for incremental re-analysis."""

import pytest

from repro.core.analyzer import Hummingbird
from repro.core.incremental import IncrementalAnalyzer
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.core.algorithm1 import run_algorithm1
from repro.delay import estimate_delays
from repro.generators import ff_pipeline, latch_pipeline
from repro.generators.gating import clock_gated_design
from repro.generators.random_logic import random_design

from tests.conftest import build_ff_stage


class TestWarmStart:
    def test_same_verdict_as_cold(self, lib):
        network, schedule = latch_pipeline(
            stages=3, stage_lengths=[14, 4, 14], period=30, library=lib
        )
        inc = IncrementalAnalyzer(network, schedule)
        first = inc.analyze()
        for factor, expected in [(1.5, None), (0.4, None)]:
            for cell in ("s0_i2", "s2_i5"):
                inc.scale_cell(cell, factor)
            warm = inc.analyze(warm=True)
            # Cold reference with identical delays.
            model = AnalysisModel(network, schedule, inc.delays)
            cold = run_algorithm1(model, SlackEngine(model))
            # Different fixed points may assign different (equally valid)
            # offsets, so slack *values* can differ; the verdict and the
            # sign of the worst slack are what Algorithm 1 guarantees.
            assert warm.intended == cold.intended
            assert (warm.worst_slack > 0) == (cold.worst_slack > 0)

    def test_warm_flag_reuses_offsets(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[18, 2], period=22, library=lib
        )
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        windows = [i.w for i in inc.model.adjustable_instances()]
        inc.analyze(warm=True)
        # A second warm run from the fixed point should not move windows
        # beyond the partial-transfer wobble.
        after = [i.w for i in inc.model.adjustable_instances()]
        assert len(after) == len(windows)

    def test_data_change_swaps_without_rebuild(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        model_before = inc.model
        inc.scale_cell("inv1", 0.5)
        assert inc.model is model_before
        assert inc.swaps == 1
        assert inc.rebuilds == 0

    def test_control_change_triggers_rebuild(self):
        network, schedule = clock_gated_design()
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        model_before = inc.model
        inc.scale_cell("clk_gate", 2.0)  # AND gate on the control path
        assert inc.model is not model_before
        assert inc.rebuilds == 1

    def test_control_rebuild_updates_o_ac(self):
        network, schedule = clock_gated_design()
        inc = IncrementalAnalyzer(network, schedule)
        (before,) = [
            i
            for i in inc.model.instances["gated_l"]
        ]
        o_zc_before = before.o_zc
        inc.scale_cell("clk_gate", 3.0)
        (after,) = [i for i in inc.model.instances["gated_l"]]
        assert after.o_zc > o_zc_before

    def test_verdict_tracks_delay_changes(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=3.2)
        inc = IncrementalAnalyzer(network, schedule)
        assert inc.analyze().intended
        inc.scale_cell("inv0", 3.0)
        assert not inc.analyze().intended
        inc.scale_cell("inv0", 1 / 3.0)
        assert inc.analyze().intended

    def test_set_delays_rebuilds(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        inc = IncrementalAnalyzer(network, schedule)
        inc.set_delays(estimate_delays(network))
        assert inc.rebuilds == 1


def _generator_circuits():
    """Distinct circuit families for the mutate-matches-scratch sweep."""
    return [
        ("ff_pipeline", ff_pipeline(stages=3, chain_length=4, period=20.0)),
        (
            "latch_pipeline",
            latch_pipeline(
                stages=4, stage_lengths=[10, 1, 1, 1], period=12.0
            ),
        ),
        (
            "random_latch",
            random_design(seed=7, n_banks=3, gates_per_bank=20, bits=4),
        ),
        (
            "random_ff",
            random_design(
                seed=11, n_banks=2, gates_per_bank=15, bits=4, style="ff"
            ),
        ),
    ]


class TestMutateMatchesFromScratch:
    """Deterministic re-analysis: after an edge-delay mutation the
    incremental answer must be *identical* to a from-scratch run with
    the same delays -- on every circuit family, latch or flip-flop.

    This is the contract the service daemon relies on: a mutation
    drops the cached fixed point (latch networks can admit several
    self-consistent fixed points, and iterating from stale offsets may
    land on a non-canonical one) while still reusing the preprocessed
    model.
    """

    @pytest.mark.parametrize(
        "name,design",
        _generator_circuits(),
        ids=[name for name, __ in _generator_circuits()],
    )
    def test_endpoint_slacks_match(self, name, design):
        network, schedule = design
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        # Mutate a handful of combinational cells, both up and down.
        targets = [c.name for c in network.combinational_cells][:3]
        assert targets, f"{name}: no combinational cells to mutate"
        for factor, cell in zip((1.5, 0.5, 2.0), targets):
            inc.scale_cell(cell, factor)
        warm = inc.timing_result(warm=True)

        scratch = Hummingbird(
            network, schedule, delays=inc.delays
        ).analyze()

        assert warm.intended == scratch.intended
        assert (
            warm.payload()["endpoint_slacks"]
            == scratch.payload()["endpoint_slacks"]
        )
        assert warm.payload()["worst_slack"] == (
            scratch.payload()["worst_slack"]
        )

    def test_mutation_invalidates_fixed_point(self, lib):
        """A delay swap must force the next run to re-seed windows."""
        network, schedule = latch_pipeline(
            stages=4, stage_lengths=[10, 1, 1, 1], period=12.0,
            library=lib,
        )
        inc = IncrementalAnalyzer(network, schedule)
        inc.analyze()
        assert inc._warm is True  # noqa: SLF001 -- deliberate
        inc.scale_cell("s1_i0", 1.5)
        assert inc.swaps == 1 and inc.rebuilds == 0
        assert inc._warm is False  # noqa: SLF001 -- deliberate
        inc.analyze(warm=True)
        assert inc._warm is True  # noqa: SLF001 -- deliberate

    def test_repeat_query_is_stable(self, lib):
        """Unchanged delays: warm repeat answers are byte-identical."""
        network, schedule = latch_pipeline(
            stages=3, stage_lengths=[8, 2, 8], period=24.0, library=lib
        )
        inc = IncrementalAnalyzer(network, schedule)
        first = inc.timing_result(warm=True)
        second = inc.timing_result(warm=True)
        assert first.payload()["endpoint_slacks"] == (
            second.payload()["endpoint_slacks"]
        )
