"""Tests for enable-path constraints (Section 4's third path type)."""

import pytest

from repro.core.enable_paths import check_enable_paths, enable_path_checks
from repro.core.model import AnalysisModel
from repro.delay import estimate_delays
from repro.generators.gating import clock_gated_design
from repro.netlist import NetworkBuilder, validate_network
from repro.netlist.validate import trace_control


class TestControlTraceWithEnables:
    def test_enable_source_recorded(self, lib):
        network, schedule = clock_gated_design()
        trace = trace_control(network, network.cell("gated_l"))
        assert trace.clock == "phi1"
        assert trace.enable_sources == ("en_ff/Q",)

    def test_validation_warns_not_errors(self, lib):
        network, schedule = clock_gated_design()
        report = validate_network(network, set(schedule.clock_names))
        assert report.ok
        assert any("enable paths" in w for w in report.warnings)

    def test_pure_enable_control_still_rejected(self, lib):
        """A control with *no* clock component remains invalid."""
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("f", "DFF", D="w", CK="clk", Q="q")
        b.latch("l", "DLATCH", D="w", G="q", Q="q2")
        b.output("o", "q2", clock="clk")
        network = b.build()
        report = validate_network(network, {"clk"})
        assert not report.ok


class TestEnablePathChecks:
    def _model(self, scale="1"):
        network, schedule = clock_gated_design()
        if scale != "1":
            schedule = schedule.scaled(scale)
        delays = estimate_delays(network)
        return AnalysisModel(network, schedule, delays)

    def test_constraint_geometry(self):
        """en_ff asserts at phi2's trailing edge (95); the gated leading
        edge of phi1 is at 5 next period: D = 10 at period 100."""
        model = self._model()
        (check,) = enable_path_checks(model)
        assert check.controlled_cell == "gated_l"
        assert check.launch_instance == "en_ff@0"
        assert check.ideal_constraint == pytest.approx(10.0)
        assert check.settle_offset > 0

    def test_ok_at_nominal_clock(self):
        assert check_enable_paths(self._model()) == []

    def test_violated_at_fast_clock(self):
        violations = check_enable_paths(self._model("1/10"))
        assert violations
        assert all(v.slack <= 0 for v in violations)
        assert violations[0].ideal_constraint == pytest.approx(1.0)

    def test_deeper_enable_logic_reduces_slack(self):
        def slack(depth):
            network, schedule = clock_gated_design(enable_logic_depth=depth)
            model = AnalysisModel(network, schedule, estimate_delays(network))
            (check,) = enable_path_checks(model)
            return check.slack

        assert slack(4) < slack(1)

    def test_enable_setup_margin(self):
        network, schedule = clock_gated_design()
        network.cell("gated_l").attrs["enable_setup"] = 3.0
        model = AnalysisModel(network, schedule, estimate_delays(network))
        (check,) = enable_path_checks(model)
        base = self._model()
        (base_check,) = enable_path_checks(base)
        assert check.slack == pytest.approx(base_check.slack - 3.0)

    def test_trailing_edge_gating(self):
        network, schedule = clock_gated_design()
        network.cell("gated_l").attrs["enable_edge"] = "trailing"
        model = AnalysisModel(network, schedule, estimate_delays(network))
        (check,) = enable_path_checks(model)
        # From en_ff's assertion (95) to phi1's trailing edge (45 next
        # period): D = 50.
        assert check.ideal_constraint == pytest.approx(50.0)

    def test_bad_enable_edge_rejected(self):
        network, schedule = clock_gated_design()
        network.cell("gated_l").attrs["enable_edge"] = "middle"
        model = AnalysisModel(network, schedule, estimate_delays(network))
        with pytest.raises(ValueError, match="enable_edge"):
            enable_path_checks(model)

    def test_data_paths_unaffected_by_gating(self):
        """The gated latch still participates in normal data analysis."""
        from repro.core.algorithm1 import run_algorithm1
        from repro.core.slack import SlackEngine

        model = self._model()
        result = run_algorithm1(model, SlackEngine(model))
        assert result.intended
        assert "gated_l@0" in result.slacks.capture


class TestControlArrivalWithEnableBranch:
    def test_arrival_uses_clock_branch_only(self, lib):
        """The gated control's O_ac is the clock-to-control delay through
        the AND gate; the enable branch contributes nothing."""
        from repro.core.control_paths import control_arrivals

        network, schedule = clock_gated_design(enable_logic_depth=5)
        delays = estimate_delays(network)
        arrivals = control_arrivals(network, delays)
        gate = network.cell("clk_gate")
        gate_delay = delays.arc_delay(gate, "A", "Z").worst
        assert arrivals["gated_l"].latest == pytest.approx(gate_delay)
