"""Unit tests for cluster extraction."""

import pytest

from repro.core.clusters import cell_arc_pairs, extract_clusters
from repro.netlist import NetworkBuilder


def _two_cluster_network(lib):
    """Two independent latch-to-latch logic blocks on one clock."""
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("ia", "wa", clock="clk")
    b.input("ib", "wb", clock="clk")
    b.latch("la", "DFF", D="wa", CK="clk", Q="qa")
    b.gate("g1", "INV", A="qa", Z="za")
    b.latch("la2", "DFF", D="za", CK="clk", Q="qa2")
    b.output("oa", "qa2", clock="clk")
    b.latch("lb", "DFF", D="wb", CK="clk", Q="qb")
    b.gate("g2", "INV", A="qb", Z="zb")
    b.latch("lb2", "DFF", D="zb", CK="clk", Q="qb2")
    b.output("ob", "qb2", clock="clk")
    return b.build()


class TestExtraction:
    def test_independent_blocks_separate_clusters(self, lib):
        n = _two_cluster_network(lib)
        clusters = extract_clusters(n)
        with_cells = [c for c in clusters if c.cells]
        assert len(with_cells) == 2
        for cluster in with_cells:
            assert len(cluster.cells) == 1
            assert len(cluster.sources) == 1
            assert len(cluster.captures) == 1

    def test_degenerate_direct_connection(self, lib):
        n = _two_cluster_network(lib)
        clusters = extract_clusters(n)
        degenerate = [c for c in clusters if c.is_degenerate]
        # wa, wb (PI->DFF), qa2, qb2 (DFF->PO) are direct nets.
        assert len(degenerate) == 4
        for cluster in degenerate:
            assert len(cluster.sources) == 1
            assert len(cluster.captures) == 1

    def test_shared_net_merges_components(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("l", "DFF", D="w", CK="clk", Q="q")
        b.gate("g1", "INV", A="q", Z="z1")
        b.gate("g2", "INV", A="q", Z="z2")  # shares input net q with g1
        b.latch("l1", "DFF", D="z1", CK="clk", Q="q1")
        b.latch("l2", "DFF", D="z2", CK="clk", Q="q2")
        b.output("o1", "q1", clock="clk")
        b.output("o2", "q2", clock="clk")
        clusters = [c for c in extract_clusters(b.build()) if c.cells]
        assert len(clusters) == 1
        assert len(clusters[0].cells) == 2
        assert len(clusters[0].captures) == 2

    def test_cells_in_topological_order(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("l", "DFF", D="w", CK="clk", Q="q")
        b.gate("g2", "INV", A="z1", Z="z2")
        b.gate("g1", "INV", A="q", Z="z1")
        b.gate("g3", "INV", A="z2", Z="z3")
        b.latch("lo", "DFF", D="z3", CK="clk", Q="qo")
        b.output("o", "qo", clock="clk")
        (cluster,) = [c for c in extract_clusters(b.build()) if c.cells]
        order = [c.name for c in cluster.cells]
        assert order.index("g1") < order.index("g2") < order.index("g3")

    def test_clock_buffer_cluster_has_no_captures(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.gate("cb", "BUF", A="clk", Z="bclk")
        b.latch("l", "DLATCH", D="w", G="bclk", Q="q")
        b.output("o", "q", clock="clk")
        clusters = extract_clusters(b.build())
        buffer_cluster = next(
            c for c in clusters if any(cell.name == "cb" for cell in c.cells)
        )
        assert buffer_cluster.sources == ()
        assert buffer_cluster.captures == ()


class TestReachability:
    def test_reachable_captures(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("ia", "wa", clock="clk")
        b.input("ib", "wb", clock="clk")
        b.latch("la", "DFF", D="wa", CK="clk", Q="qa")
        b.latch("lb", "DFF", D="wb", CK="clk", Q="qb")
        b.gate("g1", "INV", A="qa", Z="z1")
        b.gate("g2", "NAND2", A="z1", B="qb", Z="z2")
        b.latch("lx", "DFF", D="z1", CK="clk", Q="qx")
        b.latch("ly", "DFF", D="z2", CK="clk", Q="qy")
        b.output("ox", "qx", clock="clk")
        b.output("oy", "qy", clock="clk")
        n = b.build()
        (cluster,) = [c for c in extract_clusters(n) if c.cells]
        reach = cluster.reachable_captures(n)
        assert reach["la/Q"] == {"lx/D", "ly/D"}
        assert reach["lb/Q"] == {"ly/D"}

    def test_reachability_respects_arc_structure(self, lib):
        pairs = cell_arc_pairs
        b = NetworkBuilder(lib)
        b.gate("m", "MUX2", A="a", B="b", S="s", Z="z")
        n = b.build()
        assert set(pairs(n.cell("m"))) == {("A", "Z"), ("B", "Z"), ("S", "Z")}

    def test_degenerate_reachability(self, lib):
        n = _two_cluster_network(lib)
        degenerate = [c for c in extract_clusters(n) if c.is_degenerate]
        for cluster in degenerate:
            reach = cluster.reachable_captures(n)
            (sources,) = reach.values()
            assert len(sources) == 1
