"""Behavioural tests for Algorithm 1 (slow-path identification)."""

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import latch_pipeline, loop_of_latches

from tests.conftest import analyze, brute_force_feasible, build_ff_stage


class TestEdgeTriggeredClosedForm:
    """The FF stage is feasible iff period > 3.0 (see test_slack.py)."""

    def test_intended_above_critical_period(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=3.1)
        result, __, __ = analyze(network, schedule)
        assert result.intended
        assert result.worst_slack == pytest.approx(0.1)

    def test_slow_below_critical_period(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=2.9)
        result, __, __ = analyze(network, schedule)
        assert not result.intended
        assert result.worst_slack == pytest.approx(-0.1)
        assert "ff_b@0" in result.slow_instance_names()

    def test_no_transfer_cycles_for_edge_triggered(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        result, __, __ = analyze(network, schedule)
        assert result.iterations.total == 0
        assert result.converged


class TestCycleBorrowing:
    """Uneven latch pipeline stages: the long stage borrows through the
    transparent latch.  Stage delays: a chain of k inverters is roughly
    0.5k ns; with period 20 (phase budget 10) a 24-inverter stage cannot
    fit a rigid phase but borrowing makes the two-stage total fit."""

    def test_uneven_stages_need_borrowing(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[24, 2], period=24, library=lib
        )
        result, model, engine = analyze(network, schedule)
        assert result.intended
        # The first latch must have moved its window later than fully
        # closed-at-start to make room: some window is off its initial
        # position.
        assert any(
            inst.w != inst.width for inst in model.adjustable_instances()
        )

    def test_overlong_total_fails(self, lib):
        # A 48-inverter stage (~24 ns) cannot fit any stage budget at
        # period 12 (at most ~10.4 ns even with maximal borrowing).
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[48, 48], period=12, library=lib
        )
        result, __, __ = analyze(network, schedule)
        assert not result.intended

    def test_transfer_iterations_occurred(self, lib):
        network, schedule = latch_pipeline(
            stages=4, stage_lengths=[20, 2, 20, 2], period=26, library=lib
        )
        result, __, __ = analyze(network, schedule)
        assert result.iterations.forward >= 1

    def test_iteration_bound_respected(self, lib):
        """Iterations complete within roughly the number of elements in a
        directed path, as the paper claims."""
        network, schedule = latch_pipeline(
            stages=6, chain_length=6, period=30, library=lib
        )
        result, model, __ = analyze(network, schedule)
        assert result.converged
        bound = len(model.all_instances()) + 2
        assert result.iterations.forward <= bound
        assert result.iterations.backward <= bound


class TestAgainstBruteForce:
    """Algorithm 1's verdict must match an exhaustive window grid search
    (using the same slack engine, so only the search is under test)."""

    @pytest.mark.parametrize(
        "stage_lengths,period",
        [
            ([4, 4], 30),
            ([18, 2], 22),
            ([2, 18], 22),
            ([14, 14], 18),
            ([10, 6, 2], 24),
            ([16, 16, 16], 40),
        ],
    )
    def test_verdict_matches_grid_search(self, lib, stage_lengths, period):
        network, schedule = latch_pipeline(
            stages=len(stage_lengths),
            stage_lengths=stage_lengths,
            period=period,
            library=lib,
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        feasible, best, __ = brute_force_feasible(model, engine, points=15)
        result = run_algorithm1(model, engine)
        if best > 0.25:
            assert result.intended, f"missed feasible point (best={best})"
        if best < -0.25:
            assert not result.intended, f"false feasibility (best={best})"

    def test_intended_state_is_witness(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[18, 2], period=22, library=lib
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        result = run_algorithm1(model, engine)
        if result.intended:
            # The final offsets themselves satisfy all constraints.
            assert engine.port_slacks().all_positive()


class TestLatchLoop:
    """Directed cycles through transparent latches (Section 4's remark)."""

    def test_fast_loop_intended(self, lib):
        network, schedule = loop_of_latches((2, 2), period=100, library=lib)
        result, __, __ = analyze(network, schedule)
        assert result.intended

    def test_slow_loop_flagged(self, lib):
        network, schedule = loop_of_latches((40, 40), period=20, library=lib)
        result, __, __ = analyze(network, schedule)
        assert not result.intended
        assert result.converged

    def test_loop_cannot_borrow_out_of_global_deficit(self, lib):
        """A cycle's total delay exceeding the full period count cannot be
        fixed by moving windows -- slack transfer must converge to a
        non-intended verdict instead of oscillating."""
        network, schedule = loop_of_latches((30, 30), period=30, library=lib)
        result, model, engine = analyze(network, schedule)
        assert not result.intended
        feasible, best, __ = brute_force_feasible(model, engine, points=9)
        assert not feasible


class TestFastEnoughEndStrictlyPositive:
    def test_partial_iterations_restore_positive_slack(self, lib):
        """After iterations 3-4 every node *not* on a slow path has
        strictly positive slack (the stated purpose of partial
        transfers)."""
        network, schedule = latch_pipeline(
            stages=3, stage_lengths=[16, 2, 2], period=40, library=lib
        )
        result, __, __ = analyze(network, schedule)
        assert result.intended
        slacks = result.slacks
        for name, value in {**slacks.capture, **slacks.launch}.items():
            assert value > 0.0, name
