"""Unit tests for Section 7: breaking open the clock period.

Includes the Figure 4 scenario: eight clock edges A..H in cyclic order;
a cluster requiring "edge E to occur before edge C" is satisfied by
removing the original arc D->E, after which the edges read
E-F-G-H-A-B-C-D with E before C.
"""

from fractions import Fraction

import pytest

from repro.core.breakopen import (
    BreakOpenPlan,
    ClockEdgeGraph,
    PassSelectionError,
    RequirementArc,
    minimum_breaks,
    plan_for_cluster,
)

T = Fraction(80)
#: Eight equally spaced edge times standing in for Figure 4's A..H.
EDGE = {name: Fraction(10 * i) for i, name in enumerate("ABCDEFGH")}
TIMES = sorted(EDGE.values())


class TestIdealConstraint:
    def test_simple_forward(self):
        arc = RequirementArc(EDGE["A"], EDGE["C"])
        assert arc.ideal_constraint(T) == 20

    def test_wrapping(self):
        arc = RequirementArc(EDGE["G"], EDGE["B"])
        assert arc.ideal_constraint(T) == 30

    def test_coincident_edges_one_full_period(self):
        """FF -> FF on the same clock edge: D_p is exactly one period."""
        arc = RequirementArc(EDGE["D"], EDGE["D"])
        assert arc.ideal_constraint(T) == T


class TestHandledBy:
    def test_break_at_closure_handles(self):
        arc = RequirementArc(EDGE["E"], EDGE["C"])  # E before C, D = 60
        assert arc.handled_by(EDGE["C"], T)

    def test_figure4_break_at_E(self):
        """Removing arc D->E (break at E) puts E before C."""
        arc = RequirementArc(EDGE["E"], EDGE["C"])
        assert arc.handled_by(EDGE["E"], T)

    def test_break_inside_window_fails(self):
        """Breaking between assertion and closure mis-handles the pair."""
        arc = RequirementArc(EDGE["E"], EDGE["C"])  # window E..C wraps
        assert not arc.handled_by(EDGE["G"], T)
        assert not arc.handled_by(EDGE["A"], T)

    def test_coincident_pair_only_breaks_at_edge(self):
        arc = RequirementArc(EDGE["D"], EDGE["D"])
        assert arc.handled_by(EDGE["D"], T)
        for name in "ABCEFGH":
            assert not arc.handled_by(EDGE[name], T)


class TestPositions:
    def test_assertion_position_range(self):
        plan = BreakOpenPlan(period=T, breaks=(EDGE["E"],))
        assert plan.position_assertion(EDGE["E"], 0) == 0
        assert plan.position_assertion(EDGE["D"], 0) == 70

    def test_closure_at_break_maps_to_period_end(self):
        plan = BreakOpenPlan(period=T, breaks=(EDGE["E"],))
        assert plan.position_closure(EDGE["E"], 0) == T
        assert plan.position_closure(EDGE["F"], 0) == 10

    def test_figure4_order_after_break_at_E(self):
        """Breaking at E orders the edges E F G H A B C D."""
        plan = BreakOpenPlan(period=T, breaks=(EDGE["E"],))
        order = sorted("ABCDEFGH", key=lambda n: plan.position_assertion(EDGE[n], 0))
        assert "".join(order) == "EFGHABCD"
        assert plan.position_assertion(EDGE["E"], 0) < plan.position_assertion(
            EDGE["C"], 0
        )

    def test_handled_pair_sees_exact_constraint(self):
        plan = BreakOpenPlan(period=T, breaks=(EDGE["E"],))
        arc = RequirementArc(EDGE["E"], EDGE["C"])
        available = plan.position_closure(EDGE["C"], 0) - plan.position_assertion(
            EDGE["E"], 0
        )
        assert available == arc.ideal_constraint(T)


class TestDesignatedPass:
    def test_picks_pass_with_latest_closure(self):
        plan = BreakOpenPlan(period=T, breaks=(EDGE["A"], EDGE["E"]))
        # Closure at D: positions are 30 (break A) and 70+10=... break E
        # gives (D - E) mod T = 70.  Break just after D maximises it.
        assert plan.designated_pass(EDGE["D"]) == 1
        assert plan.designated_pass(EDGE["H"]) == 0

    def test_designated_pass_handles_all_incoming_arcs(self):
        """The argmin break handles every pair converging on the capture
        (the property proved in DESIGN.md)."""
        breaks = (EDGE["B"], EDGE["F"])
        plan = BreakOpenPlan(period=T, breaks=breaks)
        for closure_name in "ABCDEFGH":
            closure = EDGE[closure_name]
            chosen = plan.breaks[plan.designated_pass(closure)]
            for assertion_name in "ABCDEFGH":
                arc = RequirementArc(EDGE[assertion_name], closure)
                if any(arc.handled_by(b, T) for b in breaks):
                    assert arc.handled_by(chosen, T), (
                        assertion_name,
                        closure_name,
                    )


class TestMinimumBreaks:
    def test_single_break_when_possible(self):
        arcs = [RequirementArc(EDGE["A"], EDGE["C"])]
        breaks = minimum_breaks(T, TIMES, arcs)
        assert len(breaks) == 1

    def test_no_arcs_single_arbitrary_pass(self):
        assert len(minimum_breaks(T, TIMES, [])) == 1

    def test_figure1_style_needs_two(self):
        """Conflicting orderings force exactly two passes (Figure 1)."""
        arcs = [
            RequirementArc(EDGE["A"], EDGE["D"]),  # A before D
            RequirementArc(EDGE["E"], EDGE["D"]),  # E (wraps) before D
            RequirementArc(EDGE["A"], EDGE["H"]),
            RequirementArc(EDGE["E"], EDGE["H"]),
        ]
        breaks = minimum_breaks(T, TIMES, arcs)
        assert len(breaks) == 2
        for arc in arcs:
            assert any(arc.handled_by(b, T) for b in breaks)

    def test_all_constraints_covered(self):
        arcs = [
            RequirementArc(EDGE[a], EDGE[c])
            for a, c in [("A", "C"), ("C", "F"), ("F", "A"), ("G", "B")]
        ]
        breaks = minimum_breaks(T, TIMES, arcs)
        for arc in arcs:
            assert any(arc.handled_by(b, T) for b in breaks)

    def test_deterministic(self):
        arcs = [
            RequirementArc(EDGE["A"], EDGE["D"]),
            RequirementArc(EDGE["E"], EDGE["D"]),
        ]
        assert minimum_breaks(T, TIMES, arcs) == minimum_breaks(T, TIMES, arcs)

    def test_greedy_fallback(self):
        """With exhaustive_limit=0 the greedy cover still covers."""
        arcs = [
            RequirementArc(EDGE["A"], EDGE["D"]),
            RequirementArc(EDGE["E"], EDGE["D"]),
            RequirementArc(EDGE["C"], EDGE["G"]),
        ]
        breaks = minimum_breaks(T, TIMES, arcs, exhaustive_limit=0)
        for arc in arcs:
            assert any(arc.handled_by(b, T) for b in breaks)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            minimum_breaks(T, [], [])

    def test_plan_for_cluster_wraps(self):
        plan = plan_for_cluster(T, TIMES, [RequirementArc(EDGE["A"], EDGE["C"])])
        assert isinstance(plan, BreakOpenPlan)
        assert plan.num_passes == 1


class TestClockEdgeGraph:
    def test_original_arcs_form_cycle(self):
        graph = ClockEdgeGraph(period=T, times=tuple(TIMES), arcs=())
        arcs = graph.original_arcs()
        assert len(arcs) == 8
        assert arcs[-1] == (EDGE["H"], EDGE["A"])

    def test_break_for_removed_arc(self):
        graph = ClockEdgeGraph(period=T, times=tuple(TIMES), arcs=())
        assert graph.break_for_removed_arc((EDGE["D"], EDGE["E"])) == EDGE["E"]

    def test_unknown_arc_rejected(self):
        graph = ClockEdgeGraph(period=T, times=tuple(TIMES), arcs=())
        with pytest.raises(ValueError):
            graph.break_for_removed_arc((EDGE["D"], EDGE["F"]))
