"""Behavioural tests for Algorithm 2 (timing-constraint generation)."""

import math

import pytest

from repro.core.algorithm2 import run_algorithm2
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from tests.conftest import build_ff_stage


def _run(network, schedule):
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    return run_algorithm2(model, engine), model, engine


class TestConstraintsOnFastDesign:
    def test_ready_before_required_everywhere(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=20)
        result, model, __ = _run(network, schedule)
        constraints = result.constraints
        for net in network.nets:
            ready = constraints.ready_time(net.name)
            required = constraints.required_time(net.name)
            if ready is None or required is None:
                continue
            assert constraints.node_slack(net.name) > 0, net.name

    def test_difference_bounds_path_delay(self, lib):
        """For two nodes on a path, required(y) - ready(x) must exceed
        the path delay between them (Section 3's guarantee)."""
        network, schedule = build_ff_stage(lib, chain=3, period=20)
        result, model, __ = _run(network, schedule)
        constraints = result.constraints
        delays = model.delays
        # Walk the inverter chain n1 -> n2 -> n3 and check each arc.
        for cell_name, in_net, out_net in [
            ("inv1", "n1", "n2"),
            ("inv2", "n2", "n3"),
        ]:
            cell = network.cell(cell_name)
            arc = delays.arc_delay(cell, "A", "Z").worst
            ready = constraints.ready_time(in_net)
            required = constraints.required_time(out_net)
            assert required - ready >= arc - 1e-9

    def test_no_snatching_needed_when_fast(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        result, __, __ = _run(network, schedule)
        assert result.backward_snatch_cycles == 0
        assert result.forward_snatch_cycles == 0


class TestConstraintsOnSlowDesign:
    def test_slow_nodes_have_non_positive_slack(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=2.5)
        result, __, __ = _run(network, schedule)
        constraints = result.constraints
        # The capture net n2 is on a too-slow path.
        assert constraints.node_slack("n2") <= 0

    def test_snatching_on_slow_latch_pipeline(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[48, 48], period=12, library=lib
        )
        result, __, __ = _run(network, schedule)
        assert not result.algorithm1.intended
        # Slow paths force snatching in at least one direction.
        assert (
            result.backward_snatch_cycles + result.forward_snatch_cycles > 0
        )


class TestCellConstraints:
    def test_cell_budget(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=20)
        result, model, __ = _run(network, schedule)
        cc = result.constraints.cell_constraints(network.cell("inv1"))
        assert cc.cell_name == "inv1"
        assert set(cc.input_ready) == {"A"}
        assert set(cc.output_required) == {"Z"}
        arc = model.delays.arc_delay(network.cell("inv1"), "A", "Z").worst
        assert cc.allowed_delay >= arc

    def test_unconstrained_cell_budget_infinite(self, lib):
        from repro.netlist import NetworkBuilder

        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("f", "DFF", D="w", CK="clk", Q="q")
        b.gate("g", "INV", A="q", Z="dangling")
        network = b.build()
        from repro.clocks import ClockSchedule

        result, __, __ = _run(network, ClockSchedule.single("clk", 100))
        cc = result.constraints.cell_constraints(network.cell("g"))
        assert cc.allowed_delay == math.inf


class TestSettlingTimes:
    def test_single_phase_single_settling(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        result, __, __ = _run(network, schedule)
        assert result.constraints.settling_count("n1") == 1

    def test_fig1_two_settlings_on_shared_gate(self, lib):
        from repro.generators import fig1_circuit

        network, schedule = fig1_circuit()
        result, __, __ = _run(network, schedule)
        # The time-multiplexed gate output settles twice per period.
        assert result.constraints.settling_count("g_out") == 2
