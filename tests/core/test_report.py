"""Unit tests for slow-path extraction and formatting."""

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.report import extract_slow_paths, format_slow_paths
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from tests.conftest import build_ff_stage


def _slow_ff(lib, chain=4, period=3.0):
    network, schedule = build_ff_stage(lib, chain=chain, period=period)
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    result = run_algorithm1(model, engine)
    return network, model, engine, result


class TestExtraction:
    def test_path_traces_full_chain(self, lib):
        network, model, engine, result = _slow_ff(lib)
        assert not result.intended
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        capture_path = next(
            p for p in paths if p.capture_instance == "ff_b@0"
        )
        cells = [step.cell_name for step in reversed(capture_path.steps)]
        assert cells == ["inv0", "inv1", "inv2", "inv3"]
        assert capture_path.launch_instance == "ff_a@0"
        assert capture_path.slack == pytest.approx(
            result.slacks.capture["ff_b@0"]
        )

    def test_violation_amount(self, lib):
        __, model, engine, result = _slow_ff(lib)
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        worst = paths[0]
        assert worst.violation == pytest.approx(-worst.slack)
        assert worst.arrival > worst.closure

    def test_sorted_most_violating_first(self, lib):
        __, model, engine, result = _slow_ff(lib, chain=6, period=3.0)
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)

    def test_limit_respected(self, lib):
        __, model, engine, result = _slow_ff(lib)
        paths = extract_slow_paths(
            model, engine, result.slacks.capture, limit=1
        )
        assert len(paths) == 1

    def test_no_paths_on_fast_design(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        result = run_algorithm1(model, engine)
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        assert paths == []

    def test_latch_pipeline_paths_cross_latch_boundary(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[48, 48], period=12, library=lib
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        result = run_algorithm1(model, engine)
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        captures = {p.capture_instance for p in paths}
        assert any(name.startswith("s0_l") or name.startswith("s1_l")
                   for name in captures)


class TestFormatting:
    def test_format_mentions_cells_and_slack(self, lib):
        __, model, engine, result = _slow_ff(lib)
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        text = format_slow_paths(paths)
        assert "slack=" in text
        assert "inv0" in text

    def test_format_empty(self):
        assert "intended" in format_slow_paths([])

    def test_format_limit(self, lib):
        __, model, engine, result = _slow_ff(lib, chain=6)
        paths = extract_slow_paths(model, engine, result.slacks.capture)
        text = format_slow_paths(paths, limit=1)
        if len(paths) > 1:
            assert "more" in text
