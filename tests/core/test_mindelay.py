"""Unit tests for supplementary (minimum-delay) constraint checking."""

import pytest

from repro.clocks import ClockSchedule, ClockWaveform
from repro.core.algorithm1 import run_algorithm1
from repro.core.mindelay import check_min_delays, earliest_assertion_offset
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import DelayParameters, estimate_delays
from repro.netlist import NetworkBuilder

from tests.conftest import build_ff_stage


class TestEarliestAssertion:
    def test_uses_min_control_arrival(self, lib):
        from fractions import Fraction

        from repro.core.sync_elements import GenericInstance, InstanceKind

        inst = GenericInstance(
            "x@0",
            "x",
            InstanceKind.EDGE_TRIGGERED,
            Fraction(0),
            Fraction(0),
            Fraction(100),
            control_arrival=2.0,
            control_arrival_min=0.5,
        )
        assert earliest_assertion_offset(inst) == pytest.approx(0.5)

    def test_fixed_source_uses_offset(self, lib):
        from fractions import Fraction

        from repro.core.sync_elements import GenericInstance, InstanceKind

        inst = GenericInstance(
            "i@pad",
            "i",
            InstanceKind.FIXED_SOURCE,
            Fraction(0),
            None,
            Fraction(100),
            fixed_offset=3.0,
        )
        assert earliest_assertion_offset(inst) == pytest.approx(3.0)


class TestCheckMinDelays:
    def test_same_clock_ff_chain_clean(self, lib):
        """A same-edge FF chain cannot violate the supplementary
        constraint: data launched at an edge arrives after it, well within
        one period of the next closure."""
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        model = AnalysisModel(network, schedule, estimate_delays(network))
        engine = SlackEngine(model)
        run_algorithm1(model, engine)
        assert check_min_delays(model, engine) == []

    def test_short_path_to_late_closure_violates(self, lib):
        """A capture whose closure sits almost a full capture-clock period
        after the launch edge is violated by a near-zero-delay path: the
        data changes more than T_y - epsilon... precisely, the earliest
        arrival lands more than T_y before the closure."""
        b = NetworkBuilder(lib)
        b.clock("clk_a")
        b.clock("clk_b")
        b.input("i", "w", clock="clk_a")
        b.latch("fa", "DFF", D="w", CK="clk_a", Q="q")
        # Direct connection: minimum delay ~ 0.
        b.latch("fb", "DFF", D="q", CK="clk_b", Q="q2")
        b.output("o", "q2", clock="clk_b")
        n = b.build()
        # clk_b is 4x faster: T_y = 25.  fa launches at 50; fb instances
        # close at 12.5, 37.5, 62.5, 87.5.  The pairing 50 -> 62.5 has
        # D = 12.5 < T_y, fine; but the *other* instances (e.g. closing at
        # 37.5 next period, D = 87.5 > T_y = 25) see data that was updated
        # more than one capture period before closure: a classic
        # fast-path/multi-frequency hazard the supplementary constraint
        # catches.
        schedule = ClockSchedule(
            [
                ClockWaveform("clk_a", 100, 0, 50),
                ClockWaveform("clk_b", 25, 0, "12.5"),
            ]
        )
        model = AnalysisModel(n, schedule, estimate_delays(n))
        engine = SlackEngine(model)
        run_algorithm1(model, engine)
        violations = check_min_delays(model, engine)
        assert violations
        assert any(v.capture_instance.startswith("fb@") for v in violations)
        assert all(v.amount > 0 for v in violations)

    def test_violation_amount_positive_only_for_real_cases(self, lib):
        network, schedule = build_ff_stage(lib, chain=4, period=30)
        model = AnalysisModel(network, schedule, estimate_delays(network))
        engine = SlackEngine(model)
        run_algorithm1(model, engine)
        for violation in check_min_delays(model, engine):
            assert violation.amount > 0
