"""Behavioural tests for Algorithm 3 (analysis-redesign loop)."""

import pytest

from repro.core.resynthesis import SpeedupModel, run_redesign_loop
from repro.delay import estimate_delays

from tests.conftest import build_ff_stage


class TestSpeedupModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpeedupModel(speedup_factor=1.0)
        with pytest.raises(ValueError):
            SpeedupModel(speedup_factor=0.5, min_scale=0.0)


class TestRedesignLoop:
    def test_already_fast_design_trivially_succeeds(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        delays = estimate_delays(network)
        result = run_redesign_loop(network, schedule, delays)
        assert result.success
        assert result.num_rounds == 1
        assert result.rounds[0].chosen_module is None
        assert result.area_cost == 0.0

    def test_slow_design_converges_with_speedups(self, lib):
        # Feasible only below ~3.0ns budget; 2.5 requires ~17% speed-up.
        network, schedule = build_ff_stage(lib, chain=2, period=2.7)
        delays = estimate_delays(network)
        result = run_redesign_loop(network, schedule, delays)
        assert result.success
        assert result.num_rounds >= 2
        assert result.area_cost > 0.0
        chosen = [r.chosen_module for r in result.rounds if r.chosen_module]
        assert set(chosen) <= {"inv0", "inv1"}

    def test_final_delays_are_feasible(self, lib):
        from tests.conftest import analyze

        network, schedule = build_ff_stage(lib, chain=3, period=3.2)
        delays = estimate_delays(network)
        result = run_redesign_loop(network, schedule, delays)
        assert result.success
        outcome, __, __ = analyze(network, schedule, result.final_delays)
        assert outcome.intended

    def test_impossible_budget_fails_gracefully(self, lib):
        """Even at min_scale the design cannot fit: the loop reports
        failure instead of spinning."""
        network, schedule = build_ff_stage(lib, chain=2, period=0.5)
        delays = estimate_delays(network)
        result = run_redesign_loop(
            network,
            schedule,
            delays,
            speedup=SpeedupModel(speedup_factor=0.5, min_scale=0.5),
            max_rounds=10,
        )
        assert not result.success
        assert result.num_rounds <= 10

    def test_rounds_record_constraint_budget(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=2.7)
        delays = estimate_delays(network)
        result = run_redesign_loop(network, schedule, delays)
        working = [r for r in result.rounds if r.chosen_module]
        assert working
        assert all(r.allowed_delay is not None for r in working)

    def test_worst_slack_monotone_progress(self, lib):
        """Each speed-up should not make the worst slack worse."""
        network, schedule = build_ff_stage(lib, chain=4, period=3.5)
        delays = estimate_delays(network)
        result = run_redesign_loop(network, schedule, delays)
        slacks = [r.worst_slack for r in result.rounds]
        assert all(b >= a - 1e-9 for a, b in zip(slacks, slacks[1:]))

    def test_network_not_mutated(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=2.7)
        delays = estimate_delays(network)
        before = delays.arc_delay(network.cell("inv0"), "A", "Z")
        run_redesign_loop(network, schedule, delays)
        assert delays.arc_delay(network.cell("inv0"), "A", "Z") == before
