"""Tests for multi-corner analysis."""

import pytest

from repro.core.corners import (
    Corner,
    DEFAULT_CORNERS,
    analyze_corners,
)
from repro.delay import estimate_delays
from repro.generators.clock_tree import skewed_clock_pipeline

from tests.conftest import build_ff_stage


class TestCorner:
    def test_validation(self):
        with pytest.raises(ValueError):
            Corner("bad", max_scale=0.0)
        with pytest.raises(ValueError):
            Corner("bad", min_scale=-1.0)

    def test_default_set(self):
        names = [corner.name for corner in DEFAULT_CORNERS]
        assert names == ["slow", "typical", "fast"]


class TestAnalyzeCorners:
    def test_comfortable_design_clean_everywhere(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        # A real input arrival window (1 ns after the edge) -- a pad
        # switching exactly at the capture edge is a genuine hold race.
        network.cell("din").attrs["offset"] = 1.0
        result = analyze_corners(network, schedule)
        assert result.intended
        assert set(result.results) == {"slow", "typical", "fast"}
        assert "all corners clean" in result.summary()

    def test_slow_corner_catches_marginal_setup(self, lib):
        """Feasible at typical (critical period 3.0) but not with the
        +25% slow-corner derate."""
        network, schedule = build_ff_stage(lib, chain=2, period=3.3)
        result = analyze_corners(network, schedule, check_hold_too=False)
        assert result.results["typical"].setup.intended
        assert not result.results["slow"].setup.intended
        assert not result.intended
        assert result.worst_setup_corner == "slow"

    def test_fast_corner_catches_hold(self):
        """The skew-induced hold race worsens at the fast corner (min
        delays derated down) even with a marginal safe nominal."""
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 1), chain_length=3, period=40
        )
        result = analyze_corners(network, schedule)
        fast = result.results["fast"]
        typical = result.results["typical"]
        assert len(fast.hold_violations) >= len(typical.hold_violations)

    def test_corner_ordering_of_slacks(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=20)
        result = analyze_corners(network, schedule)
        slow = result.results["slow"].setup.worst_slack
        typical = result.results["typical"].setup.worst_slack
        fast = result.results["fast"].setup.worst_slack
        assert slow < typical < fast

    def test_custom_corners(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        result = analyze_corners(
            network,
            schedule,
            corners=(Corner("military", max_scale=1.6),),
        )
        assert set(result.results) == {"military"}

    def test_summary_shows_failures(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=3.3)
        result = analyze_corners(network, schedule)
        text = result.summary()
        assert "FAIL" in text
        assert "does NOT close" in text
