"""Hand-computed multi-frequency cases (Section 4's parallel-instance
expansion and the "very next ideal closure" pairing)."""

import pytest

from repro.clocks import ClockSchedule, ClockWaveform
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder

#: clk_a: period 100, trailing edge at 50.  clk_b: period 25, trailing
#: edges at 12.5, 37.5, 62.5, 87.5.
SCHEDULE = ClockSchedule(
    [
        ClockWaveform("clk_a", 100, 0, 50),
        ClockWaveform("clk_b", 25, 0, "12.5"),
    ]
)


def _build(lib, launch_clock, capture_clock):
    b = NetworkBuilder(lib)
    b.clock("clk_a")
    b.clock("clk_b")
    b.input("i", "w", clock=launch_clock)
    b.latch("src", "DFF", D="w", CK=launch_clock, Q="q")
    b.gate("g", "INV", A="q", Z="z")
    b.latch("dst", "DFF", D="z", CK=capture_clock, Q="q2")
    b.output("o", "q2", clock=capture_clock)
    network = b.build()
    delays = estimate_delays(network)
    model = AnalysisModel(network, SCHEDULE, delays)
    return network, delays, model, SlackEngine(model)


def _inv_ready(network, delays, launch_offset):
    """Worst arrival at the inverter output for a launch at offset 0."""
    d = delays.arc_delay(network.cell("g"), "A", "Z")
    # Both launch transitions at launch_offset; INV is negative unate.
    return launch_offset + d.worst


class TestSlowToFast:
    """clk_a FF -> INV -> clk_b FF: launch at 50, next clk_b closure at
    62.5 => D = 12.5."""

    def test_capture_slack_closed_form(self, lib):
        network, delays, model, engine = _build(lib, "clk_a", "clk_b")
        timing = delays.sync_timing(network.cell("src"))
        ready = _inv_ready(network, delays, timing.c_to_q)
        expected = 12.5 - timing.setup - ready
        slacks = engine.port_slacks()
        # All four capture instances share the D input; the binding one
        # is the tightest pairing.
        worst = min(
            slacks.capture[f"dst@{k}"] for k in range(4)
        )
        assert worst == pytest.approx(expected)

    def test_four_capture_instances(self, lib):
        __, __, model, __ = _build(lib, "clk_a", "clk_b")
        assert len(model.instances["dst"]) == 4
        closures = sorted(
            float(i.closure_edge) for i in model.instances["dst"]
        )
        assert closures == [12.5, 37.5, 62.5, 87.5]

    def test_non_binding_instances_have_more_slack(self, lib):
        network, delays, model, engine = _build(lib, "clk_a", "clk_b")
        slacks = engine.port_slacks()
        values = sorted(slacks.capture[f"dst@{k}"] for k in range(4))
        # Pairings 12.5, 37.5, 62.5, 87.5 after the launch at 50 give
        # D = 62.5, 87.5, 12.5, 37.5 respectively: four distinct slacks
        # 25 apart.
        diffs = [b - a for a, b in zip(values, values[1:])]
        assert all(d == pytest.approx(25.0) for d in diffs)


class TestFastToSlow:
    """clk_b FF -> INV -> clk_a FF: four launches, the binding one is at
    37.5 (D = 12.5 to the closure at 50)."""

    def test_capture_slack_closed_form(self, lib):
        network, delays, model, engine = _build(lib, "clk_b", "clk_a")
        timing = delays.sync_timing(network.cell("src"))
        ready = _inv_ready(network, delays, timing.c_to_q)
        expected = 12.5 - timing.setup - ready
        slacks = engine.port_slacks()
        assert slacks.capture["dst@0"] == pytest.approx(expected)

    def test_four_launch_instances_one_launch_slack_each(self, lib):
        network, delays, model, engine = _build(lib, "clk_b", "clk_a")
        slacks = engine.port_slacks()
        launch_values = [slacks.launch[f"src@{k}"] for k in range(4)]
        assert len(set(round(v, 6) for v in launch_values)) == 4

    def test_passes_cover_all_pairings(self, lib):
        """Every (launch instance, capture) pairing must be handled in
        the capture's designated pass (covering-set property on a real
        multi-frequency model)."""
        from repro.core.breakopen import RequirementArc

        __, __, model, __ = _build(lib, "clk_b", "clk_a")
        period = SCHEDULE.overall_period
        for cluster in model.clusters:
            plan = model.plans[cluster.name]
            reach = cluster.reachable_captures(model.network)
            for source in cluster.sources:
                targets = reach[source.full_name]
                if not targets:
                    continue
                for capture_port in model.capture_ports[cluster.name]:
                    if capture_port.terminal_name not in targets:
                        continue
                    for launch in model.instances[source.cell.name]:
                        if launch.assertion_edge is None:
                            continue
                        arc = RequirementArc(
                            launch.assertion_edge,
                            capture_port.instance.closure_edge,
                        )
                        assert plan.handles(arc, capture_port.pass_index)


class TestIntendedVerdicts:
    def test_slow_to_fast_infeasible_when_inverter_too_slow(self, lib):
        network, delays, model, engine = _build(lib, "clk_a", "clk_b")
        slow = delays.with_scaled_cell("g", 30.0)  # ~15ns > 12.5 budget
        model = AnalysisModel(network, SCHEDULE, slow)
        from repro.core.algorithm1 import run_algorithm1

        result = run_algorithm1(model, SlackEngine(model))
        assert not result.intended
        assert any(name.startswith("dst@") for name in
                   result.slow_instance_names())

    def test_feasible_at_nominal(self, lib):
        from repro.core.algorithm1 import run_algorithm1

        for pair in (("clk_a", "clk_b"), ("clk_b", "clk_a")):
            network, delays, model, engine = _build(lib, *pair)
            assert run_algorithm1(model, engine).intended
