"""Unit tests for the maximum-frequency binary search."""

import pytest

from repro.core.frequency import find_max_frequency
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from tests.conftest import build_ff_stage


class TestFindMaxFrequency:
    def test_ff_stage_matches_closed_form(self, lib):
        """The FF stage is feasible iff period > 3.0 (see test_slack)."""
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        delays = estimate_delays(network)
        result = find_max_frequency(
            network, schedule, delays, tolerance=1e-4
        )
        assert result.min_period is not None
        assert result.min_period == pytest.approx(3.0, rel=1e-3)

    def test_found_schedule_is_feasible(self, lib):
        from tests.conftest import analyze

        network, schedule = build_ff_stage(lib, chain=3, period=10)
        delays = estimate_delays(network)
        result = find_max_frequency(network, schedule, delays)
        assert result.schedule is not None
        outcome, __, __ = analyze(network, result.schedule, delays)
        assert outcome.intended

    def test_latch_pipeline_beats_nominal_budget(self, lib):
        """With borrowing, a 2-stage latch pipeline can run with an
        overall period smaller than twice the worst stage delay."""
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[20, 2], period=100, library=lib
        )
        delays = estimate_delays(network)
        result = find_max_frequency(network, schedule, delays)
        # Worst stage is ~10ns; a rigid two-phase scheme would need each
        # phase (half period) to cover it: period >= ~20ns.  Borrowing
        # does better.
        assert result.min_period < 20.0

    def test_infeasible_at_upper_bound(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        delays = estimate_delays(network)
        result = find_max_frequency(
            network, schedule, delays, upper_scale=0.01, lower_scale=0.001
        )
        assert result.min_period is None
        assert result.max_frequency is None

    def test_already_feasible_at_lower_bound(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=1000)
        delays = estimate_delays(network)
        result = find_max_frequency(
            network, schedule, delays, lower_scale=0.5
        )
        assert result.min_period == pytest.approx(500.0)

    def test_evaluation_budget_respected(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        delays = estimate_delays(network)
        result = find_max_frequency(
            network, schedule, delays, max_evaluations=8
        )
        assert result.evaluations <= 9
