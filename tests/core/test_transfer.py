"""Unit tests for slack transfer and time snatching operators."""

import math
from fractions import Fraction

import pytest

from repro.core.sync_elements import GenericInstance, InstanceKind
from repro.core.transfer import (
    complete_backward,
    complete_forward,
    partial_backward,
    partial_forward,
    snatch_backward,
    snatch_forward,
    sweep,
)


def _latch(width=20.0, w=None):
    inst = GenericInstance(
        name="l@0",
        cell_name="l",
        kind=InstanceKind.TRANSPARENT,
        assertion_edge=Fraction(0),
        closure_edge=Fraction(20),
        clock_period=Fraction(100),
        width=width,
    )
    if w is not None:
        inst.w = w
    return inst


def _ff():
    return GenericInstance(
        name="f@0",
        cell_name="f",
        kind=InstanceKind.EDGE_TRIGGERED,
        assertion_edge=Fraction(50),
        closure_edge=Fraction(50),
        clock_period=Fraction(100),
    )


class TestCompleteTransfer:
    def test_forward_moves_min_of_slack_and_freedom(self):
        latch = _latch(w=20.0)
        moved = complete_forward(latch, input_slack=5.0)
        assert moved == pytest.approx(5.0)
        assert latch.w == pytest.approx(15.0)

    def test_forward_clamped_by_window(self):
        latch = _latch(w=3.0)
        moved = complete_forward(latch, input_slack=10.0)
        assert moved == pytest.approx(3.0)
        assert latch.w == pytest.approx(0.0)

    def test_forward_no_move_on_negative_slack(self):
        latch = _latch(w=10.0)
        assert complete_forward(latch, input_slack=-2.0) == 0.0
        assert latch.w == pytest.approx(10.0)

    def test_forward_infinite_slack_uses_freedom(self):
        latch = _latch(w=7.0)
        assert complete_forward(latch, math.inf) == pytest.approx(7.0)

    def test_backward_symmetric(self):
        latch = _latch(w=5.0)
        moved = complete_backward(latch, output_slack=30.0)
        assert moved == pytest.approx(15.0)  # clamped by width - w
        assert latch.w == pytest.approx(20.0)

    def test_edge_triggered_never_moves(self):
        ff = _ff()
        assert complete_forward(ff, 100.0) == 0.0
        assert complete_backward(ff, 100.0) == 0.0


class TestPartialTransfer:
    def test_partial_moves_fraction(self):
        latch = _latch(w=20.0)
        moved = partial_forward(latch, input_slack=10.0, divisor=2.0)
        assert moved == pytest.approx(5.0)

    def test_partial_requires_divisor_above_one(self):
        latch = _latch(w=20.0)
        with pytest.raises(ValueError):
            partial_forward(latch, 10.0, divisor=1.0)
        with pytest.raises(ValueError):
            partial_backward(latch, 10.0, divisor=0.5)

    def test_partial_backward(self):
        latch = _latch(w=10.0)
        moved = partial_backward(latch, output_slack=8.0, divisor=4.0)
        assert moved == pytest.approx(2.0)
        assert latch.w == pytest.approx(12.0)


class TestSnatching:
    def test_forward_snatch_on_negative_output_slack(self):
        latch = _latch(w=10.0)
        moved = snatch_forward(latch, output_slack=-4.0)
        assert moved == pytest.approx(4.0)
        assert latch.w == pytest.approx(6.0)

    def test_forward_snatch_ignores_positive_slack(self):
        latch = _latch(w=10.0)
        assert snatch_forward(latch, output_slack=4.0) == 0.0

    def test_snatch_clamped_by_freedom(self):
        latch = _latch(w=2.0)
        assert snatch_forward(latch, output_slack=-10.0) == pytest.approx(2.0)
        assert latch.w == 0.0

    def test_backward_snatch_on_negative_input_slack(self):
        latch = _latch(w=15.0)
        moved = snatch_backward(latch, input_slack=-3.0)
        assert moved == pytest.approx(3.0)
        assert latch.w == pytest.approx(18.0)

    def test_snatch_regardless_of_donor(self):
        """Snatching takes time "regardless of whether the adjacent path
        can spare it": only the snatcher's negativity matters."""
        latch = _latch(w=10.0)
        assert snatch_forward(latch, output_slack=-1.0) == pytest.approx(1.0)


class TestSweep:
    def test_sweep_totals_and_skips_fixed(self):
        latch1, latch2, ff = _latch(w=10.0), _latch(w=4.0), _ff()
        slacks = {"l@0": 6.0}
        # Both latches share the name "l@0" in this synthetic setup; give
        # them distinct names for the sweep.
        latch2.name = "l2@0"
        slacks["l2@0"] = 6.0
        total = sweep([latch1, latch2, ff], slacks, complete_forward)
        assert total == pytest.approx(6.0 + 4.0)

    def test_sweep_defaults_missing_slack_to_inf(self):
        latch = _latch(w=5.0)
        total = sweep([latch], {}, complete_forward)
        assert total == pytest.approx(5.0)
