"""Tests for aggregate timing statistics."""

import math

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.core.statistics import timing_statistics
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from tests.conftest import build_ff_stage


def _stats(network, schedule, bins=8):
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    result = run_algorithm1(model, engine)
    return timing_statistics(model, result.slacks, bins), result


class TestOverall:
    def test_clean_design(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        stats, result = _stats(network, schedule)
        assert stats.overall.violating == 0
        assert stats.overall.ok
        assert stats.overall.worst_slack == pytest.approx(result.worst_slack)
        # Endpoints: ff_a, ff_b, dout pad.
        assert stats.overall.endpoints == 3

    def test_violating_design_tns(self, lib):
        network, schedule = build_ff_stage(lib, chain=4, period=2.0)
        stats, result = _stats(network, schedule)
        assert stats.overall.violating >= 1
        assert stats.overall.total_negative_slack < 0
        assert stats.overall.worst_slack == pytest.approx(result.worst_slack)
        assert not stats.overall.ok

    def test_tns_sums_only_negatives(self, lib):
        network, schedule = build_ff_stage(lib, chain=4, period=2.0)
        stats, result = _stats(network, schedule)
        expected = sum(
            s
            for s in result.slacks.capture.values()
            if not math.isinf(s) and s <= 0
        )
        assert stats.overall.total_negative_slack == pytest.approx(expected)


class TestByClock:
    def test_groups_by_capture_clock(self, lib):
        network, schedule = latch_pipeline(
            stages=4, chain_length=3, period=60, library=lib
        )
        stats, __ = _stats(network, schedule)
        assert set(stats.by_clock) == {"phi1", "phi2"}
        total = sum(g.endpoints for g in stats.by_clock.values())
        assert total == stats.overall.endpoints

    def test_pad_clock_grouping(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        stats, __ = _stats(network, schedule)
        assert stats.by_clock["clk"].endpoints == 3


class TestHistogramAndFormat:
    def test_histogram_counts_all_endpoints(self, lib):
        network, schedule = latch_pipeline(
            stages=4, chain_length=3, period=60, library=lib
        )
        stats, __ = _stats(network, schedule, bins=5)
        assert sum(count for __, count in stats.histogram) == (
            stats.overall.endpoints
        )
        lowers = [low for low, __ in stats.histogram]
        assert lowers == sorted(lowers)

    def test_format_mentions_wns_tns(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        stats, __ = _stats(network, schedule)
        text = stats.format()
        assert "WNS" in text and "TNS" in text
        assert "by capture clock" in text
        assert "histogram" in text

    def test_single_value_histogram(self, lib):
        network, schedule = build_ff_stage(lib, chain=0, period=10)
        stats, __ = _stats(network, schedule)
        assert stats.histogram  # degenerate but present
