"""Unit tests for the block-method slack engine (hand-computed cases)."""

import math

import pytest

from repro.clocks import ClockSchedule
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder

from tests.conftest import build_ff_stage


class TestFFStageHandComputed:
    """PI -> DFF -> INV -> INV -> DFF -> PO on one clock, period P.

    With the default library (DFF: setup 0.8, c_to_q 1.2; INV: intrinsic
    0.35 +- 0.05 skew, R 0.10; loads: INV pin 1.0 / DFF D pin 1.2, wire
    0.4 per fanout) the launch-to-capture arrival is 2.20 on both
    transitions and the capture slack is P - 3.0.
    """

    def _slacks(self, lib, period):
        network, schedule = build_ff_stage(lib, chain=2, period=period)
        model = AnalysisModel(network, schedule, estimate_delays(network))
        engine = SlackEngine(model)
        return model, engine, engine.port_slacks()

    def test_capture_slack_closed_form(self, lib):
        __, __, slacks = self._slacks(lib, 10)
        assert slacks.capture["ff_b@0"] == pytest.approx(10 - 3.0)

    def test_launch_slack_matches(self, lib):
        __, __, slacks = self._slacks(lib, 10)
        assert slacks.launch["ff_a@0"] == pytest.approx(10 - 3.0)

    def test_pi_to_ff_slack(self, lib):
        __, __, slacks = self._slacks(lib, 10)
        assert slacks.capture["ff_a@0"] == pytest.approx(10 - 0.8)

    def test_ff_to_po_slack(self, lib):
        __, __, slacks = self._slacks(lib, 10)
        assert slacks.capture["dout@pad"] == pytest.approx(10 - 1.2)

    def test_worst_aggregates(self, lib):
        __, __, slacks = self._slacks(lib, 10)
        assert slacks.worst() == pytest.approx(7.0)
        assert slacks.all_positive()

    def test_scaling_period_shifts_slack_linearly(self, lib):
        __, __, s10 = self._slacks(lib, 10)
        __, __, s20 = self._slacks(lib, 20)
        assert s20.capture["ff_b@0"] - s10.capture["ff_b@0"] == pytest.approx(10)

    def test_zero_slack_at_critical_period(self, lib):
        __, __, slacks = self._slacks(lib, 3.0)
        assert slacks.capture["ff_b@0"] == pytest.approx(0.0, abs=1e-9)
        assert not slacks.all_positive()


class TestRiseFallSeparation:
    def test_skewed_inverter_chain_tracks_transitions(self, lib):
        """One inverter: output rise comes from input fall and is slower
        (the INV spec has +0.05 rise skew)."""
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("fa", "DFF", D="w", CK="clk", Q="q")
        b.gate("g", "INV", A="q", Z="z")
        b.latch("fb", "DFF", D="z", CK="clk", Q="q2")
        b.output("o", "q2", clock="clk")
        n = b.build()
        model = AnalysisModel(n, ClockSchedule.single("clk", 100), estimate_delays(n))
        engine = SlackEngine(model)
        (cluster,) = [c for c in model.clusters if c.cells]
        detail = engine.cluster_detail(cluster)
        ready = detail.passes[0].ready["z"]
        assert ready.rise > ready.fall  # rise is the slow transition


class TestClusterDetail:
    def test_required_minus_ready_equals_port_slack(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=12)
        model = AnalysisModel(network, schedule, estimate_delays(network))
        engine = SlackEngine(model)
        slacks = engine.port_slacks()
        (cluster,) = [c for c in model.clusters if c.cells]
        detail = engine.cluster_detail(cluster)
        capture_net = model.capture_ports[cluster.name][0].net_name
        assert detail.net_slack(capture_net) == pytest.approx(
            slacks.capture["ff_b@0"]
        )

    def test_settling_times_single_pass(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        model = AnalysisModel(network, schedule, estimate_delays(network))
        engine = SlackEngine(model)
        (cluster,) = [c for c in model.clusters if c.cells]
        detail = engine.cluster_detail(cluster)
        for net in cluster.net_names:
            assert detail.settling_times(net) == 1

    def test_unreachable_net_infinite_slack(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("fa", "DFF", D="w", CK="clk", Q="q")
        b.gate("g", "INV", A="q", Z="z")  # dangles: no capture
        n = b.build()
        model = AnalysisModel(n, ClockSchedule.single("clk", 100), estimate_delays(n))
        engine = SlackEngine(model)
        cluster = next(c for c in model.clusters if c.cells)
        detail = engine.cluster_detail(cluster)
        assert detail.net_slack("z") == math.inf
        slacks = engine.port_slacks()
        assert slacks.launch["fa@0"] == math.inf


class TestOffsetsMoveSlacks:
    def test_window_shift_trades_slack(self, lib):
        """Moving a latch window earlier gives slack to the downstream
        path and takes it from the upstream path, one for one."""
        b = NetworkBuilder(lib)
        b.clock("phi1")
        b.clock("phi2")
        b.input("i", "w", clock="phi2", edge="leading")
        b.gate("g0", "INV", A="w", Z="d1")
        b.latch("l1", "DLATCH", D="d1", G="phi1", Q="q1")
        b.gate("g1", "INV", A="q1", Z="d2")
        b.latch("l2", "DLATCH", D="d2", G="phi2", Q="q2")
        b.output("o", "q2", clock="phi2", edge="trailing")
        n = b.build()
        model = AnalysisModel(n, ClockSchedule.two_phase(100), estimate_delays(n))
        engine = SlackEngine(model)
        (l1_instance,) = model.instances["l1"]
        before = engine.port_slacks()
        l1_instance.shift_window(-10.0)
        after = engine.port_slacks()
        assert after.capture["l1@0"] == pytest.approx(
            before.capture["l1@0"] - 10.0
        )
        assert after.launch["l1@0"] == pytest.approx(
            before.launch["l1@0"] + 10.0
        )
