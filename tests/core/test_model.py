"""Unit tests for AnalysisModel preparation (pre-processing)."""

import pytest

from repro.clocks import ClockSchedule, ClockWaveform
from repro.core.model import AnalysisModel
from repro.core.sync_elements import InstanceKind
from repro.delay import estimate_delays
from repro.generators import fig1_circuit
from repro.netlist import NetworkBuilder
from repro.netlist.validate import ValidationError


def _simple(lib, period=100):
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("i", "w", clock="clk")
    b.latch("f", "DFF", D="w", CK="clk", Q="q")
    b.gate("g", "INV", A="q", Z="z")
    b.latch("l", "DLATCH", D="z", G="clk", Q="q2")
    b.output("o", "q2", clock="clk")
    n = b.build()
    return n, ClockSchedule.single("clk", period)


class TestInstanceExpansion:
    def test_one_instance_per_pulse(self, lib):
        b = NetworkBuilder(lib)
        b.clock("fast")
        b.clock("slow")
        b.input("i", "w", clock="slow")
        b.latch("lf", "DLATCH", D="w", G="fast", Q="qf")
        b.latch("ls", "DFF", D="qf", CK="slow", Q="qs")
        b.output("o", "qs", clock="slow")
        n = b.build()
        schedule = ClockSchedule(
            [
                ClockWaveform("fast", 50, 5, 25),
                ClockWaveform("slow", 100, 10, 60),
            ]
        )
        model = AnalysisModel(n, schedule, estimate_delays(n))
        assert len(model.instances["lf"]) == 2
        assert len(model.instances["ls"]) == 1

    def test_pads_get_fixed_instances(self, lib):
        n, s = _simple(lib)
        model = AnalysisModel(n, s, estimate_delays(n))
        (pi,) = model.instances["i"]
        (po,) = model.instances["o"]
        assert pi.kind is InstanceKind.FIXED_SOURCE
        assert po.kind is InstanceKind.FIXED_SINK

    def test_invalid_network_rejected(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.gate("g", "INV", A="floating", Z="z")
        with pytest.raises(ValidationError):
            AnalysisModel(
                b.build(),
                ClockSchedule.single("clk", 100),
                estimate_delays(b.network),
            )

    def test_reset_windows(self, lib):
        n, s = _simple(lib)
        model = AnalysisModel(n, s, estimate_delays(n))
        (latch,) = model.instances["l"]
        latch.shift_window(-10.0)
        model.reset_windows()
        assert latch.w == pytest.approx(latch.width)


class TestPorts:
    def test_launch_and_capture_ports(self, lib):
        n, s = _simple(lib)
        model = AnalysisModel(n, s, estimate_delays(n))
        all_launches = [
            p for ports in model.launch_ports.values() for p in ports
        ]
        all_captures = [
            p for ports in model.capture_ports.values() for p in ports
        ]
        launch_names = {p.instance.name for p in all_launches}
        capture_names = {p.instance.name for p in all_captures}
        assert launch_names == {"i@pad", "f@0", "l@0"}
        assert capture_names == {"f@0", "l@0", "o@pad"}

    def test_stats(self, lib):
        n, s = _simple(lib)
        model = AnalysisModel(n, s, estimate_delays(n))
        stats = model.stats()
        assert stats["generic_instances"] == 4
        assert stats["clusters"] >= 1
        assert stats["max_passes_per_cluster"] == 1

    def test_fig1_needs_two_passes(self, lib):
        network, schedule = fig1_circuit()
        model = AnalysisModel(network, schedule, estimate_delays(network))
        assert model.stats()["max_passes_per_cluster"] == 2


class TestAblationModes:
    def test_edge_latch_model_removes_freedom(self, lib):
        n, s = _simple(lib)
        model = AnalysisModel(
            n, s, estimate_delays(n), latch_model="edge"
        )
        assert model.adjustable_instances() == []
        (latch,) = model.instances["l"]
        assert latch.kind is InstanceKind.EDGE_TRIGGERED
        assert latch.assertion_edge == latch.closure_edge

    def test_per_edge_pass_strategy(self, lib):
        n, s = _simple(lib)
        minimum = AnalysisModel(n, s, estimate_delays(n))
        per_edge = AnalysisModel(
            n, s, estimate_delays(n), pass_strategy="per_edge"
        )
        edge_count = len(s.edge_times())
        for plan in per_edge.plans.values():
            assert plan.num_passes == edge_count
        assert all(p.num_passes == 1 for p in minimum.plans.values())

    def test_unknown_modes_rejected(self, lib):
        n, s = _simple(lib)
        with pytest.raises(ValueError):
            AnalysisModel(n, s, estimate_delays(n), latch_model="rigid")
        with pytest.raises(ValueError):
            AnalysisModel(n, s, estimate_delays(n), pass_strategy="all")

    def test_per_edge_same_verdict(self, lib):
        """The per-edge strategy is wasteful but must agree on verdicts."""
        from repro.core.algorithm1 import run_algorithm1
        from repro.core.slack import SlackEngine
        from repro.generators import latch_pipeline

        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[18, 2], period=22, library=lib
        )
        delays = estimate_delays(network)
        for strategy in ("minimum", "per_edge"):
            model = AnalysisModel(
                network, schedule, delays, pass_strategy=strategy
            )
            result = run_algorithm1(model, SlackEngine(model))
            if strategy == "minimum":
                reference = result.intended
            else:
                assert result.intended == reference
