"""Unit tests for ideal path constraints (Section 4's examples).

Example (a): path from the output of level-sensitive latch alpha
(synchronised by phi_a) to the data input of level-sensitive latch beta
(synchronised by phi_b): D_p is the time between a leading edge of phi_a
and the next trailing phi_b edge.

Example (b): path between two trailing-edge triggered latches: D_p is
the time between a trailing edge of phi_g and the next trailing phi_d
edge; when both are the same clock, D_p is exactly one clock period.
"""

from fractions import Fraction

import pytest

from repro.clocks import ClockSchedule, ClockWaveform
from repro.core.ideal_constraints import (
    available_time,
    control_path_constraint,
    enable_path_constraint,
    ideal_data_constraint,
    ideal_path_constraint,
    supplementary_bound,
)
from repro.core.sync_elements import GenericInstance, InstanceKind


def _latch(name, assertion, closure, width=40.0, kind=InstanceKind.TRANSPARENT):
    return GenericInstance(
        name=name,
        cell_name=name,
        kind=kind,
        assertion_edge=Fraction(assertion),
        closure_edge=Fraction(closure),
        clock_period=Fraction(100),
        width=width if kind is InstanceKind.TRANSPARENT else 0.0,
    )


class TestSection4Examples:
    def test_example_a_transparent_to_transparent(self):
        # phi_a pulses [5, 45), phi_b pulses [55, 95): D_p from phi_a's
        # leading edge (5) to the next phi_b trailing edge (95) is 90.
        alpha = _latch("alpha", assertion=5, closure=45)
        beta = _latch("beta", assertion=55, closure=95)
        assert ideal_path_constraint(alpha, beta, Fraction(100)) == 90

    def test_example_b_same_clock_ffs_one_period(self):
        gamma = _latch("g", 50, 50, kind=InstanceKind.EDGE_TRIGGERED)
        delta = _latch("d", 50, 50, kind=InstanceKind.EDGE_TRIGGERED)
        assert ideal_path_constraint(gamma, delta, Fraction(100)) == 100

    def test_example_b_different_edges(self):
        gamma = _latch("g", 50, 50, kind=InstanceKind.EDGE_TRIGGERED)
        delta = _latch("d", 80, 80, kind=InstanceKind.EDGE_TRIGGERED)
        assert ideal_path_constraint(gamma, delta, Fraction(100)) == 30

    def test_wrapping_constraint(self):
        late = _latch("late", 80, 95)
        early = _latch("early", 5, 45)
        # From late's leading edge (80) the next closure of early is at
        # 45 in the following period: 65.
        assert ideal_path_constraint(late, early, Fraction(100)) == 65

    def test_control_path_zero(self):
        assert control_path_constraint() == 0


class TestIdealDataConstraint:
    def test_in_half_open_interval(self):
        period = Fraction(100)
        for a in range(0, 100, 10):
            for c in range(0, 100, 10):
                d = ideal_data_constraint(Fraction(a), Fraction(c), period)
                assert 0 < d <= period


class TestAvailableTime:
    def test_offsets_shift_available_time(self):
        alpha = _latch("alpha", 5, 45)
        beta = _latch("beta", 55, 95)
        period = Fraction(100)
        base = available_time(alpha, beta, period)
        # Moving alpha's window earlier increases the available time.
        alpha.shift_window(-10.0)
        assert available_time(alpha, beta, period) == pytest.approx(base + 10)

    def test_missing_sides_rejected(self):
        src = GenericInstance(
            "pi@pad", "pi", InstanceKind.FIXED_SOURCE,
            Fraction(0), None, Fraction(100),
        )
        sink = GenericInstance(
            "po@pad", "po", InstanceKind.FIXED_SINK,
            None, Fraction(50), Fraction(100),
        )
        with pytest.raises(ValueError):
            ideal_path_constraint(sink, sink, Fraction(100))
        with pytest.raises(ValueError):
            ideal_path_constraint(src, src, Fraction(100))


class TestSupplementaryBound:
    def test_same_clock_bound_non_positive_when_window_matched(self):
        gamma = _latch("g", 50, 50, kind=InstanceKind.EDGE_TRIGGERED)
        delta = _latch("d", 50, 50, kind=InstanceKind.EDGE_TRIGGERED)
        # D_p = 100 = T_y, zero offsets: bound is exactly 0 (dmin > 0).
        assert supplementary_bound(gamma, delta, Fraction(100)) == pytest.approx(0.0)

    def test_fast_capture_clock_tightens_bound(self):
        gamma = _latch("g", 50, 50, kind=InstanceKind.EDGE_TRIGGERED)
        delta = _latch("d", 70, 70, kind=InstanceKind.EDGE_TRIGGERED)
        delta.clock_period = Fraction(50)
        bound = supplementary_bound(gamma, delta, Fraction(100))
        assert bound == pytest.approx(20 - 50)


class TestEnablePathConstraint:
    def test_enable_to_trailing_edge(self):
        schedule = ClockSchedule(
            [
                ClockWaveform("phi1", 100, 5, 45),
                ClockWaveform("phi2", 100, 55, 95),
            ]
        )
        src = _latch("src", 5, 45)
        d = enable_path_constraint(src, schedule, "phi2", "trailing")
        assert d == 90
        d_lead = enable_path_constraint(src, schedule, "phi2", "leading")
        assert d_lead == 50

    def test_bad_pulse_index(self):
        schedule = ClockSchedule.two_phase(100)
        src = _latch("src", 5, 45)
        with pytest.raises(ValueError):
            enable_path_constraint(src, schedule, "phi2", pulse_index=7)
