"""Unit tests for the Hummingbird facade."""

import pytest

from repro.clocks import ClockSchedule
from repro.core import Hummingbird
from repro.delay import estimate_delays

from tests.conftest import build_ff_stage


class TestAnalyze:
    def test_timing_result_fields(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        result = hb.analyze()
        assert result.intended
        assert result.worst_slack == pytest.approx(7.0)
        assert result.preprocess_seconds >= 0.0
        assert result.analysis_seconds >= 0.0
        assert result.stats["cells"] == network.num_cells

    def test_summary_and_report_strings(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        result = Hummingbird(network, schedule).analyze()
        assert "intended" in result.summary()
        assert "pre-processing" in result.summary()
        assert "No slow paths" in result.report()

    def test_slow_design_reported(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=2.0)
        result = Hummingbird(network, schedule).analyze()
        assert not result.intended
        assert result.slow_paths
        assert "slow path" in result.report()

    def test_explicit_delay_map_respected(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        delays = estimate_delays(network).with_scaled_cell("inv0", 10.0)
        hb = Hummingbird(network, schedule, delays=delays)
        slowed = hb.analyze()
        assert slowed.worst_slack < 7.0


class TestWhatIfHelpers:
    def test_with_schedule_reuses_delays(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        hb2 = hb.with_schedule(ClockSchedule.single("clk", 20))
        assert hb2.delays is hb.delays
        assert hb2.analyze().worst_slack == pytest.approx(17.0)

    def test_with_delays(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        hb2 = hb.with_delays(hb.delays.with_scaled_cell("inv0", 0.5))
        assert hb2.analyze().worst_slack > hb.analyze().worst_slack


class TestFlagging:
    def test_flag_slow_paths_sets_attrs(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=2.0)
        hb = Hummingbird(network, schedule)
        flagged = hb.flag_slow_paths()
        assert flagged >= 1
        assert network.cell("inv0").attrs.get("slow_path") is True

    def test_no_flags_on_fast_design(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=20)
        hb = Hummingbird(network, schedule)
        assert hb.flag_slow_paths() == 0


class TestTableRow:
    def test_row_shape(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        row = Hummingbird(network, schedule).table_row()
        assert row["design"] == network.name
        assert row["cells"] == network.num_cells
        assert row["intended"] is True
        assert row["preprocess_s"] >= 0.0

    def test_constraints_entry_point(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        outcome = hb.generate_constraints()
        assert outcome.constraints.ready_time("n1") is not None
