"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import pytest

from repro.cells import standard_library
from repro.clocks import ClockSchedule
from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.netlist import NetworkBuilder


@pytest.fixture(scope="session")
def lib():
    return standard_library()


@pytest.fixture
def two_phase():
    return ClockSchedule.two_phase(100)


@pytest.fixture
def single_clock():
    return ClockSchedule.single("clk", 100)


def build_ff_stage(
    lib,
    chain: int = 2,
    period: float = 100.0,
    name: str = "ff_stage",
):
    """PI -> DFF -> inverter chain -> DFF -> PO on one clock."""
    b = NetworkBuilder(lib, name=name)
    b.clock("clk")
    b.input("din", "n_in", clock="clk", edge="trailing")
    b.latch("ff_a", "DFF", D="n_in", CK="clk", Q="n0")
    current = "n0"
    for i in range(chain):
        b.gate(f"inv{i}", "INV", A=current, Z=f"n{i + 1}")
        current = f"n{i + 1}"
    b.latch("ff_b", "DFF", D=current, CK="clk", Q="n_q")
    b.output("dout", "n_q", clock="clk", edge="trailing")
    return b.build(), ClockSchedule.single("clk", period)


def analyze(network, schedule, delays=None):
    """Build a model+engine and run Algorithm 1; returns (result, model,
    engine)."""
    delays = delays if delays is not None else estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    result = run_algorithm1(model, engine)
    return result, model, engine


def brute_force_feasible(
    model: AnalysisModel,
    engine: SlackEngine,
    points: int = 13,
    margin: float = 0.0,
) -> Tuple[bool, float, Optional[Tuple[float, ...]]]:
    """Grid-search the transparency windows for a feasible offset set.

    Returns ``(feasible, best_min_slack, witness)`` where ``witness`` is
    the window vector achieving the best minimum port slack.  Uses the
    same slack engine as Algorithm 1, so the comparison isolates the
    *search* (slack transfer) from the *model*.
    """
    adjustable = model.adjustable_instances()
    grids: List[Sequence[float]] = [
        [inst.width * k / (points - 1) for k in range(points)]
        for inst in adjustable
    ]
    best = float("-inf")
    witness = None
    saved = [inst.w for inst in adjustable]
    try:
        for combo in itertools.product(*grids) if grids else [()]:
            for inst, w in zip(adjustable, combo):
                inst.w = w
            worst = engine.port_slacks().worst()
            if worst > best:
                best = worst
                witness = tuple(combo)
    finally:
        for inst, w in zip(adjustable, saved):
            inst.w = w
    return best > margin, best, witness
