"""Smoke tests: every example script must run cleanly.

Examples are documentation; a reproduction repo whose examples crash is
broken no matter what the unit tests say.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Expected key phrases per example (sanity beyond exit code 0).
EXPECTED = {
    "quickstart.py": "system behaves as intended",
    "multiphase_dsp.py": "settling times",
    "transparent_latch_model.py": "O_zd",
    "redesign_loop.py": "fast enough",
    "whatif_session.py": "worst slack",
    "des_chip.py": "Table 1 row",
    "bus_and_gating.py": "enable path",
    "synthesis_flow.py": "dynamic validation",
}


def test_every_example_has_expectations():
    names = {path.name for path in EXAMPLES}
    assert names == set(EXPECTED), (
        "examples/ and EXPECTED out of sync: "
        f"{names.symmetric_difference(set(EXPECTED))}"
    )


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.name for path in EXAMPLES]
)
def test_example_runs(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=str(EXAMPLES_DIR.parent),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    phrase = EXPECTED[example.name]
    assert phrase in completed.stdout, (
        f"{example.name} output lacks {phrase!r}:\n"
        f"{completed.stdout[-1500:]}"
    )
