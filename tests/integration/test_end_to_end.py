"""End-to-end integration tests across the whole stack."""

import math

import pytest

from repro import (
    ClockSchedule,
    Hummingbird,
    check_min_delays,
    estimate_delays,
    find_max_frequency,
    run_redesign_loop,
)
from repro.baselines import settling_comparison
from repro.generators import (
    fig1_circuit,
    generate_alu,
    generate_des,
    generate_sm1f,
    generate_sm1h,
    random_design,
)
from repro.interactive import WhatIfSession


class TestTable1Designs:
    """The four Table 1 designs analyse cleanly end to end."""

    @pytest.mark.parametrize(
        "generator", [generate_sm1f, generate_sm1h, generate_alu]
    )
    def test_analyses_complete(self, generator):
        network, schedule = generator()
        result = Hummingbird(network, schedule).analyze()
        assert result.analysis_seconds < 30.0
        assert math.isfinite(result.worst_slack)

    def test_des_full_flow(self):
        network, schedule = generate_des()
        hb = Hummingbird(network, schedule)
        result = hb.analyze()
        assert result.intended
        # Constraint generation over the full chip.
        constraints = hb.generate_constraints().constraints
        assert constraints.ready_time("r0_kx0") is not None
        # Min-delay extension runs over the full chip.
        violations = check_min_delays(hb.model, hb.engine)
        assert isinstance(violations, list)

    def test_hierarchy_speed_advantage(self):
        """SM1H (one module) must preprocess+analyse faster than SM1F
        (flat), as in Table 1 -- measured loosely to avoid flakiness."""
        flat, schedule = generate_sm1f(n_gates=1200)
        hier, __ = generate_sm1h(n_gates=1200)
        hb_flat = Hummingbird(flat, schedule)
        hb_hier = Hummingbird(hier, schedule)
        t_flat = hb_flat.analyze()
        t_hier = hb_hier.analyze()
        # The hierarchical analysis touches far fewer components.
        assert hb_hier.model.stats()["combinational"] < hb_flat.model.stats()[
            "combinational"
        ]
        assert t_hier.analysis_seconds <= t_flat.analysis_seconds * 2


class TestMultiFrequency:
    def test_harmonic_clocks_full_flow(self, lib):
        from repro.clocks import ClockWaveform
        from repro.netlist import NetworkBuilder

        b = NetworkBuilder(lib)
        b.clock("fast")
        b.clock("slow")
        b.input("i", "w", clock="slow")
        b.latch("ls", "DFF", D="w", CK="slow", Q="qs")
        b.gate("g1", "INV", A="qs", Z="z1")
        b.latch("lf", "DLATCH", D="z1", G="fast", Q="qf")
        b.gate("g2", "INV", A="qf", Z="z2")
        b.latch("lo", "DFF", D="z2", CK="slow", Q="qo")
        b.output("o", "qo", clock="slow")
        network = b.build()
        schedule = ClockSchedule(
            [
                ClockWaveform("fast", 25, 2, 12),
                ClockWaveform("slow", 100, 10, 60),
            ]
        )
        hb = Hummingbird(network, schedule)
        result = hb.analyze()
        assert len(hb.model.instances["lf"]) == 4
        assert math.isfinite(result.worst_slack)

    def test_fig1_end_to_end(self):
        network, schedule = fig1_circuit()
        hb = Hummingbird(network, schedule)
        result = hb.analyze()
        assert result.intended
        comparison = settling_comparison(network, schedule, hb.delays)
        assert comparison.minimum_settlings < comparison.per_edge_settlings


class TestClosedLoopFlows:
    def test_frequency_search_then_redesign(self):
        network, schedule = random_design(
            seed=11, n_banks=3, gates_per_bank=30, bits=4, style="latch"
        )
        delays = estimate_delays(network)
        search = find_max_frequency(network, schedule, delays)
        assert search.min_period is not None
        # Push 10% past the limit, then ask the redesign loop to fix it.
        too_fast = search.schedule.scaled("0.9")
        loop = run_redesign_loop(network, too_fast, delays, max_rounds=200)
        assert loop.success
        assert loop.area_cost > 0

    def test_whatif_session_full_cycle(self):
        network, schedule = random_design(
            seed=13, n_banks=2, gates_per_bank=25, bits=4, style="ff"
        )
        session = WhatIfSession(network, schedule)
        base = session.analyze().worst_slack
        session.scale_clocks("1/2")
        session.scale_cell_delay(network.combinational_cells[0].name, 2.0)
        assert session.analyze().worst_slack < base
        session.undo()
        session.undo()
        assert session.analyze().worst_slack == pytest.approx(base)


class TestPersistenceIntegration:
    def test_des_roundtrip_same_analysis(self, tmp_path, lib):
        from repro import load_network, save_network

        network, schedule = generate_sm1f()
        path = tmp_path / "sm1f.json"
        save_network(network, path)
        loaded = load_network(path, lib)
        a = Hummingbird(network, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)
