"""Tests for the three baseline analysers."""

import math

import pytest

from repro.baselines import (
    enumerate_port_slacks,
    mcwilliams_analysis,
    per_edge_analysis,
    settling_comparison,
)
from repro.baselines.mcwilliams import mcwilliams_max_frequency
from repro.baselines.path_enumeration import PathExplosionError
from repro.core.algorithm1 import run_algorithm1
from repro.core.frequency import find_max_frequency
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import fig1_circuit, latch_pipeline, random_design

from tests.conftest import build_ff_stage


class TestPathEnumeration:
    def _compare(self, network, schedule):
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        block = run_algorithm1(model, engine).slacks
        enumerated = enumerate_port_slacks(model, engine)
        for name, value in block.capture.items():
            other = enumerated.slacks.capture[name]
            if math.isinf(value):
                assert math.isinf(other)
            else:
                assert other == pytest.approx(value), name
        return enumerated

    def test_matches_block_on_ff_stage(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        result = self._compare(network, schedule)
        assert result.paths_walked > 0

    def test_matches_block_on_latch_pipeline(self, lib):
        network, schedule = latch_pipeline(
            stages=3, stage_lengths=[6, 3, 6], period=40, library=lib
        )
        self._compare(network, schedule)

    def test_matches_block_on_random_design(self, lib):
        network, schedule = random_design(
            seed=7, n_banks=2, gates_per_bank=12, bits=3, style="latch"
        )
        self._compare(network, schedule)

    def test_matches_block_on_fig1(self, lib):
        network, schedule = fig1_circuit()
        self._compare(network, schedule)

    def test_explosion_guard(self, lib):
        network, schedule = random_design(
            seed=3, n_banks=1, gates_per_bank=60, bits=6, style="ff"
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        with pytest.raises(PathExplosionError):
            enumerate_port_slacks(model, engine, max_paths=10)

    def test_path_count_grows_with_reconvergence(self, lib):
        """Reconvergent fanout multiplies path counts but not block-method
        work -- the Section 7 argument for the block method."""
        from repro.netlist import NetworkBuilder
        from repro.clocks import ClockSchedule

        def diamond_chain(depth):
            b = NetworkBuilder(lib)
            b.clock("clk")
            b.input("i", "w", clock="clk")
            b.latch("fa", "DFF", D="w", CK="clk", Q="n0")
            for k in range(depth):
                b.gate(f"u{k}", "INV", A=f"n{k}", Z=f"a{k}")
                b.gate(f"v{k}", "INV", A=f"n{k}", Z=f"b{k}")
                b.gate(f"j{k}", "NAND2", A=f"a{k}", B=f"b{k}", Z=f"n{k + 1}")
            b.latch("fb", "DFF", D=f"n{depth}", CK="clk", Q="q")
            b.output("o", "q", clock="clk")
            return b.build(), ClockSchedule.single("clk", 1000)

        counts = []
        for depth in (2, 4, 6):
            network, schedule = diamond_chain(depth)
            delays = estimate_delays(network)
            model = AnalysisModel(network, schedule, delays)
            engine = SlackEngine(model)
            run_algorithm1(model, engine)
            counts.append(
                enumerate_port_slacks(model, engine).paths_walked
            )
        assert counts[1] > 3 * counts[0]
        assert counts[2] > 3 * counts[1]


class TestMcWilliams:
    def test_pessimistic_on_borrowing_design(self, lib):
        """A design that needs cycle borrowing passes under Hummingbird
        but fails under the edge-triggered approximation.

        The long stage sits *after* the first latch: a transparent latch
        launches it near the leading edge of phi1 (~20ns budget), while
        the edge-triggered approximation forces the launch to the
        trailing edge (~11ns budget), which a ~12ns stage cannot meet."""
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[2, 24], period=24, library=lib
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        ours = run_algorithm1(model, SlackEngine(model))
        theirs, __ = mcwilliams_analysis(network, schedule, delays)
        assert ours.intended
        assert not theirs.intended

    def test_agrees_on_edge_triggered_designs(self, lib):
        """With no transparent latches the two models coincide."""
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        ours = run_algorithm1(model, SlackEngine(model))
        theirs, __ = mcwilliams_analysis(network, schedule, delays)
        assert ours.intended == theirs.intended
        assert ours.worst_slack == pytest.approx(theirs.worst_slack)

    def test_max_frequency_underestimated(self, lib):
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[2, 20], period=100, library=lib
        )
        delays = estimate_delays(network)
        ours = find_max_frequency(network, schedule, delays)
        theirs = mcwilliams_max_frequency(network, schedule, delays)
        assert theirs.min_period > ours.min_period


class TestPerEdge:
    def test_same_verdict_more_work(self, lib):
        network, schedule = fig1_circuit()
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        ours = run_algorithm1(model, SlackEngine(model))
        theirs, per_edge_model = per_edge_analysis(network, schedule, delays)
        assert ours.intended == theirs.intended
        assert sum(
            p.num_passes for p in per_edge_model.plans.values()
        ) > sum(p.num_passes for p in model.plans.values())

    def test_settling_comparison_shows_reduction(self, lib):
        network, schedule = fig1_circuit()
        delays = estimate_delays(network)
        comparison = settling_comparison(network, schedule, delays)
        assert comparison.clock_edge_times == 8
        assert comparison.minimum_settlings < comparison.per_edge_settlings
        assert comparison.pass_reduction < 1.0

    def test_two_phase_single_settling_claim(self, lib):
        """"Even when combinational logic inputs come from latches
        controlled by two or three different clock phases, a single
        settling time is often sufficient" -- for a standard two-phase
        pipeline every cluster needs exactly one pass."""
        network, schedule = latch_pipeline(
            stages=4, chain_length=3, period=60, library=lib
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        assert all(p.num_passes == 1 for p in model.plans.values())
