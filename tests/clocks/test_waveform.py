"""Unit tests for ClockWaveform."""

from fractions import Fraction

import pytest

from repro.clocks import ClockWaveform, as_time


class TestAsTime:
    def test_int_exact(self):
        assert as_time(25) == Fraction(25)

    def test_float_snaps_to_decimal(self):
        assert as_time(0.1) == Fraction(1, 10)

    def test_string(self):
        assert as_time("12.5") == Fraction(25, 2)

    def test_fraction_passthrough(self):
        f = Fraction(7, 3)
        assert as_time(f) is f

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_time([1])


class TestClockWaveform:
    def test_basic_construction(self):
        w = ClockWaveform("phi", 100, 10, 60)
        assert w.period == 100
        assert w.leading == 10
        assert w.trailing == 60
        assert w.width == 50

    def test_trailing_may_wrap(self):
        w = ClockWaveform("phi", 100, 80, 20)
        assert w.trailing == 120
        assert w.width == 40
        assert w.trailing_mod() == 20

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            ClockWaveform("phi", 0, 0, 1)

    def test_rejects_leading_outside_period(self):
        with pytest.raises(ValueError):
            ClockWaveform("phi", 100, 100, 120)

    def test_rejects_full_period_pulse(self):
        with pytest.raises(ValueError):
            ClockWaveform("phi", 100, 0, 100)

    def test_is_high_inside_pulse(self):
        w = ClockWaveform("phi", 100, 10, 60)
        assert w.is_high(10)
        assert w.is_high(59)
        assert not w.is_high(60)
        assert not w.is_high(5)

    def test_is_high_periodicity(self):
        w = ClockWaveform("phi", 100, 10, 60)
        assert w.is_high(110)
        assert not w.is_high(170)

    def test_is_high_wrapping_pulse(self):
        w = ClockWaveform("phi", 100, 80, 20)
        assert w.is_high(90)
        assert w.is_high(10)
        assert not w.is_high(50)

    def test_shifted_moves_both_edges(self):
        w = ClockWaveform("phi", 100, 10, 60).shifted(15)
        assert w.leading == 25
        assert w.trailing == 75
        assert w.width == 50

    def test_shifted_wraps(self):
        w = ClockWaveform("phi", 100, 50, 90).shifted(60)
        assert w.leading == 10
        assert w.width == 40

    def test_with_width(self):
        w = ClockWaveform("phi", 100, 10, 60).with_width(20)
        assert w.leading == 10
        assert w.trailing == 30

    def test_exact_decimal_arithmetic(self):
        w = ClockWaveform("phi", 0.3, 0.1, 0.2)
        assert w.width == Fraction(1, 10)
