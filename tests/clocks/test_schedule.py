"""Unit tests for ClockSchedule."""

from fractions import Fraction

import pytest

from repro.clocks import ClockSchedule, ClockWaveform, EdgeKind


class TestOverallPeriod:
    def test_single_clock(self):
        s = ClockSchedule.single("clk", 100)
        assert s.overall_period == 100

    def test_harmonic_lcm(self):
        s = ClockSchedule(
            [
                ClockWaveform("fast", 50, 0, 20),
                ClockWaveform("slow", 100, 0, 40),
            ]
        )
        assert s.overall_period == 100
        assert s.multiplier("fast") == 2
        assert s.multiplier("slow") == 1

    def test_fractional_periods(self):
        s = ClockSchedule(
            [
                ClockWaveform("a", Fraction(1, 3), 0, Fraction(1, 6)),
                ClockWaveform("b", Fraction(1, 2), 0, Fraction(1, 4)),
            ]
        )
        assert s.overall_period == 1
        assert s.multiplier("a") == 3
        assert s.multiplier("b") == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClockSchedule([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ClockSchedule(
                [
                    ClockWaveform("x", 100, 0, 50),
                    ClockWaveform("x", 100, 10, 60),
                ]
            )


class TestPulsesAndEdges:
    def test_fast_clock_expands_to_multiple_pulses(self):
        s = ClockSchedule(
            [
                ClockWaveform("fast", 50, 5, 25),
                ClockWaveform("slow", 100, 0, 40),
            ]
        )
        pulses = s.pulses("fast")
        assert len(pulses) == 2
        assert pulses[0].leading.time == 5
        assert pulses[1].leading.time == 55
        assert all(p.width == 20 for p in pulses)

    def test_all_edges_sorted(self):
        s = ClockSchedule.two_phase(100)
        times = [e.time for e in s.all_edges()]
        assert times == sorted(times)
        assert len(times) == 4

    def test_edge_kinds(self):
        s = ClockSchedule.single("clk", 100, leading=0, trailing=50)
        edges = s.all_edges()
        assert edges[0].kind is EdgeKind.LEADING
        assert edges[1].kind is EdgeKind.TRAILING

    def test_edge_times_dedup_coincident(self):
        s = ClockSchedule(
            [
                ClockWaveform("a", 100, 0, 50),
                ClockWaveform("b", 100, 50, 90),
            ]
        )
        # a's trailing coincides with b's leading.
        assert len(s.all_edges()) == 4
        assert len(s.edge_times()) == 3

    def test_wrapping_pulse_edge_normalised(self):
        s = ClockSchedule([ClockWaveform("w", 100, 80, 20)])
        pulse = s.pulses("w")[0]
        assert pulse.leading.time == 80
        assert pulse.trailing.time == 20
        assert pulse.width == 40


class TestTwoPhaseFactory:
    def test_non_overlapping(self):
        s = ClockSchedule.two_phase(100)
        phi1 = s.waveform("phi1")
        phi2 = s.waveform("phi2")
        assert phi1.trailing < phi2.leading
        assert phi2.trailing < phi1.leading + 100

    def test_custom_width(self):
        s = ClockSchedule.two_phase(100, width=30)
        assert s.waveform("phi1").width == 30

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            ClockSchedule.two_phase(100, width=50)


class TestWhatIfOps:
    def test_scaled_preserves_structure(self):
        s = ClockSchedule.two_phase(100).scaled(Fraction(1, 2))
        assert s.overall_period == 50
        assert s.waveform("phi1").width == 20

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ClockSchedule.two_phase(100).scaled(0)

    def test_with_pulse_width(self):
        s = ClockSchedule.two_phase(100).with_pulse_width("phi1", 10)
        assert s.waveform("phi1").width == 10
        assert s.waveform("phi2").width == 40

    def test_with_shifted_clock(self):
        s = ClockSchedule.two_phase(100).with_shifted_clock("phi2", 3)
        assert s.waveform("phi2").leading == 58

    def test_replace_unknown_clock_raises(self):
        s = ClockSchedule.two_phase(100)
        with pytest.raises(KeyError):
            s.replace(ClockWaveform("nope", 100, 0, 50))

    def test_immutability(self):
        s = ClockSchedule.two_phase(100)
        s.scaled(2)
        assert s.overall_period == 100

    def test_describe_mentions_clocks(self):
        text = ClockSchedule.two_phase(100).describe()
        assert "phi1" in text and "phi2" in text
