"""Tests for the ring-buffer metrics history (repro.obs.tsdb)."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.tsdb import HISTORY_SCHEMA, MetricsHistory


@pytest.fixture(autouse=True)
def _no_leak():
    assert obs.active() is None
    yield
    assert obs.active() is None


class TestRecord:
    def test_point_shape(self):
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            obs.counter("alg1.runs", 3)
            obs.gauge("service.daemon.in_flight", 2)
            obs.histogram("service.daemon.request_seconds", 0.01)
            obs.histogram("service.daemon.request_seconds", 0.03)
            point = history.record(rec)
        assert point["counters"]["alg1.runs"] == 3
        assert point["gauges"]["service.daemon.in_flight"] == 2
        hist = point["histograms"]["service.daemon.request_seconds"]
        assert hist["count"] == 2
        assert hist["p50"] > 0 and hist["p95"] >= hist["p50"]
        assert point["ts"] <= time.time()
        assert len(history) == 1

    def test_capacity_evicts_oldest(self):
        history = MetricsHistory(capacity=3)
        with obs.recording() as rec:
            for index in range(5):
                obs.counter("ticks")
                history.record(rec)
        assert len(history) == 3
        assert history.snapshots == 5
        counts = history.series("ticks")
        assert counts == [3.0, 4.0, 5.0]  # oldest evicted first

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MetricsHistory(capacity=0)
        with pytest.raises(ValueError):
            MetricsHistory(interval_s=0)


class TestSeries:
    def _filled(self):
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            obs.counter("c", 1)
            obs.gauge("g", 7.5)
            obs.histogram("lat", 0.02)
            history.record(rec)
            obs.counter("c", 2)
            obs.histogram("lat", 0.04)
            history.record(rec)
        return history

    def test_counter_gauge_and_histogram_lookup(self):
        history = self._filled()
        assert history.series("c") == [1.0, 3.0]
        assert history.series("g") == [7.5, 7.5]
        p50 = history.series("lat.p50")
        assert len(p50) == 2 and all(v > 0 for v in p50)
        assert history.series("lat.count") == [1.0, 2.0]

    def test_missing_metric_fills_zero(self):
        history = self._filled()
        assert history.series("nope") == [0.0, 0.0]
        assert history.series("lat.p99") == [0.0, 0.0]

    def test_last_window(self):
        history = self._filled()
        assert history.series("c", last=1) == [3.0]
        assert history.points(last=0) == []


class TestDocument:
    def test_to_dict_schema(self):
        history = MetricsHistory(capacity=4, interval_s=1.5)
        with obs.recording() as rec:
            obs.counter("c")
            history.record(rec)
        doc = history.to_dict()
        assert doc["schema"] == HISTORY_SCHEMA
        assert doc["interval_s"] == 1.5
        assert doc["capacity"] == 4
        assert doc["snapshots"] == 1
        assert len(doc["points"]) == 1

    def test_to_dict_last(self):
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            for __ in range(4):
                history.record(rec)
        assert len(history.to_dict(last=2)["points"]) == 2


class TestBackgroundThread:
    def test_start_records_boot_point_and_stop_joins(self):
        history = MetricsHistory(capacity=8, interval_s=30.0)
        with obs.recording() as rec:
            obs.counter("boot", 1)
            history.start(rec)
            try:
                deadline = time.time() + 5.0
                while not len(history) and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                history.stop()
        # The boot point lands immediately -- no 30 s wait.
        assert len(history) >= 1
        assert history.series("boot")[0] == 1.0
        assert not history.running

    def test_double_start_rejected(self):
        history = MetricsHistory(capacity=2, interval_s=30.0)
        with obs.recording() as rec:
            history.start(rec)
            try:
                with pytest.raises(RuntimeError):
                    history.start(rec)
            finally:
                history.stop()

    def test_periodic_snapshots(self):
        history = MetricsHistory(capacity=16, interval_s=0.02)
        with obs.recording() as rec:
            history.start(rec)
            try:
                deadline = time.time() + 5.0
                while len(history) < 3 and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                history.stop()
        assert len(history) >= 3
