"""Tests for the ring-buffer metrics history (repro.obs.tsdb)."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs.tsdb import HISTORY_SCHEMA, MetricsHistory, resolve_metric


@pytest.fixture(autouse=True)
def _no_leak():
    assert obs.active() is None
    yield
    assert obs.active() is None


class TestRecord:
    def test_point_shape(self):
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            obs.counter("alg1.runs", 3)
            obs.gauge("service.daemon.in_flight", 2)
            obs.histogram("service.daemon.request_seconds", 0.01)
            obs.histogram("service.daemon.request_seconds", 0.03)
            point = history.record(rec)
        assert point["counters"]["alg1.runs"] == 3
        assert point["gauges"]["service.daemon.in_flight"] == 2
        hist = point["histograms"]["service.daemon.request_seconds"]
        assert hist["count"] == 2
        assert hist["p50"] > 0 and hist["p95"] >= hist["p50"]
        # Monotonic-anchored, but still wall-clock-shaped (close to
        # time.time() when nobody steps the wall clock).
        assert abs(point["ts"] - time.time()) < 1.0
        assert len(history) == 1

    def test_timestamps_immune_to_wall_clock_steps(self, monkeypatch):
        """A wall-clock step (NTP) between points must not corrupt the
        ts axis rate-deltas divide by -- the counter-reset analogue for
        time itself."""
        import repro.obs.tsdb as tsdb_mod

        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            obs.counter("ticks")
            first = history.record(rec)
            # Step the wall clock an hour *backwards*.  The anchored
            # timestamp keeps advancing off the monotonic clock.
            real_time = time.time
            monkeypatch.setattr(
                tsdb_mod.time, "time", lambda: real_time() - 3600.0
            )
            obs.counter("ticks")
            second = history.record(rec)
        assert second["ts"] >= first["ts"]
        assert second["ts"] - first["ts"] < 10.0  # and by a sane amount

    def test_capacity_evicts_oldest(self):
        history = MetricsHistory(capacity=3)
        with obs.recording() as rec:
            for index in range(5):
                obs.counter("ticks")
                history.record(rec)
        assert len(history) == 3
        assert history.snapshots == 5
        counts = history.series("ticks")
        assert counts == [3.0, 4.0, 5.0]  # oldest evicted first

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MetricsHistory(capacity=0)
        with pytest.raises(ValueError):
            MetricsHistory(interval_s=0)


class TestSeries:
    def _filled(self):
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            obs.counter("c", 1)
            obs.gauge("g", 7.5)
            obs.histogram("lat", 0.02)
            history.record(rec)
            obs.counter("c", 2)
            obs.histogram("lat", 0.04)
            history.record(rec)
        return history

    def test_counter_gauge_and_histogram_lookup(self):
        history = self._filled()
        assert history.series("c") == [1.0, 3.0]
        assert history.series("g") == [7.5, 7.5]
        p50 = history.series("lat.p50")
        assert len(p50) == 2 and all(v > 0 for v in p50)
        assert history.series("lat.count") == [1.0, 2.0]

    def test_missing_metric_fills_zero(self):
        history = self._filled()
        assert history.series("nope") == [0.0, 0.0]
        assert history.series("lat.p99") == [0.0, 0.0]

    def test_last_window(self):
        history = self._filled()
        assert history.series("c", last=1) == [3.0]
        assert history.points(last=0) == []


class TestDocument:
    def test_to_dict_schema(self):
        history = MetricsHistory(capacity=4, interval_s=1.5)
        with obs.recording() as rec:
            obs.counter("c")
            history.record(rec)
        doc = history.to_dict()
        assert doc["schema"] == HISTORY_SCHEMA
        assert doc["interval_s"] == 1.5
        assert doc["capacity"] == 4
        assert doc["snapshots"] == 1
        assert len(doc["points"]) == 1

    def test_to_dict_last(self):
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            for __ in range(4):
                history.record(rec)
        assert len(history.to_dict(last=2)["points"]) == 2


class TestBackgroundThread:
    def test_start_records_boot_point_and_stop_joins(self):
        history = MetricsHistory(capacity=8, interval_s=30.0)
        with obs.recording() as rec:
            obs.counter("boot", 1)
            history.start(rec)
            try:
                deadline = time.time() + 5.0
                while not len(history) and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                history.stop()
        # The boot point lands immediately -- no 30 s wait.
        assert len(history) >= 1
        assert history.series("boot")[0] == 1.0
        assert not history.running

    def test_double_start_rejected(self):
        history = MetricsHistory(capacity=2, interval_s=30.0)
        with obs.recording() as rec:
            history.start(rec)
            try:
                with pytest.raises(RuntimeError):
                    history.start(rec)
            finally:
                history.stop()

    def test_periodic_snapshots(self):
        history = MetricsHistory(capacity=16, interval_s=0.02)
        with obs.recording() as rec:
            history.start(rec)
            try:
                deadline = time.time() + 5.0
                while len(history) < 3 and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                history.stop()
        assert len(history) >= 3


class TestSeriesEdgeCases:
    """PR 7 satellite: the edge cases alerting leans on."""

    def test_empty_window(self):
        history = MetricsHistory(capacity=4)
        # No points at all: every series is empty, not an error.
        assert history.series("anything") == []
        with obs.recording() as rec:
            obs.counter("c", 1)
            history.record(rec)
        # An explicit zero-point window is empty too.
        assert history.series("c", last=0) == []

    def test_counter_reset_keeps_raw_values(self):
        # A daemon restart resets counters; the history stores raw
        # values (consumers -- rate sparklines, burn-rate rules --
        # clamp deltas at zero themselves).
        history = MetricsHistory(capacity=4)
        with obs.recording() as rec:
            obs.counter("requests", 5)
            history.record(rec)
        with obs.recording() as rec:  # fresh recorder = reset counter
            obs.counter("requests", 2)
            history.record(rec)
        assert history.series("requests") == [5.0, 2.0]

    def test_histogram_quantile_never_observed(self):
        history = MetricsHistory(capacity=4)
        with obs.recording() as rec:
            obs.histogram("lat", 0.02)
            history.record(rec)
        # Only p50/p95/count are retained per point; an unexported
        # quantile fills 0.0 in series() but is *absent* (None) to
        # resolve_metric -- the distinction absence rules rely on.
        assert history.series("lat.p99") == [0.0]
        assert resolve_metric(history.points()[0], "lat.p99") is None
        # A histogram that never observed at all behaves the same.
        assert history.series("cold.p95") == [0.0]
        assert resolve_metric(history.points()[0], "cold.p95") is None


class TestResolveMetric:
    def test_counter_wins_then_gauge_then_histogram(self):
        point = {
            "counters": {"x": 1.0},
            "gauges": {"x": 2.0, "g": 7.0},
            "histograms": {"lat": {"p50": 0.01, "p95": 0.02, "count": 3}},
        }
        assert resolve_metric(point, "x") == 1.0
        assert resolve_metric(point, "g") == 7.0
        assert resolve_metric(point, "lat.p95") == 0.02
        assert resolve_metric(point, "lat.count") == 3.0
        assert resolve_metric(point, "lat.p99") is None
        assert resolve_metric(point, "nope") is None
        assert resolve_metric({}, "nope") is None


class TestStartHooks:
    def test_before_and_on_point_hooks_run(self):
        history = MetricsHistory(capacity=8, interval_s=30.0)
        seen = []
        with obs.recording() as rec:

            def before():
                obs.gauge("hooked", 42.0)

            history.start(rec, before_point=before, on_point=seen.append)
            try:
                deadline = time.time() + 5.0
                while not seen and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                history.stop()
        assert seen and seen[0]["gauges"]["hooked"] == 42.0
        # The boot point already carried the before_point gauge.
        assert history.series("hooked")[0] == 42.0

    def test_hook_exceptions_do_not_kill_the_loop(self):
        history = MetricsHistory(capacity=8, interval_s=0.01)
        with obs.recording() as rec:

            def boom():
                raise RuntimeError("hook failure")

            history.start(rec, before_point=boom, on_point=lambda p: 1 / 0)
            try:
                deadline = time.time() + 5.0
                while len(history) < 2 and time.time() < deadline:
                    time.sleep(0.01)
            finally:
                history.stop()
        assert len(history) >= 2
