"""Instrumentation coverage of the analysis pipeline itself.

Checks that running the real analyses under a recorder publishes the
advertised metric names, and that the Section 8 iteration-bound claim
("the number of complete transfer cycles is bounded by the number of
synchronising elements in a path plus one") is observable as a metric.
"""

import pytest

from repro import Hummingbird, obs
from repro.core.algorithm1 import run_algorithm1
from repro.core.incremental import IncrementalAnalyzer
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators import latch_pipeline

from tests.conftest import build_ff_stage


class TestAnalyzerSpans:
    def test_analyze_records_phase_spans(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        with obs.recording() as rec:
            Hummingbird(network, schedule).analyze()
        names = {record.name for record in rec.spans}
        assert "analyzer.preprocess" in names
        assert "analyzer.estimate_delays" in names
        assert "analyzer.build_model" in names
        assert "analyzer.analysis" in names
        assert "delay.estimate" in names

    def test_phase_gauges_published(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        with obs.recording() as rec:
            Hummingbird(network, schedule)
        assert rec.gauges["model.clusters"] >= 1
        assert rec.gauges["model.total_passes"] >= 1

    def test_result_stats_carry_iteration_counts(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        result = Hummingbird(network, schedule).analyze()
        assert "algorithm1_iterations" in result.stats
        assert result.stats["algorithm1_iterations"] == (
            result.algorithm1.iterations.total
        )

    def test_phase_seconds_are_wall_clock(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        result = Hummingbird(network, schedule).analyze()
        assert result.preprocess_seconds >= 0.0
        assert result.analysis_seconds >= 0.0

    def test_counters_match_result_iterations(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        with obs.recording() as rec:
            result = Hummingbird(network, schedule).analyze()
        counts = result.algorithm1.iterations
        assert rec.counters.get("alg1.runs") == 1
        assert rec.counters.get("alg1.forward_cycles", 0) == counts.forward
        assert rec.counters.get("alg1.backward_cycles", 0) == counts.backward


class TestSection8IterationBound:
    def test_latch_pipeline_respects_bound(self):
        """Complete-transfer cycle counts stay within the paper's
        sync-elements-per-path + 1 bound on a borrowing latch pipeline."""
        network, schedule = latch_pipeline(
            stages=6, stage_lengths=[12, 1, 1, 1, 1, 1], period=12.0
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        with obs.recording() as rec:
            result = run_algorithm1(model, SlackEngine(model))
        assert result.intended
        bound = len(network.synchronisers) + 1
        assert 1 <= result.iterations.forward <= bound
        assert result.iterations.backward <= bound
        # The bound is observable from the metrics dump alone.
        data = obs.metrics_dict(rec)
        assert 1 <= data["counters"]["alg1.forward_cycles"] <= bound
        assert data["counters"]["alg1.iterations_total"] == (
            result.iterations.total
        )

    def test_slack_transfer_counters_nonzero_when_borrowing(self):
        network, schedule = latch_pipeline(
            stages=6, stage_lengths=[12, 1, 1, 1, 1, 1], period=12.0
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        with obs.recording() as rec:
            run_algorithm1(model, SlackEngine(model))
        assert rec.counters["transfer.complete_forward.sweeps"] >= 1
        assert rec.counters["transfer.complete_forward.moved"] > 0
        assert rec.counters["slack.evaluations"] >= 1
        assert rec.counters["slack.cluster_passes"] >= 1
        assert rec.counters["slack.nodes_visited"] >= 1


class TestIncrementalCounters:
    def test_warm_hit_and_cold_start_accounting(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        with obs.recording() as rec:
            inc = IncrementalAnalyzer(network, schedule)
            inc.analyze()  # first run: cold
            inc.analyze(warm=True)  # warm hit
            inc.analyze(warm=False)  # forced cold
        assert rec.counters["incremental.cold_starts"] == 2
        assert rec.counters["incremental.warm_hits"] == 1

    def test_swap_and_rebuild_counters(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        with obs.recording() as rec:
            inc = IncrementalAnalyzer(network, schedule)
            inc.analyze()
            inc.scale_cell("inv1", 0.9)  # data-path cell: swap
        assert rec.counters.get("incremental.swaps", 0) == 1
        assert inc.swaps == 1


class TestBreakopenCounters:
    def test_pass_selection_stats(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        with obs.recording() as rec:
            Hummingbird(network, schedule)
        assert rec.counters["breakopen.searches"] >= 1
        assert rec.counters["breakopen.passes_selected"] >= 1


class TestDisabledPipeline:
    def test_analysis_unaffected_when_disabled(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        assert obs.active() is None
        result = Hummingbird(network, schedule).analyze()
        assert result.intended
        assert obs.active() is None


class TestInfWorstSlackFormatting:
    def test_summary_prints_na_for_unconstrained_design(self, lib):
        import math

        from repro.core.algorithm1 import Algorithm1Result
        from repro.core.analyzer import TimingResult
        from repro.core.slack import PortSlacks

        result = TimingResult(
            algorithm1=Algorithm1Result(True, PortSlacks()),
            slow_paths=[],
            preprocess_seconds=0.0,
            analysis_seconds=0.0,
        )
        assert math.isinf(result.worst_slack)
        text = result.summary()
        assert "n/a" in text
        assert "inf" not in text

    def test_statistics_format_prints_na(self):
        from repro.core.statistics import _fmt

        assert _fmt(float("inf")) == "n/a"
        assert _fmt(-1.25) == "-1.250"
