"""Tests for the Chrome-trace, metrics and Prometheus exporters."""

import json

from repro import obs
from repro.obs.metrics import WELL_KNOWN_COUNTERS


def _sample_recorder() -> obs.Recorder:
    with obs.recording() as rec:
        with obs.span("outer", category="test"):
            with obs.span("inner", category="test", cluster="c0"):
                pass
        obs.counter("alg1.forward_cycles", 3)
        obs.gauge("model.clusters", 2)
        obs.event("milestone", round=1)
    return rec


class TestChromeTrace:
    def test_schema_valid(self):
        rec = _sample_recorder()
        data = obs.to_chrome_trace(rec)
        assert obs.validate_chrome_trace(data) == []

    def test_round_trips_through_json(self, tmp_path):
        rec = _sample_recorder()
        path = obs.write_chrome_trace(rec, tmp_path / "t.trace.json")
        loaded = json.loads(path.read_text())
        assert obs.validate_chrome_trace(loaded) == []
        names = {e["name"] for e in loaded["traceEvents"]}
        assert {"outer", "inner", "milestone"} <= names

    def test_complete_events_have_microsecond_fields(self):
        rec = _sample_recorder()
        events = obs.to_chrome_trace(rec)["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for entry in complete:
            assert entry["ts"] >= 0
            assert entry["dur"] >= 0
            assert isinstance(entry["pid"], int)
            assert isinstance(entry["tid"], int)

    def test_span_args_exported(self):
        rec = _sample_recorder()
        events = obs.to_chrome_trace(rec)["traceEvents"]
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["args"] == {"cluster": "c0"}

    def test_counters_exported_as_counter_samples(self):
        rec = _sample_recorder()
        events = obs.to_chrome_trace(rec)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "alg1.forward_cycles" for e in counters)

    def test_validator_flags_garbage(self):
        assert obs.validate_chrome_trace([]) != []
        assert obs.validate_chrome_trace({"traceEvents": "nope"}) != []
        bad = {"traceEvents": [{"ph": "X", "name": 3, "ts": -1}]}
        assert len(obs.validate_chrome_trace(bad)) >= 2


class TestMetrics:
    def test_well_known_counters_zero_filled(self):
        with obs.recording() as rec:
            pass
        data = obs.metrics_dict(rec)
        for name in WELL_KNOWN_COUNTERS:
            assert data["counters"][name] == 0.0

    def test_recorded_values_override_zero_fill(self):
        rec = _sample_recorder()
        data = obs.metrics_dict(rec)
        assert data["counters"]["alg1.forward_cycles"] == 3.0
        assert data["gauges"]["model.clusters"] == 2.0

    def test_span_aggregates_present(self):
        rec = _sample_recorder()
        spans = obs.metrics_dict(rec)["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["outer"]["total_s"] >= spans["inner"]["total_s"]
        assert spans["inner"]["min_s"] <= spans["inner"]["max_s"]

    def test_json_round_trip(self, tmp_path):
        rec = _sample_recorder()
        path = obs.write_metrics_json(rec, tmp_path / "m.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro.obs.metrics/1"
        assert loaded["counters"]["alg1.forward_cycles"] == 3.0

    def test_prometheus_rendering(self):
        rec = _sample_recorder()
        text = obs.render_prometheus(rec)
        assert "repro_alg1_forward_cycles_total 3" in text
        assert "# TYPE repro_model_clusters gauge" in text
        assert "repro_outer_seconds_count 1" in text
        # Exposition format: every non-comment line is "name value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)
            assert name and " " not in name
