"""Access-log size rotation (``--access-log-max-bytes``)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.accesslog import ACCESS_LOG_SCHEMA, AccessLog


def _record(log, n, **facts):
    for i in range(n):
        entry = log.record(
            "daemon", "analyze", f"design-{i}", "ok", 0.001, **facts
        )
        assert entry["schema"] == ACCESS_LOG_SCHEMA


def _lines(path):
    return [
        json.loads(line)
        for line in Path(path).read_text().splitlines()
    ]


class TestAccessLogRotation:
    def test_no_rotation_by_default(self, tmp_path):
        path = tmp_path / "access.log"
        with AccessLog(path) as log:
            _record(log, 50)
        assert len(_lines(path)) == 50
        assert not (tmp_path / "access.log.1").exists()
        assert log.rotations == 0

    def test_rotates_at_max_bytes(self, tmp_path):
        path = tmp_path / "access.log"
        with AccessLog(path, max_bytes=2000, backups=3) as log:
            _record(log, 60)
        assert log.rotations >= 1
        assert (tmp_path / "access.log.1").exists()
        # The live file stays under the cap; every line everywhere is
        # still valid JSON (rotation never tears a line).
        assert path.stat().st_size <= 2000
        assert log.lines_written == 60
        live = _lines(path)
        assert live[-1]["design"] == "design-59"  # newest stays live
        total = len(live)
        for i in range(1, log.backups + 1):
            rotated = tmp_path / f"access.log.{i}"
            if rotated.exists():
                assert rotated.stat().st_size <= 2000
                total += len(_lines(rotated))
        # Generations beyond ``backups`` are dropped, nothing else is.
        assert 0 < total <= 60
        if log.rotations <= log.backups:
            assert total == 60

    def test_backups_cap_generations(self, tmp_path):
        path = tmp_path / "access.log"
        with AccessLog(path, max_bytes=400, backups=2) as log:
            _record(log, 80)
        assert log.rotations > 2
        assert (tmp_path / "access.log.1").exists()
        assert (tmp_path / "access.log.2").exists()
        assert not (tmp_path / "access.log.3").exists()

    def test_oversized_single_line_still_written(self, tmp_path):
        # A single entry larger than max_bytes must not loop or drop:
        # it rotates once (when the file has content) and appends.
        path = tmp_path / "access.log"
        with AccessLog(path, max_bytes=200, backups=2) as log:
            log.record("daemon", "analyze", "d", "ok", 0.001)
            log.record(
                "daemon", "analyze", "d", "ok", 0.001, note="x" * 500
            )
        assert log.lines_written == 2
        found = _lines(path)
        if (tmp_path / "access.log.1").exists():
            found += _lines(tmp_path / "access.log.1")
        assert len(found) == 2

    def test_file_object_sink_never_rotates(self):
        import io

        buffer = io.StringIO()
        log = AccessLog(buffer, max_bytes=10, backups=2)
        _record(log, 5)
        assert log.rotations == 0
        assert len(buffer.getvalue().splitlines()) == 5

    def test_reopened_log_counts_existing_bytes(self, tmp_path):
        path = tmp_path / "access.log"
        with AccessLog(path, max_bytes=2000) as log:
            _record(log, 8)
        size = path.stat().st_size
        # A restarted daemon appends to the same file and rotates based
        # on the real on-disk size, not a fresh zero.
        with AccessLog(path, max_bytes=size + 50) as log:
            _record(log, 20)
        assert log.rotations >= 1
        assert (tmp_path / "access.log.1").exists()
