"""Integration: ``repro-sta ... --trace --metrics --verbose``."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.clocks.serialize import save_schedule
from repro.generators import latch_pipeline
from repro.netlist.persistence import save_network

from tests.conftest import build_ff_stage


@pytest.fixture
def pipeline_workspace(tmp_path):
    network, schedule = latch_pipeline(
        stages=6, stage_lengths=[12, 1, 1, 1, 1, 1], period=12.0
    )
    netlist = tmp_path / "pipeline.json"
    clocks = tmp_path / "clocks.json"
    save_network(network, netlist)
    save_schedule(schedule, clocks)
    return network, netlist, clocks, tmp_path


class TestAnalyzeWithObservability:
    def test_trace_and_metrics_files_written(
        self, pipeline_workspace, capsys
    ):
        network, netlist, clocks, tmp_path = pipeline_workspace
        trace = tmp_path / "out.trace.json"
        metrics = tmp_path / "out.metrics.json"
        code = main(
            [
                "analyze",
                str(netlist),
                "--clocks",
                str(clocks),
                "--trace",
                str(trace),
                "--metrics",
                str(metrics),
                "--verbose",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "behaves as intended" in captured.out
        # Phase tree on stderr.
        assert "analyzer.preprocess" in captured.err
        assert "counters:" in captured.err

        # Trace file: valid Chrome trace-event JSON.
        trace_data = json.loads(trace.read_text())
        assert obs.validate_chrome_trace(trace_data) == []
        names = {e["name"] for e in trace_data["traceEvents"]}
        assert "cli.analyze" in names
        assert "analyzer.preprocess" in names
        assert "analyzer.analysis" in names

        # Metrics file: the acceptance-criteria catalogue.
        data = json.loads(metrics.read_text())
        counters = data["counters"]
        spans = data["spans"]
        # per-phase durations
        assert spans["analyzer.preprocess"]["total_s"] >= 0.0
        assert spans["analyzer.analysis"]["total_s"] >= 0.0
        # Algorithm-1 iteration count (>=1 on this borrowing pipeline)
        assert counters["alg1.iterations_total"] >= 1
        bound = len(network.synchronisers) + 1
        assert counters["alg1.forward_cycles"] <= bound
        # slack-transfer / snatch counters (snatch zero-filled here)
        assert counters["transfer.complete_forward.moved"] > 0
        assert "transfer.snatch_forward.moved" in counters
        # per-cluster pass counts
        assert counters["slack.cluster_passes"] >= 1
        assert data["gauges"]["model.total_passes"] >= 1
        # incremental warm-start hit/miss (zero-filled for plain analyze)
        assert "incremental.warm_hits" in counters
        assert "incremental.cold_starts" in counters

    def test_recorder_disabled_after_cli_run(self, pipeline_workspace):
        __, netlist, clocks, tmp_path = pipeline_workspace
        main(
            [
                "analyze",
                str(netlist),
                "--clocks",
                str(clocks),
                "--trace",
                str(tmp_path / "t.json"),
            ]
        )
        assert obs.active() is None

    def test_plain_run_writes_nothing(
        self, pipeline_workspace, capsys
    ):
        __, netlist, clocks, tmp_path = pipeline_workspace
        code = main(["analyze", str(netlist), "--clocks", str(clocks)])
        assert code == 0
        assert not list(tmp_path.glob("*.trace.json"))
        assert "counters:" not in capsys.readouterr().err


class TestOtherSubcommandsAcceptFlags:
    @pytest.mark.parametrize(
        "command", ["constraints", "stats", "maxfreq"]
    )
    def test_subcommand_trace(
        self, lib, tmp_path, command, capsys
    ):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        netlist = tmp_path / "d.json"
        clocks = tmp_path / "c.json"
        save_network(network, netlist)
        save_schedule(schedule, clocks)
        trace = tmp_path / f"{command}.trace.json"
        code = main(
            [
                command,
                str(netlist),
                "--clocks",
                str(clocks),
                "--trace",
                str(trace),
            ]
        )
        assert code == 0
        data = json.loads(trace.read_text())
        assert obs.validate_chrome_trace(data) == []
        assert any(
            e["name"] == f"cli.{command}" for e in data["traceEvents"]
        )

    def test_waveforms_trace(self, lib, tmp_path):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        clocks = tmp_path / "c.json"
        save_schedule(schedule, clocks)
        trace = tmp_path / "w.trace.json"
        code = main(
            ["waveforms", "--clocks", str(clocks), "--trace", str(trace)]
        )
        assert code == 0
        assert json.loads(trace.read_text())["traceEvents"]

    def test_help_text_mentions_verilog(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "--help"])
        out = capsys.readouterr().out
        assert ".json, .blif or .v" in out
        assert "--trace" in out and "--metrics" in out


class TestCliProfiling:
    """PR-6: ``--profile FILE`` on the CLI entry points."""

    def test_analyze_profile_writes_speedscope(
        self, pipeline_workspace, capsys
    ):
        __, netlist, clocks, tmp_path = pipeline_workspace
        target = tmp_path / "analyze.speedscope.json"
        code = main(
            [
                "analyze",
                str(netlist),
                "--clocks",
                str(clocks),
                "--profile",
                str(target),
                "--profile-hz",
                "500",
            ]
        )
        assert code in (0, 1)  # timing violations still exit 1
        assert target.exists()
        scope = json.loads(target.read_text())
        assert scope["$schema"].endswith("file-format-schema.json")
        assert scope["profiles"]
        err = capsys.readouterr().err
        assert "profile written to" in err
        assert obs.active() is None  # recorder restored

    def test_batch_profile_merges_workers(
        self, pipeline_workspace, tmp_path, capsys
    ):
        __, netlist, clocks, __ = pipeline_workspace
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(
            json.dumps(
                {
                    "schema": "repro.batch/1",
                    "jobs": [
                        {
                            "name": "a",
                            "netlist": str(netlist),
                            "clocks": str(clocks),
                        }
                    ],
                }
            )
        )
        target = tmp_path / "batch.speedscope.json"
        code = main(
            [
                "batch",
                str(jobs_file),
                "--serial",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--profile",
                str(target),
                "--profile-hz",
                "500",
            ]
        )
        assert code in (0, 1)
        assert target.exists()
        scope = json.loads(target.read_text())
        assert scope["profiles"]
        err = capsys.readouterr().err
        assert "profile written to" in err
        assert "process(es)" in err

    def test_profile_off_by_default(self, pipeline_workspace):
        __, netlist, clocks, tmp_path = pipeline_workspace
        main(["analyze", str(netlist), "--clocks", str(clocks)])
        leftovers = list(tmp_path.glob("*.speedscope.json"))
        assert leftovers == []
