"""Tests for the declarative alert engine (repro.obs.alerts)."""

from __future__ import annotations

import json
import sys

import pytest

from repro import obs
from repro.obs.alerts import (
    ALERTS_SCHEMA,
    AlertEngine,
    AlertRule,
    DEFAULT_RULES,
    load_rules,
)
from repro.obs.tsdb import MetricsHistory


def _history_from(points):
    """Build a MetricsHistory pre-seeded with hand-written points."""
    history = MetricsHistory(capacity=max(1, len(points)))
    history._points.extend(points)
    history.snapshots = len(points)
    return history


def _point(ts, counters=None, gauges=None, histograms=None):
    return {
        "ts": ts,
        "counters": counters or {},
        "gauges": gauges or {},
        "histograms": histograms or {},
    }


class TestAlertRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="", kind="threshold", metric="m", threshold=1.0)
        with pytest.raises(ValueError):
            AlertRule(name="x", kind="nope")
        with pytest.raises(ValueError):
            AlertRule(name="x", kind="threshold", metric="m", op="~")
        with pytest.raises(ValueError):
            AlertRule(name="x", kind="threshold")  # metric required
        with pytest.raises(ValueError):
            AlertRule(name="x", kind="burn_rate", numerator="n")  # no den
        with pytest.raises(ValueError):
            AlertRule(
                name="x", kind="threshold", metric="m", severity="loud"
            )

    def test_from_dict_round_trip_and_unknown_keys(self):
        rule = AlertRule(
            name="r",
            kind="burn_rate",
            numerator="errs",
            denominator=("hits", "misses"),
            threshold=0.5,
            window_s=60.0,
            min_denominator=5.0,
        )
        again = AlertRule.from_dict(rule.to_dict())
        assert again == rule
        with pytest.raises(ValueError):
            AlertRule.from_dict({"name": "r", "kind": "event", "bogus": 1})

    def test_string_series_normalised_to_tuple(self):
        rule = AlertRule(
            name="r", kind="burn_rate", numerator="a", denominator="b"
        )
        assert rule.numerator == ("a",)
        assert rule.denominator == ("b",)

    def test_default_rules_are_valid_and_unique(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert len(names) == len(set(names))
        assert "daemon.stalled" in names
        # Construction above already validated each rule.
        AlertEngine(DEFAULT_RULES)


class TestThresholdRules:
    RULE = AlertRule(
        name="p95",
        kind="threshold",
        metric="lat.p95",
        op=">",
        threshold=0.5,
    )

    def test_fires_immediately_without_for_s(self):
        engine = AlertEngine([self.RULE])
        history = _history_from(
            [_point(100.0, histograms={"lat": {"p95": 0.9, "count": 1}})]
        )
        changed = engine.evaluate(history, now=100.0)
        assert [c["state"] for c in changed] == ["firing"]
        assert "breached" in changed[0]["message"]
        assert engine.firing_count() == 1

    def test_missing_metric_does_not_fire(self):
        engine = AlertEngine([self.RULE])
        history = _history_from([_point(100.0)])
        assert engine.evaluate(history, now=100.0) == []
        assert engine.firing_count() == 0

    def test_for_s_requires_sustained_breach(self):
        rule = AlertRule(
            name="slow",
            kind="threshold",
            metric="g",
            op=">=",
            threshold=1.0,
            for_s=10.0,
        )
        engine = AlertEngine([rule])
        history = _history_from([_point(0.0, gauges={"g": 2.0})])
        changed = engine.evaluate(history, now=0.0)
        assert [c["state"] for c in changed] == ["pending"]
        # Still inside the for_s window: no new transition.
        assert engine.evaluate(history, now=5.0) == []
        changed = engine.evaluate(history, now=11.0)
        assert [c["state"] for c in changed] == ["firing"]

    def test_pending_that_recovers_goes_back_to_ok(self):
        rule = AlertRule(
            name="slow",
            kind="threshold",
            metric="g",
            op=">",
            threshold=1.0,
            for_s=10.0,
        )
        engine = AlertEngine([rule])
        bad = _history_from([_point(0.0, gauges={"g": 5.0})])
        good = _history_from([_point(1.0, gauges={"g": 0.5})])
        engine.evaluate(bad, now=0.0)
        changed = engine.evaluate(good, now=1.0)
        assert [c["state"] for c in changed] == ["ok"]

    def test_firing_resolves_then_refires(self):
        engine = AlertEngine([self.RULE])
        bad = _history_from(
            [_point(0.0, histograms={"lat": {"p95": 0.9, "count": 1}})]
        )
        good = _history_from(
            [_point(1.0, histograms={"lat": {"p95": 0.1, "count": 2}})]
        )
        engine.evaluate(bad, now=0.0)
        changed = engine.evaluate(good, now=1.0)
        assert [c["state"] for c in changed] == ["resolved"]
        changed = engine.evaluate(bad, now=2.0)
        assert [c["state"] for c in changed] == ["firing"]
        row = changed[0]
        assert row["transitions"] == 3


class TestAbsenceRules:
    RULE = AlertRule(
        name="heartbeat",
        kind="absence",
        metric="uptime",
        for_s=0.0,
    )

    def test_absent_metric_fires_and_zero_does_not(self):
        engine = AlertEngine([self.RULE])
        missing = _history_from([_point(0.0)])
        changed = engine.evaluate(missing, now=0.0)
        assert [c["state"] for c in changed] == ["firing"]
        # 0.0 is *present* -- must resolve (the absence/zero distinction
        # resolve_metric exists for).
        zero = _history_from([_point(1.0, gauges={"uptime": 0.0})])
        changed = engine.evaluate(zero, now=1.0)
        assert [c["state"] for c in changed] == ["resolved"]


class TestBurnRateRules:
    RULE = AlertRule(
        name="errs",
        kind="burn_rate",
        numerator="errors",
        denominator="requests",
        threshold=0.1,
        window_s=60.0,
        min_denominator=5.0,
    )

    def test_fires_on_high_ratio(self):
        engine = AlertEngine([self.RULE])
        history = _history_from(
            [
                _point(0.0, counters={"errors": 0, "requests": 0}),
                _point(30.0, counters={"errors": 5, "requests": 20}),
            ]
        )
        changed = engine.evaluate(history, now=30.0)
        assert [c["state"] for c in changed] == ["firing"]
        assert changed[0]["value"] == 0.25

    def test_min_denominator_suppresses_noise(self):
        engine = AlertEngine([self.RULE])
        history = _history_from(
            [
                _point(0.0, counters={"errors": 0, "requests": 0}),
                _point(30.0, counters={"errors": 2, "requests": 2}),
            ]
        )
        # 100% error rate but only 2 requests: below min_denominator.
        assert engine.evaluate(history, now=30.0) == []

    def test_counter_reset_clamps_to_zero(self):
        engine = AlertEngine([self.RULE])
        # Daemon restarted mid-window: counters went backwards.
        history = _history_from(
            [
                _point(0.0, counters={"errors": 50, "requests": 100}),
                _point(30.0, counters={"errors": 1, "requests": 200}),
            ]
        )
        # errors delta clamps to 0 => ratio 0, no fire.
        assert engine.evaluate(history, now=30.0) == []

    def test_single_point_window_is_inconclusive(self):
        engine = AlertEngine([self.RULE])
        history = _history_from(
            [_point(100.0, counters={"errors": 99, "requests": 100})]
        )
        assert engine.evaluate(history, now=100.0) == []

    def test_old_points_fall_out_of_window(self):
        engine = AlertEngine([self.RULE])
        history = _history_from(
            [
                # 50% error rate here, but it ages out of the window.
                _point(0.0, counters={"errors": 5, "requests": 10}),
                _point(200.0, counters={"errors": 5, "requests": 20}),
                _point(230.0, counters={"errors": 23, "requests": 110}),
            ]
        )
        # Window [170, 230]: only the last two points count.
        changed = engine.evaluate(history, now=230.0)
        assert [c["state"] for c in changed] == ["firing"]
        assert changed[0]["value"] == 0.2

    def test_multi_series_denominator(self):
        rule = AlertRule(
            name="hit_rate",
            kind="burn_rate",
            numerator="misses",
            denominator=("hits", "misses"),
            threshold=0.5,
            window_s=60.0,
            min_denominator=4.0,
        )
        engine = AlertEngine([rule])
        history = _history_from(
            [
                _point(0.0, counters={"hits": 0, "misses": 0}),
                _point(10.0, counters={"hits": 1, "misses": 9}),
            ]
        )
        changed = engine.evaluate(history, now=10.0)
        assert [c["state"] for c in changed] == ["firing"]
        assert changed[0]["value"] == 0.9


class TestEventRules:
    RULE = AlertRule(name="stalled", kind="event", severity="critical")

    def test_fire_clear_cycle(self):
        engine = AlertEngine([self.RULE])
        row = engine.fire("stalled", message="op=sleep", value=2.0)
        assert row["state"] == "firing"
        assert engine.fire("stalled") is None  # already firing
        row = engine.clear("stalled")
        assert row["state"] == "resolved"
        assert engine.clear("stalled") is None  # not firing
        assert engine.fire("nope") is None  # unknown rule

    def test_evaluate_skips_event_rules(self):
        engine = AlertEngine([self.RULE])
        history = _history_from([_point(0.0)])
        assert engine.evaluate(history, now=0.0) == []

    def test_ack_only_while_firing(self):
        engine = AlertEngine([self.RULE])
        assert engine.ack("stalled") is False
        engine.fire("stalled")
        assert engine.ack("stalled") is True
        assert engine.rows()[0]["acked"] is True
        engine.clear("stalled")
        # Resolving clears the ack.
        assert engine.rows()[0]["acked"] is False
        assert engine.ack("missing") is False


class TestEngineDocument:
    def test_duplicate_rule_names_rejected(self):
        rule = AlertRule(name="dup", kind="event")
        with pytest.raises(ValueError):
            AlertEngine([rule, rule])

    def test_rows_sorted_firing_first(self):
        rules = [
            AlertRule(name="a_info", kind="event", severity="info"),
            AlertRule(name="b_crit", kind="event", severity="critical"),
            AlertRule(name="c_warn", kind="event", severity="warning"),
        ]
        engine = AlertEngine(rules)
        engine.fire("c_warn")
        rows = engine.rows()
        assert rows[0]["name"] == "c_warn"  # firing outranks severity
        assert [r["name"] for r in rows[1:]] == ["b_crit", "a_info"]
        assert engine.active()[0]["name"] == "c_warn"

    def test_to_dict_schema(self):
        engine = AlertEngine([AlertRule(name="e", kind="event")])
        doc = engine.to_dict()
        assert doc["schema"] == ALERTS_SCHEMA
        assert doc["rules"] == 1
        assert doc["firing"] == 0
        assert len(doc["alerts"]) == 1

    def test_on_transition_hook_and_swallowed_errors(self):
        seen = []

        def hook(rule, old, new, row):
            seen.append((rule.name, old, new))
            raise RuntimeError("hook must not break the engine")

        engine = AlertEngine(
            [AlertRule(name="e", kind="event")], on_transition=hook
        )
        engine.fire("e")
        engine.clear("e")
        assert seen == [("e", "ok", "firing"), ("e", "firing", "resolved")]


class TestLoadRules:
    def test_json_extends_and_overrides_defaults(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.alertrules/1",
                    "rules": [
                        {"name": "custom.event", "kind": "event"},
                        {
                            "name": "daemon.handle_p95_high",
                            "kind": "threshold",
                            "metric": "service.daemon.handle_seconds.p95",
                            "op": ">",
                            "threshold": 9.0,
                        },
                    ],
                }
            )
        )
        rules = load_rules(path)
        by_name = {rule.name: rule for rule in rules}
        assert "custom.event" in by_name
        assert by_name["daemon.handle_p95_high"].threshold == 9.0
        assert len(rules) == len(DEFAULT_RULES) + 1

    def test_replace_defaults(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {
                    "replace_defaults": True,
                    "rules": [{"name": "only", "kind": "event"}],
                }
            )
        )
        rules = load_rules(path)
        assert [rule.name for rule in rules] == ["only"]

    def test_bad_files_rejected(self, tmp_path):
        top_list = tmp_path / "list.json"
        top_list.write_text("[]")
        with pytest.raises(ValueError):
            load_rules(top_list)
        no_rules = tmp_path / "empty.json"
        no_rules.write_text("{}")
        with pytest.raises(ValueError):
            load_rules(no_rules)
        bad_schema = tmp_path / "schema.json"
        bad_schema.write_text(json.dumps({"schema": "x/9", "rules": []}))
        with pytest.raises(ValueError):
            load_rules(bad_schema)

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib needs Python 3.11"
    )
    def test_toml_rules(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text(
            "replace_defaults = true\n"
            "[[rules]]\n"
            'name = "toml.event"\n'
            'kind = "event"\n'
            'severity = "info"\n'
        )
        rules = load_rules(path)
        assert [rule.name for rule in rules] == ["toml.event"]
        assert rules[0].severity == "info"


class TestAgainstLiveHistory:
    def test_end_to_end_with_recorder(self):
        rule = AlertRule(
            name="runs_high",
            kind="threshold",
            metric="alg1.runs",
            op=">=",
            threshold=3.0,
        )
        engine = AlertEngine([rule])
        history = MetricsHistory(capacity=8)
        with obs.recording() as rec:
            obs.counter("alg1.runs", 2)
            history.record(rec)
            assert engine.evaluate(history) == []
            obs.counter("alg1.runs", 2)
            history.record(rec)
            changed = engine.evaluate(history)
        assert [c["state"] for c in changed] == ["firing"]
        assert changed[0]["value"] == 4.0
