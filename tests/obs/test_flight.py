"""Tests for the flight recorder, crash reports and stall watchdog."""

from __future__ import annotations

import json
import sys
import threading
import time

import pytest

from repro import obs
from repro.obs.flight import (
    CRASH_SCHEMA,
    ERROR_SCHEMA,
    FLIGHT_SCHEMA,
    CrashHandler,
    FlightRecorder,
    StallWatchdog,
    error_document,
    exception_frames,
    thread_stacks,
)


def _raise_nested():
    def inner():
        raise ValueError("kaboom")

    inner()


class TestErrorDocuments:
    def test_exception_frames_shape(self):
        try:
            _raise_nested()
        except ValueError as exc:
            frames = exception_frames(exc)
        assert len(frames) >= 2
        last = frames[-1]
        assert set(last) == {"file", "line", "function", "code"}
        assert last["function"] == "inner"
        assert 'raise ValueError("kaboom")' in last["code"]
        # Short two-component paths, not absolute ones.
        assert not last["file"].startswith("/")

    def test_frame_limit_keeps_innermost(self):
        def recurse(n):
            if n:
                recurse(n - 1)
            else:
                raise RuntimeError("deep")

        try:
            recurse(40)
        except RuntimeError as exc:
            frames = exception_frames(exc, limit=5)
        assert len(frames) == 5
        assert 'raise RuntimeError("deep")' in frames[-1]["code"]

    def test_error_document(self):
        try:
            _raise_nested()
        except ValueError as exc:
            doc = error_document(exc)
        assert doc["schema"] == ERROR_SCHEMA
        assert doc["error"] == "kaboom"
        assert doc["error_type"] == "ValueError"
        assert doc["frames"]

    def test_thread_stacks_include_current_thread(self):
        rows = thread_stacks()
        mine = [
            r for r in rows if r["thread_id"] == threading.get_ident()
        ]
        assert len(mine) == 1
        assert any(
            "test_thread_stacks_include_current_thread" in f
            for f in mine[0]["frames"]
        )
        # Frames are root-first profiler labels: "func (pkg/mod.py:N)".
        assert all("(" in f and ")" in f for f in mine[0]["frames"])

    def test_thread_stacks_exclude(self):
        rows = thread_stacks(exclude=[threading.get_ident()])
        assert all(r["thread_id"] != threading.get_ident() for r in rows)


class TestFlightRecorder:
    def test_capacity_and_dropped_accounting(self):
        ring = FlightRecorder(capacity=3)
        for index in range(5):
            ring.record_log(f"event {index}")
        assert len(ring) == 3
        assert ring.total == 5
        assert ring.dropped == 2
        doc = ring.to_dict()
        assert doc["schema"] == FLIGHT_SCHEMA
        assert doc["total"] == 5 and doc["dropped"] == 2
        assert [e["message"] for e in doc["events"]] == [
            "event 2",
            "event 3",
            "event 4",
        ]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_record_request_and_filtering(self):
        ring = FlightRecorder(capacity=8)
        ring.record_request("analyze", "chip", "ok", 0.25)
        ring.record_request("fail", None, "error", 0.001,
                            error_type="RuntimeError")
        ring.record_log("note")
        requests = ring.events(kind="request")
        assert len(requests) == 2
        assert requests[0]["duration_ms"] == 250.0
        assert "design" not in requests[1]  # None fields are elided
        assert requests[1]["error_type"] == "RuntimeError"
        assert len(ring.events(last=1)) == 1
        assert ring.events(last=0) == []

    def test_record_error_embeds_error_document(self):
        ring = FlightRecorder(capacity=8)
        try:
            _raise_nested()
        except ValueError as exc:
            ring.record_error(exc, op="analyze")
        event = ring.events(kind="error")[0]
        assert event["error"]["schema"] == ERROR_SCHEMA
        assert event["error"]["error_type"] == "ValueError"
        assert event["op"] == "analyze"

    def test_subscribe_spans_captures_root_spans_only(self):
        ring = FlightRecorder(capacity=8)
        with obs.recording() as rec:
            ring.subscribe_spans(rec)
            with obs.span("outer", category="test"):
                with obs.span("inner", category="test"):
                    pass
        spans = ring.events(kind="span")
        assert [s["name"] for s in spans] == ["outer"]
        assert spans[0]["duration_ms"] >= 0.0

    def test_to_dict_json_serialisable(self):
        ring = FlightRecorder(capacity=4)
        try:
            _raise_nested()
        except ValueError as exc:
            ring.record_error(exc)
        json.dumps(ring.to_dict())  # must not raise


class TestCrashHandler:
    def test_build_shape(self):
        ring = FlightRecorder(capacity=4)
        ring.record_log("before the crash")
        handler = CrashHandler(
            flight=ring,
            alerts=lambda: [{"name": "x", "state": "firing"}],
            buildinfo=lambda: {"version": "test"},
        )
        try:
            _raise_nested()
        except ValueError as exc:
            doc = handler.build(exc, kind="unit_test", op="analyze")
        assert doc["schema"] == CRASH_SCHEMA
        assert doc["kind"] == "unit_test"
        assert doc["op"] == "analyze"
        assert doc["error"]["error_type"] == "ValueError"
        assert doc["flight"]["events"][0]["message"] == "before the crash"
        assert doc["alerts"][0]["name"] == "x"
        assert doc["buildinfo"]["version"] == "test"
        assert any(
            r["thread_id"] == threading.get_ident() for r in doc["threads"]
        )

    def test_forensic_callbacks_must_not_raise(self):
        handler = CrashHandler(
            alerts=lambda: 1 / 0, buildinfo=lambda: 1 / 0
        )
        doc = handler.build(RuntimeError("x"))
        assert doc["alerts"] == []
        assert doc["buildinfo"] is None

    def test_report_persists_and_prunes(self, tmp_path):
        handler = CrashHandler(crash_dir=tmp_path, keep=2)
        for index in range(4):
            handler.report(RuntimeError(f"crash {index}"))
            time.sleep(0.01)
        reports = sorted(tmp_path.glob("crash-*.json"))
        assert len(reports) == 2
        assert handler.reports_written == 4
        latest = handler.latest()
        assert latest["error"]["error"] == "crash 3"
        assert handler.latest_path() in reports

    def test_latest_reads_disk_when_memory_empty(self, tmp_path):
        CrashHandler(crash_dir=tmp_path).report(RuntimeError("persisted"))
        fresh = CrashHandler(crash_dir=tmp_path)
        assert fresh.latest()["error"]["error"] == "persisted"
        empty = CrashHandler(crash_dir=tmp_path / "void")
        assert empty.latest() is None
        assert empty.latest_path() is None

    def test_in_memory_only_without_crash_dir(self):
        handler = CrashHandler()
        handler.report(RuntimeError("memory"))
        assert handler.latest()["error"]["error"] == "memory"
        assert handler.latest_path() is None

    def test_install_uninstall_restores_hooks(self, tmp_path):
        handler = CrashHandler(crash_dir=tmp_path)
        prev_except = sys.excepthook
        prev_thread = threading.excepthook
        handler.install()
        try:
            assert sys.excepthook is not prev_except
            assert threading.excepthook is not prev_thread
            # Faulthandler log exists while installed.
            logs = list(tmp_path.glob("faulthandler-*.log"))
            assert len(logs) == 1
        finally:
            handler.uninstall()
        assert sys.excepthook is prev_except
        assert threading.excepthook is prev_thread
        # Clean shutdown: the empty faulthandler log is swept away.
        assert list(tmp_path.glob("faulthandler-*.log")) == []

    def test_installed_thread_hook_writes_report(self, tmp_path):
        handler = CrashHandler(crash_dir=tmp_path)
        handler.install()
        try:
            thread = threading.Thread(
                target=lambda: (_ for _ in ()).throw(
                    RuntimeError("thread boom")
                ).__next__(),
                name="crasher",
            )
            # Suppress stderr noise from the default hook by chaining
            # into a no-op previous hook.
            handler._prev_threading_excepthook = lambda args: None
            thread.start()
            thread.join(timeout=5.0)
            deadline = time.time() + 5.0
            while handler.latest() is None and time.time() < deadline:
                time.sleep(0.01)
            latest = handler.latest()
        finally:
            handler.uninstall()
        assert latest is not None
        assert latest["kind"] == "unhandled_thread_exception"
        assert latest["thread"] == "crasher"
        assert latest["error"]["error"] == "thread boom"


class TestStallWatchdog:
    def test_scan_detects_and_clear_fires_once(self):
        stalls, clears, all_clears = [], [], []
        watchdog = StallWatchdog(
            deadline_s=10.0,
            on_stall=stalls.append,
            on_clear=clears.append,
            on_all_clear=lambda: all_clears.append(True),
        )
        token = watchdog.track(op="analyze", design="chip")
        now = time.perf_counter()
        assert watchdog.scan(now=now) == []  # young request: fine
        fresh = watchdog.scan(now=now + 11.0)
        assert len(fresh) == 1
        info = fresh[0]
        assert info["op"] == "analyze"
        assert info["design"] == "chip"
        assert info["waited_s"] >= 10.0
        assert info["stack"]  # the stuck thread is *this* thread
        assert any("test_scan_detects" in f for f in info["stack"])
        # Second scan does not re-fire the same stall.
        assert watchdog.scan(now=now + 12.0) == []
        assert watchdog.stalled_count() == 1
        watchdog.untrack(token)
        assert len(clears) == 1 and clears[0]["op"] == "analyze"
        assert all_clears == [True]
        assert stalls[0] is not clears[0]

    def test_annotate_attaches_late_facts(self):
        watchdog = StallWatchdog(deadline_s=5.0)
        token = watchdog.track(op="analyze")
        watchdog.annotate(token, design="late")
        assert watchdog.inflight()[0]["design"] == "late"
        watchdog.untrack(token)
        watchdog.annotate(token, design="gone")  # no-op, no raise

    def test_all_clear_waits_for_every_stall(self):
        all_clears = []
        watchdog = StallWatchdog(
            deadline_s=1.0, on_all_clear=lambda: all_clears.append(True)
        )
        first = watchdog.track(op="a")
        second = watchdog.track(op="b")
        now = time.perf_counter()
        assert len(watchdog.scan(now=now + 2.0)) == 2
        watchdog.untrack(first)
        assert all_clears == []
        watchdog.untrack(second)
        assert all_clears == [True]

    def test_untracked_healthy_requests_fire_nothing(self):
        clears = []
        watchdog = StallWatchdog(deadline_s=30.0, on_clear=clears.append)
        token = watchdog.track(op="quick")
        watchdog.untrack(token)
        assert clears == []
        assert watchdog.inflight() == []

    def test_background_thread_scans(self):
        stalls = []
        watchdog = StallWatchdog(
            deadline_s=0.05, interval_s=0.01, on_stall=stalls.append
        )
        watchdog.start()
        try:
            token = watchdog.track(op="slow")
            deadline = time.time() + 5.0
            while not stalls and time.time() < deadline:
                time.sleep(0.01)
            watchdog.untrack(token)
        finally:
            watchdog.stop()
        assert stalls and stalls[0]["op"] == "slow"
        assert not watchdog.running

    def test_interval_defaults_to_quarter_deadline(self):
        assert StallWatchdog(deadline_s=2.0).interval_s == 0.5
        assert StallWatchdog(deadline_s=0.1).interval_s == 0.05
        assert StallWatchdog(deadline_s=400.0).interval_s == 1.0
        with pytest.raises(ValueError):
            StallWatchdog(deadline_s=0.0)

    def test_hook_exceptions_are_swallowed(self):
        watchdog = StallWatchdog(
            deadline_s=1.0,
            on_stall=lambda info: 1 / 0,
            on_clear=lambda info: 1 / 0,
            on_all_clear=lambda: 1 / 0,
        )
        token = watchdog.track(op="x")
        assert len(watchdog.scan(now=time.perf_counter() + 2.0)) == 1
        watchdog.untrack(token)  # must not raise
