"""Pure fleet aggregation: peers files, rows, doc, doctor, renderers."""

from __future__ import annotations

import json

import pytest

from repro.obs.fleet import (
    FLEET_DOCTOR_SCHEMA,
    FLEET_SCHEMA,
    build_fleet_doc,
    build_fleet_doctor,
    fleet_doctor_exit_code,
    load_peers,
    peer_row,
    render_fleet,
    render_fleet_doctor,
)


def _history(requests, ts0=1000.0, dt=5.0, p95=0.02):
    points = []
    for i, count in enumerate(requests):
        points.append(
            {
                "ts": ts0 + i * dt,
                "counters": {
                    "service.daemon.requests": count,
                    "service.cache.hits": 30,
                    "service.cache.misses": 10,
                },
                "gauges": {},
                "histograms": {
                    "service.daemon.request_seconds": {
                        "count": count,
                        "p50": p95 / 2.0,
                        "p95": p95,
                    }
                },
            }
        )
    return {"points": points}


def _scrape(ok=True, error=None, **over):
    scrape = {
        "ok": ok,
        "error": error,
        "healthz": {
            "ok": True,
            "pid": 4242,
            "uptime_s": 60.0,
            "requests": 100,
            "errors": 0,
            "in_flight": 0,
            "designs_loaded": 1,
        },
        "history": _history([90, 100]),
        "alertz": {"ok": True, "alerts": []},
        "fabricz": None,
        "crashz": {"ok": True, "crash": None},
    }
    scrape.update(over)
    return scrape


class TestLoadPeers:
    def test_text_format(self, tmp_path):
        path = tmp_path / "peers.txt"
        path.write_text(
            "# fleet\n"
            "http://127.0.0.1:9001/\n"
            "http://127.0.0.1:9002   # trailing comment\n"
            "\n"
            "http://127.0.0.1:9001\n"  # duplicate after normalising
        )
        assert load_peers(path) == [
            "http://127.0.0.1:9001",
            "http://127.0.0.1:9002",
        ]

    def test_json_list(self, tmp_path):
        path = tmp_path / "peers.json"
        path.write_text(json.dumps(["http://a:1/", "http://b:2"]))
        assert load_peers(path) == ["http://a:1", "http://b:2"]

    def test_json_object(self, tmp_path):
        path = tmp_path / "peers.json"
        path.write_text(json.dumps({"peers": ["http://a:1"]}))
        assert load_peers(path) == ["http://a:1"]

    def test_json_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "peers.json"
        path.write_text(json.dumps({"peers": "http://a:1"}))
        with pytest.raises(ValueError):
            load_peers(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_peers(tmp_path / "absent")


class TestPeerRow:
    def test_up_row(self):
        row = peer_row("http://a:1", _scrape())
        assert row["state"] == "up"
        assert row["pid"] == 4242
        assert row["rate_rps"] == pytest.approx(2.0)  # (100-90)/5s
        assert row["latency"]["p95_s"] == pytest.approx(0.02)
        assert row["cache_hit_rate"] == pytest.approx(0.75)
        assert row["alerts_firing"] == []
        assert "fabric" not in row

    def test_down_row(self):
        row = peer_row(
            "http://a:1", {"ok": False, "error": "URLError: refused"}
        )
        assert row == {
            "url": "http://a:1",
            "state": "down",
            "error": "URLError: refused",
        }

    def test_degraded_on_firing_alerts(self):
        alertz = {
            "ok": True,
            "alerts": [
                {"name": "error_rate_high", "state": "firing"},
                {"name": "queue_deep", "state": "ok"},
            ],
        }
        row = peer_row("http://a:1", _scrape(alertz=alertz))
        assert row["state"] == "degraded"
        assert row["alerts_firing"] == ["error_rate_high"]

    def test_restart_rebases_rate(self):
        # Counter fell 500 -> 3: the peer restarted; 3 requests over
        # the 5 s window is 0.6 req/s, not a clamped zero.
        row = peer_row("http://a:1", _scrape(history=_history([500, 3])))
        assert row["rate_rps"] == pytest.approx(0.6)

    def test_missing_aux_documents_tolerated(self):
        row = peer_row(
            "http://a:1",
            _scrape(history=None, alertz=None, crashz=None),
        )
        assert row["state"] == "up"
        assert row["rate_rps"] == 0.0
        assert row["cache_hit_rate"] is None

    def test_fabric_block_from_gauges(self):
        history = _history([90, 100])
        history["points"][-1]["gauges"] = {
            "service.fabric.remote_hit_rate": 0.5,
            "service.fabric.peers": 3,
            "service.fabric.degraded": 1,
        }
        row = peer_row(
            "http://a:1",
            _scrape(history=history, fabricz={"ok": True}),
        )
        assert row["fabric"] == {"hit_rate": 0.5, "peers": 3, "down": 1}


class TestFleetDoc:
    def _doc(self):
        return build_fleet_doc(
            {
                "http://a:1": _scrape(),
                "http://b:2": _scrape(
                    alertz={
                        "ok": True,
                        "alerts": [{"name": "x", "state": "firing"}],
                    }
                ),
                "http://c:3": {"ok": False, "error": "timed out"},
            },
            ts=1234.5,
        )

    def test_summary(self):
        doc = self._doc()
        assert doc["schema"] == FLEET_SCHEMA
        assert doc["ts"] == 1234.5
        assert [row["url"] for row in doc["peers"]] == [
            "http://a:1",
            "http://b:2",
            "http://c:3",
        ]
        assert doc["summary"] == {
            "peers": 3,
            "up": 1,
            "degraded": 1,
            "down": 1,
            "rate_rps": pytest.approx(4.0),
            "alerts_firing": 1,
        }

    def test_render(self):
        text = render_fleet(self._doc())
        assert "3 peers: 1 up, 1 degraded, 1 down" in text
        assert "PEER" in text and "P95ms" in text
        lines = text.splitlines()
        assert any(line.startswith("!! http://b:2") for line in lines)
        assert any(
            line.startswith("?? http://c:3") and "timed out" in line
            for line in lines
        )

    def test_empty_fleet(self):
        doc = build_fleet_doc({})
        assert doc["summary"]["peers"] == 0
        assert "0 peers" in render_fleet(doc)


class TestFleetDoctor:
    def test_healthy_fleet_exit_0(self):
        doc = build_fleet_doctor({"http://a:1": _scrape()})
        assert doc["schema"] == FLEET_DOCTOR_SCHEMA
        assert fleet_doctor_exit_code(doc) == 0
        assert "HEALTHY" in render_fleet_doctor(doc)

    def test_down_peer_exit_1(self):
        doc = build_fleet_doctor(
            {
                "http://a:1": _scrape(),
                "http://b:2": {"ok": False, "error": "refused"},
            }
        )
        assert fleet_doctor_exit_code(doc) == 1
        text = render_fleet_doctor(doc)
        assert "DEGRADED" in text
        assert "down: refused" in text

    def test_crash_report_exit_2_wins(self):
        crashz = {
            "ok": True,
            "crash": {
                "kind": "exception",
                "error": {"error_type": "RuntimeError"},
            },
        }
        doc = build_fleet_doctor(
            {
                "http://a:1": _scrape(crashz=crashz),
                "http://b:2": {"ok": False, "error": "refused"},
            }
        )
        assert fleet_doctor_exit_code(doc) == 2
        text = render_fleet_doctor(doc)
        assert "CRASHED" in text
        assert "RuntimeError" in text

    def test_firing_alerts_exit_1(self):
        doc = build_fleet_doctor(
            {
                "http://a:1": _scrape(
                    alertz={
                        "ok": True,
                        "alerts": [{"name": "x", "state": "firing"}],
                    }
                )
            }
        )
        assert fleet_doctor_exit_code(doc) == 1
        assert doc["peers"][0]["reasons"] == ["alerts firing: x"]

    def test_malformed_exit_code_defaults_to_1(self):
        assert fleet_doctor_exit_code({"exit_code": "nan-ish"}) == 1
