"""Tests for :mod:`repro.obs.live` -- cross-process trace plumbing."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import live
from repro.obs.accesslog import (
    ACCESS_LOG_SCHEMA,
    REQUIRED_KEYS,
    AccessLog,
    span_tree_from_snapshot,
)
from repro.obs.hist import (
    LATENCY_BUCKETS,
    HistogramStats,
    quantile_from_counts,
)


class TestTraceContext:
    def test_none_when_not_recording(self):
        assert obs.active() is None
        assert live.trace_context() is None

    def test_context_carries_trace_and_parent_ids(self):
        with obs.recording() as rec:
            ctx = live.trace_context()
        assert ctx is not None
        assert ctx["schema"] == live.TRACE_SCHEMA
        assert ctx["trace_id"] == rec.trace_id
        assert len(ctx["trace_id"]) == 32
        assert len(ctx["parent_span"]) == 16

    def test_trace_id_is_sticky_parent_span_is_fresh(self):
        with obs.recording() as rec:
            a = live.trace_context()
            b = live.trace_context()
        assert a["trace_id"] == b["trace_id"] == rec.trace_id
        assert a["parent_span"] != b["parent_span"]

    def test_span_args(self):
        assert live.span_args(None) == {}
        assert live.span_args({"parent_span": "abc"}) == {"span_id": "abc"}

    def test_child_recorder_adopts_context(self):
        ctx = {"schema": live.TRACE_SCHEMA, "trace_id": "t" * 32,
               "parent_span": "p" * 16}
        child = live.child_recorder(ctx)
        assert child.trace_id == "t" * 32
        assert child.parent_span_id == "p" * 16

    def test_child_recorder_without_context_mints_trace_id(self):
        child = live.child_recorder(None)
        assert child.trace_id is not None


class TestSnapshotRoundTrip:
    def _child_snapshot(self, ctx):
        child = live.child_recorder(ctx)
        with obs.recording(child):
            with obs.span("child.work", category="test", detail="x"):
                obs.counter("alg1.runs")
                obs.histogram(
                    "service.daemon.queue_wait_seconds",
                    0.002,
                    LATENCY_BUCKETS,
                )
        return live.snapshot(child)

    def test_snapshot_is_json_safe(self):
        with obs.recording():
            ctx = live.trace_context()
        snap = self._child_snapshot(ctx)
        assert snap["schema"] == live.SNAPSHOT_SCHEMA
        json.dumps(snap)  # must not raise

    def test_merge_brings_spans_counters_histograms(self):
        with obs.recording() as parent:
            ctx = live.trace_context()
            with obs.span("parent.call", **live.span_args(ctx)):
                pass
            snap = self._child_snapshot(ctx)
            merged = live.merge_snapshot(parent, snap)
        assert merged == 1
        names = [s.name for s in parent.spans]
        assert "child.work" in names
        assert parent.counters["alg1.runs"] == 1
        assert parent.counters["obs.snapshots_merged"] == 1
        hist = parent.histograms["service.daemon.queue_wait_seconds"]
        assert hist.count == 1
        # Flow link: one "s" at the parent anchor, one "f" at the child.
        assert [f.phase for f in parent.flows] == ["s", "f"]
        assert parent.flows[0].flow_id == ctx["parent_span"]

    def test_merge_refuses_other_trace(self):
        with obs.recording() as parent:
            ctx = live.trace_context()
            snap = self._child_snapshot(ctx)
            snap["trace_id"] = "0" * 32
            assert live.merge_snapshot(parent, snap) == 0

    def test_merge_tolerates_garbage(self):
        with obs.recording() as parent:
            assert live.merge_snapshot(parent, None) == 0
            assert live.merge_snapshot(parent, {"schema": "nope"}) == 0
            assert live.merge_snapshot(parent, {"schema": live.SNAPSHOT_SCHEMA,
                                                "spans": [{"bad": 1}]}) == 0
        assert live.merge_snapshot(None, {"schema": live.SNAPSHOT_SCHEMA}) == 0

    def test_merged_trace_validates_with_flow_events(self):
        with obs.recording() as parent:
            ctx = live.trace_context()
            with obs.span("parent.call", **live.span_args(ctx)):
                pass
            live.merge_snapshot(parent, self._child_snapshot(ctx))
        trace = obs.to_chrome_trace(parent)
        obs.validate_chrome_trace(trace)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"s", "f"} <= phases
        assert trace["otherData"]["trace_id"] == parent.trace_id

    def test_merged_spans_keep_child_pid(self):
        with obs.recording() as parent:
            ctx = live.trace_context()
            snap = self._child_snapshot(ctx)
            snap["pid"] = 99999  # pretend another process
            live.merge_snapshot(parent, snap)
        trace = obs.to_chrome_trace(parent)
        pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert 99999 in pids

    def test_merge_respects_span_bound(self):
        parent = live.child_recorder(None, max_spans=1)
        parent.trace_id = None  # adopt whatever comes in
        with obs.recording(parent):
            ctx = live.trace_context()
        snap = self._child_snapshot(ctx)
        snap["spans"] = snap["spans"] * 5
        merged = live.merge_snapshot(parent, snap)
        assert merged <= 1
        assert parent.dropped_spans >= 4


class TestHistogramQuantiles:
    def test_quantile_from_counts_interpolates(self):
        bounds = [1.0, 2.0, 4.0]
        counts = [0, 10, 0, 0]  # all mass in (1, 2]
        assert quantile_from_counts(bounds, counts, 0.5) == pytest.approx(1.5)
        assert quantile_from_counts(bounds, counts, 1.0) == pytest.approx(2.0)

    def test_quantile_empty_is_zero(self):
        assert quantile_from_counts([1.0], [0, 0], 0.5) == 0.0

    def test_histogram_merge_same_bounds(self):
        a = HistogramStats([1.0, 2.0])
        b = HistogramStats([1.0, 2.0])
        a.observe(0.5)
        b.observe(1.5)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.maximum == 3.0

    def test_histogram_from_dict_round_trip(self):
        a = HistogramStats(list(LATENCY_BUCKETS))
        a.observe(0.01)
        b = HistogramStats.from_dict(a.to_dict())
        assert b.to_dict() == a.to_dict()

    def test_from_dict_rejects_mismatched_counts(self):
        with pytest.raises(ValueError):
            HistogramStats.from_dict({"bounds": [1.0], "counts": [1]})


class TestAccessLog:
    def test_lines_are_schema_tagged_json(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLog(path) as log:
            log.record("daemon", "analyze", "chip", "ok", 0.01,
                       cache_hit=True)
            log.record("batch", "job", "chip2", "error", 0.5,
                       error="boom")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        for line in lines:
            assert line["schema"] == ACCESS_LOG_SCHEMA
            for key in REQUIRED_KEYS:
                assert key in line
        assert lines[0]["cache_hit"] is True
        assert lines[1]["error"] == "boom"
        assert log.lines_written == 2

    def test_slow_requests_attach_span_tree(self, tmp_path):
        child = live.child_recorder(None)
        with obs.recording(child):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        snap = live.snapshot(child)
        path = tmp_path / "access.jsonl"
        with AccessLog(path, slow_threshold_s=0.0) as log:
            log.record("daemon", "analyze", "chip", "ok", 0.2,
                       snapshot=snap)
        line = json.loads(path.read_text())
        assert line["slow"] is True
        tree = line["spans"]
        assert tree[0]["name"] == "outer"
        assert tree[0]["children"][0]["name"] == "inner"

    def test_fast_requests_stay_lean(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLog(path, slow_threshold_s=10.0) as log:
            log.record("daemon", "ping", None, "ok", 0.0001)
        line = json.loads(path.read_text())
        assert "spans" not in line and "slow" not in line

    def test_span_tree_from_snapshot_caps_spans(self):
        child = live.child_recorder(None)
        with obs.recording(child):
            for i in range(20):
                with obs.span(f"s{i}"):
                    pass
        tree = span_tree_from_snapshot(live.snapshot(child), max_spans=5)
        count = 0
        stack = list(tree)
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.get("children", ()))
        assert count == 5

    def test_write_failures_never_raise(self, tmp_path):
        class Boom:
            def write(self, data):
                raise OSError("disk full")

            def flush(self):
                raise OSError("disk full")

        log = AccessLog(Boom())
        log.record("daemon", "ping", None, "ok", 0.0)
        assert log.lines_written == 0
