"""Tests for the repro.obs instrumentation core."""

import math
import time

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leak():
    """Every test must leave the process-wide recorder disabled."""
    assert obs.active() is None
    yield
    assert obs.active() is None


class TestDisabledNoOp:
    def test_disabled_by_default(self):
        assert obs.active() is None

    def test_span_returns_shared_null_object(self):
        first = obs.span("anything", category="x", arg=1)
        second = obs.span("other")
        assert first is obs.NULL_SPAN
        assert second is obs.NULL_SPAN
        with first:
            pass  # enter/exit must be no-ops

    def test_counter_gauge_event_noop(self):
        obs.counter("c", 5)
        obs.gauge("g", 1.0)
        obs.event("e", detail="ignored")
        assert obs.active() is None

    def test_null_span_reentrant(self):
        with obs.span("a"):
            with obs.span("b"):
                pass

    def test_disabled_overhead_is_small(self):
        """The disabled path must stay within a small constant factor of
        an empty loop (sanity bound, deliberately loose for CI noise)."""
        n = 20_000

        def empty():
            for __ in range(n):
                pass

        def instrumented():
            for __ in range(n):
                with obs.span("x"):
                    obs.counter("c")

        empty()  # warm up
        instrumented()
        t0 = time.perf_counter()
        empty()
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        instrumented()
        cost = time.perf_counter() - t0
        # ~3 global reads + a with-block per iteration; generous bound.
        assert cost < max(base * 60, 0.25)


class TestRecording:
    def test_recording_installs_and_restores(self):
        with obs.recording() as rec:
            assert obs.active() is rec
        assert obs.active() is None

    def test_recording_restores_previous(self):
        outer = obs.Recorder()
        with obs.recording(outer):
            with obs.recording() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.recording():
                raise RuntimeError("boom")
        assert obs.active() is None

    def test_counters_accumulate(self):
        with obs.recording() as rec:
            obs.counter("hits")
            obs.counter("hits", 2)
            obs.counter("misses", 0.5)
        assert rec.counters == {"hits": 3.0, "misses": 0.5}

    def test_gauges_overwrite(self):
        with obs.recording() as rec:
            obs.gauge("wns", -1.5)
            obs.gauge("wns", 2.5)
            rec.gauge_max("peak", 1.0)
            rec.gauge_max("peak", 0.5)
        assert rec.gauges == {"wns": 2.5, "peak": 1.0}

    def test_events_recorded_with_args(self):
        with obs.recording() as rec:
            obs.event("round_done", round=3, ok=True)
        assert len(rec.events) == 1
        assert rec.events[0].name == "round_done"
        assert dict(rec.events[0].args) == {"round": 3, "ok": True}


class TestSpans:
    def test_span_records_duration(self):
        with obs.recording() as rec:
            with obs.span("work"):
                time.sleep(0.002)
        assert len(rec.spans) == 1
        record = rec.spans[0]
        assert record.name == "work"
        assert record.duration >= 0.001
        assert record.depth == 0

    def test_span_nesting_depths(self):
        with obs.recording() as rec:
            with obs.span("outer"):
                with obs.span("inner"):
                    with obs.span("leaf"):
                        pass
                with obs.span("inner2"):
                    pass
        depths = {r.name: r.depth for r in rec.spans}
        assert depths == {"outer": 0, "inner": 1, "leaf": 2, "inner2": 1}
        # Children complete before parents.
        names = [r.name for r in rec.spans]
        assert names.index("leaf") < names.index("inner")
        assert names.index("inner") < names.index("outer")

    def test_span_stats_aggregate(self):
        with obs.recording() as rec:
            for __ in range(5):
                with obs.span("repeat"):
                    pass
        stats = rec.span_stats["repeat"]
        assert stats.count == 5
        assert stats.total >= 0.0
        assert stats.minimum <= stats.maximum
        assert math.isclose(stats.mean, stats.total / 5)

    def test_span_cap_drops_but_keeps_aggregates(self):
        with obs.recording(obs.Recorder(max_spans=3)) as rec:
            for __ in range(10):
                with obs.span("s"):
                    pass
        assert len(rec.spans) == 3
        assert rec.dropped_spans == 7
        assert rec.span_stats["s"].count == 10

    def test_event_cap(self):
        with obs.recording(obs.Recorder(max_events=2)) as rec:
            for index in range(5):
                obs.event("e", index=index)
        assert len(rec.events) == 2
        assert rec.dropped_events == 3

    def test_span_args_preserved(self):
        with obs.recording() as rec:
            with obs.span("pass", category="slack", cluster="c0", index=2):
                pass
        record = rec.spans[0]
        assert record.category == "slack"
        assert dict(record.args) == {"cluster": "c0", "index": 2}


class TestPhaseTree:
    def test_tree_reconstruction(self):
        with obs.recording() as rec:
            with obs.span("root"):
                with obs.span("child_a"):
                    with obs.span("grand"):
                        pass
                with obs.span("child_b"):
                    pass
        roots = obs.build_phase_tree(rec)
        assert len(roots) == 1
        root = roots[0]
        assert root.record.name == "root"
        assert [c.record.name for c in root.children] == [
            "child_a",
            "child_b",
        ]
        assert root.children[0].children[0].record.name == "grand"

    def test_render_contains_names_and_counters(self):
        with obs.recording() as rec:
            with obs.span("phase1"):
                pass
            obs.counter("things", 7)
        text = obs.render_phase_tree(rec)
        assert "phase1" in text
        assert "things" in text and "7" in text

    def test_render_empty_recording(self):
        with obs.recording() as rec:
            pass
        assert "no spans" in obs.render_phase_tree(rec)


class TestThreadLocalBinding:
    """PR 10: per-thread recorder binding (`obs.bound`) -- the daemon
    traces concurrent requests without a process-wide lock."""

    def test_bound_overrides_within_thread(self):
        with obs.recording() as ambient:
            private = obs.Recorder()
            with obs.bound(private):
                assert obs.active() is private
                obs.counter("inner")
                with obs.span("inner_span"):
                    pass
            assert obs.active() is ambient
            obs.counter("outer")
        assert private.counters.get("inner") == 1
        assert [s.name for s in private.spans] == ["inner_span"]
        assert "inner" not in ambient.counters
        assert ambient.counters.get("outer") == 1

    def test_bound_none_silences_a_thread(self):
        with obs.recording() as ambient:
            with obs.bound(None):
                assert obs.active() is None
                obs.counter("dropped")  # no-op: bound to None
            obs.counter("kept")
        assert "dropped" not in ambient.counters
        assert ambient.counters.get("kept") == 1

    def test_other_threads_see_the_ambient_recorder(self):
        import threading

        seen = {}
        gate = threading.Event()
        release = threading.Event()

        def other():
            gate.wait(timeout=10.0)
            seen["recorder"] = obs.active()
            obs.counter("from_other_thread")
            release.set()

        with obs.recording() as ambient:
            private = obs.Recorder()
            thread = threading.Thread(target=other)
            thread.start()
            with obs.bound(private):
                gate.set()  # the other thread samples while we're bound
                assert release.wait(timeout=10.0)
            thread.join(timeout=10.0)
            assert seen["recorder"] is ambient
        assert ambient.counters.get("from_other_thread") == 1
        assert "from_other_thread" not in private.counters

    def test_bound_restores_on_exception(self):
        with obs.recording() as ambient:
            private = obs.Recorder()
            with pytest.raises(RuntimeError):
                with obs.bound(private):
                    raise RuntimeError("boom")
            assert obs.active() is ambient

    def test_bindings_nest(self):
        with obs.recording():
            first, second = obs.Recorder(), obs.Recorder()
            with obs.bound(first):
                with obs.bound(second):
                    assert obs.active() is second
                assert obs.active() is first
