"""Tests for the shared histogram support (repro.obs.hist)."""

import json
import math

import pytest

from repro import obs
from repro.obs.hist import (
    DEFAULT_BUCKETS,
    HistogramStats,
    bucket_counts,
    equal_width_edges,
    quantile_from_counts,
)


@pytest.fixture(autouse=True)
def _no_leak():
    assert obs.active() is None
    yield
    assert obs.active() is None


class TestHistogramStats:
    def test_le_semantics(self):
        hist = HistogramStats(bounds=(0.0, 1.0, 2.0))
        hist.observe(0.0)   # on a bound -> that bucket (le)
        hist.observe(0.5)
        hist.observe(2.0)
        hist.observe(5.0)   # overflow -> +Inf bucket
        assert hist.counts == [1, 1, 1, 1]
        assert hist.count == 4

    def test_cumulative_rows_end_with_inf(self):
        hist = HistogramStats(bounds=(0.0, 1.0))
        for value in (-1.0, 0.5, 3.0):
            hist.observe(value)
        rows = hist.cumulative()
        assert rows == [("0", 1), ("1", 2), ("+Inf", 3)]
        # Cumulative counts are monotone.
        counts = [count for __, count in rows]
        assert counts == sorted(counts)

    def test_summary_stats(self):
        hist = HistogramStats()
        for value in (-2.0, 1.0, 4.0):
            hist.observe(value)
        assert hist.total == pytest.approx(3.0)
        assert hist.mean == pytest.approx(1.0)
        assert hist.minimum == -2.0
        assert hist.maximum == 4.0

    def test_bounds_are_sorted(self):
        hist = HistogramStats(bounds=(5.0, 1.0, 3.0))
        assert hist.bounds == (1.0, 3.0, 5.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            HistogramStats(bounds=())

    def test_to_dict_json_safe(self):
        hist = HistogramStats(bounds=(0.0,))
        payload = hist.to_dict()
        assert payload["count"] == 0
        assert payload["min"] == 0.0  # not inf when empty
        json.dumps(payload)


class TestQuantileEdgeCases:
    """PR-6 regression: quantiles stay finite on degenerate shapes."""

    def test_all_overflow_clamps_to_observed_maximum(self):
        # Every sample past the last bound used to put the quantile in
        # the +Inf bucket and return a non-finite answer.
        hist = HistogramStats(bounds=(0.1, 1.0))
        for value in (5.0, 7.0, 9.0):
            hist.observe(value)
        for q in (0.0, 0.5, 0.95, 1.0):
            value = hist.quantile(q)
            assert math.isfinite(value), q
        assert hist.quantile(0.5) == 9.0  # clamped at observed max
        assert hist.quantile(0.95) == 9.0

    def test_all_overflow_without_maximum_clamps_to_last_bound(self):
        value = quantile_from_counts((0.1, 1.0), (0, 0, 4), 0.95)
        assert value == 1.0

    def test_empty_histogram_quantile_is_zero(self):
        hist = HistogramStats(bounds=(0.1, 1.0))
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.95) == 0.0

    def test_empty_counts_and_empty_bounds(self):
        assert quantile_from_counts((0.1,), (0, 0), 0.5) == 0.0
        # No bounds at all used to IndexError on bounds[-1].
        assert quantile_from_counts((), (), 0.5) == 0.0
        assert quantile_from_counts((), (3,), 0.5) == 0.0

    def test_q_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            quantile_from_counts((1.0,), (1, 0), 1.5)


class TestSharedBucketing:
    def test_equal_width_edges_exact_endpoints(self):
        edges = equal_width_edges(0.1, 0.7, 3)
        assert len(edges) == 4
        assert edges[0] == 0.1
        assert edges[-1] == 0.7  # exactly, no floating-point creep

    def test_equal_width_edges_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            equal_width_edges(0.0, 1.0, 0)

    def test_bucket_counts_last_bin_inclusive(self):
        edges = [0.0, 1.0, 2.0]
        counts = bucket_counts([0.0, 0.5, 1.0, 2.0], edges)
        # Left-inclusive buckets; the maximum lands in the last bin.
        assert counts == [2, 2]

    def test_bucket_counts_total(self):
        values = [float(i) for i in range(10)]
        counts = bucket_counts(values, equal_width_edges(0.0, 9.0, 4))
        assert sum(counts) == len(values)


class TestRecorderHistograms:
    def test_disabled_is_noop(self):
        obs.histogram("anything", 1.0)  # must not raise

    def test_records_into_default_buckets(self):
        with obs.recording() as rec:
            obs.histogram("slack.endpoint", -3.0)
            obs.histogram("slack.endpoint", 0.25)
        hist = rec.histograms["slack.endpoint"]
        assert hist.bounds == tuple(sorted(DEFAULT_BUCKETS))
        assert hist.count == 2
        assert hist.minimum == -3.0

    def test_custom_buckets_fixed_on_first_observation(self):
        with obs.recording() as rec:
            rec.histogram("x", 1.0, buckets=(0.0, 2.0))
            rec.histogram("x", 5.0, buckets=(100.0,))  # ignored
        assert rec.histograms["x"].bounds == (0.0, 2.0)
        assert rec.histograms["x"].count == 2


class TestExport:
    def test_metrics_dict_includes_histograms(self):
        with obs.recording() as rec:
            rec.histogram("h", 0.75)
        data = obs.metrics_dict(rec)
        assert data["histograms"]["h"]["count"] == 1
        assert data["histograms"]["h"]["sum"] == pytest.approx(0.75)

    def test_prometheus_exposition(self):
        with obs.recording() as rec:
            rec.histogram("slack.endpoint", -1.5)
            rec.histogram("slack.endpoint", 0.3)
        text = obs.render_prometheus(rec)
        assert "# TYPE repro_slack_endpoint histogram" in text
        assert 'repro_slack_endpoint_bucket{le="+Inf"} 2' in text
        assert "repro_slack_endpoint_sum -1.2" in text
        assert "repro_slack_endpoint_count 2" in text

    def test_statistics_mirror(self, lib):
        """timing_statistics feeds the recorder histogram when enabled."""
        from repro.core.analyzer import Hummingbird
        from tests.conftest import build_ff_stage

        network, schedule = build_ff_stage(lib, chain=2, period=100.0)
        with obs.recording() as rec:
            analyzer = Hummingbird(network, schedule)
            analyzer.analyze()
            stats = analyzer.statistics()
        hist = rec.histograms["slack.endpoint"]
        finite = [
            count
            for __, count in stats.histogram
        ]
        assert hist.count == sum(finite)
        assert not math.isinf(hist.maximum)
