"""Tests for the span-attributed sampling profiler (repro.obs.profile)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import obs
from repro.obs.profile import (
    PROFILE_SCHEMA,
    UNATTRIBUTED,
    SamplingProfiler,
    merge_profiles,
    to_collapsed,
    to_speedscope,
    write_speedscope,
)


@pytest.fixture(autouse=True)
def _no_leak():
    assert obs.active() is None
    yield
    assert obs.active() is None


def _burn(deadline_s: float = 0.15) -> int:
    """Busy loop: guaranteed on-CPU Python frames to sample."""
    total = 0
    stop = time.perf_counter() + deadline_s
    while time.perf_counter() < stop:
        total += sum(range(200))
    return total


class TestSampling:
    def test_samples_and_attributes_under_spans(self):
        with obs.recording() as rec:
            profiler = SamplingProfiler(hz=400, recorder=rec)
            profiler.start()
            with obs.span("phase.outer"):
                with obs.span("phase.inner"):
                    _burn()
            doc = profiler.stop()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["samples"] > 0
        assert doc["attributed"] > 0
        assert doc["hz"] == 400
        assert doc["duration_s"] > 0
        spans = {row["span"] for row in doc["stacks"]}
        assert any("phase.outer;phase.inner" in s for s in spans)
        # Frames are root-first; the busy loop's leaf is _burn.
        busy = [
            row
            for row in doc["stacks"]
            if row["span"].endswith("phase.inner")
        ]
        assert busy, spans
        assert any("_burn" in row["frames"][-1] for row in busy)

    def test_unattributed_without_recorder(self):
        profiler = SamplingProfiler(hz=400, recorder=None)
        # No process-wide recorder either (the autouse fixture
        # guarantees it), so start() binds to nothing.
        profiler.start()
        _burn()
        doc = profiler.stop()
        assert doc["samples"] > 0
        assert doc["attributed"] == 0
        assert {row["span"] for row in doc["stacks"]} == {UNATTRIBUTED}

    def test_waiter_leaf_counts_as_idle(self):
        release = threading.Event()
        started = threading.Event()

        def _parked():
            started.set()
            release.wait(5.0)  # leaf co_name "wait" -> idle

        waiter = threading.Thread(target=_parked, daemon=True)
        waiter.start()
        started.wait(5.0)
        profiler = SamplingProfiler(
            hz=400, threads=[waiter.ident]
        )
        profiler.start()
        time.sleep(0.1)
        doc = profiler.stop()
        release.set()
        waiter.join(timeout=5.0)
        assert doc["idle"] > 0
        assert doc["samples"] == 0  # idle samples are not stack rows

    def test_context_manager_and_result_while_running(self):
        with obs.recording() as rec:
            with SamplingProfiler(hz=400, recorder=rec) as profiler:
                with obs.span("phase.live"):
                    _burn(0.1)
                    live = profiler.result()
                assert profiler.running
            assert not profiler.running
        assert live["schema"] == PROFILE_SCHEMA
        assert live["duration_s"] > 0

    def test_own_thread_never_sampled(self):
        profiler = SamplingProfiler(hz=1000)
        profiler.start()
        time.sleep(0.1)
        doc = profiler.stop()
        for row in doc["stacks"]:
            assert "_sample_once" not in ";".join(row["frames"])

    def test_max_stacks_folds_into_truncated(self):
        def _shape_a(stop):
            while time.perf_counter() < stop:
                sum(range(100))

        def _shape_b(stop):
            while time.perf_counter() < stop:
                max(range(100))

        profiler = SamplingProfiler(hz=1000, max_stacks=1)
        profiler.start()
        # Two distinct stack shapes guarantee a second key that must
        # fold into the truncated row once the first slot is taken.
        for __ in range(4):
            _shape_a(time.perf_counter() + 0.05)
            _shape_b(time.perf_counter() + 0.05)
        doc = profiler.stop()
        assert doc["samples"] > 1
        assert len(doc["stacks"]) <= 2  # one real key + "(truncated)"
        assert any(
            row["span"] == "(truncated)" for row in doc["stacks"]
        )

    def test_rejects_bad_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-5)

    def test_double_start_rejected(self):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()


class TestMerge:
    def _doc(self, pid, span="alg1.iteration", count=3):
        return {
            "schema": PROFILE_SCHEMA,
            "pid": pid,
            "hz": 100.0,
            "started_wall": 1000.0 + pid,
            "duration_s": 1.0,
            "samples": count,
            "attributed": count,
            "idle": 1,
            "dropped_ticks": 0,
            "stacks": [
                {"span": span, "frames": ["main", "work"], "count": count}
            ],
        }

    def test_merge_sums_and_stamps_pids(self):
        merged = merge_profiles([self._doc(11), self._doc(22, count=2)])
        assert merged["schema"] == PROFILE_SCHEMA
        assert merged["pids"] == [11, 22]
        assert merged["samples"] == 5
        assert merged["attributed"] == 5
        assert merged["idle"] == 2
        assert merged["duration_s"] == 2.0
        assert merged["started_wall"] == 1011.0  # earliest wins
        assert {row["pid"] for row in merged["stacks"]} == {11, 22}

    def test_merge_skips_invalid_entries(self):
        merged = merge_profiles(
            [None, {"schema": "nope"}, 42, self._doc(7)]
        )
        assert merged["pids"] == [7]
        assert merged["samples"] == 3

    def test_merged_doc_is_itself_mergeable(self):
        merged = merge_profiles([self._doc(1), self._doc(2)])
        again = merge_profiles([merged, self._doc(3)])
        assert set(again["pids"]) >= {3}
        assert again["samples"] == 9


class TestExporters:
    def _doc(self):
        return {
            "schema": PROFILE_SCHEMA,
            "pid": 5,
            "hz": 100.0,
            "started_wall": None,
            "duration_s": 0.5,
            "samples": 4,
            "attributed": 4,
            "idle": 0,
            "dropped_ticks": 0,
            "stacks": [
                {
                    "span": "a;b",
                    "frames": ["root (m.py:1)", "leaf (m.py:2)"],
                    "count": 3,
                },
                {"span": UNATTRIBUTED, "frames": ["x (n.py:9)"], "count": 1},
            ],
        }

    def test_collapsed_format(self):
        text = to_collapsed(self._doc())
        lines = text.strip().splitlines()
        assert lines[0] == "[span] a;[span] b;root (m.py:1);leaf (m.py:2) 3"
        assert lines[1].endswith(" 1")
        assert to_collapsed({"stacks": []}) == ""

    def test_collapsed_prefixes_pid_on_merged_rows(self):
        doc = merge_profiles([self._doc()])
        text = to_collapsed(doc)
        assert text.startswith("pid 5;")

    def test_speedscope_structure_and_weights(self):
        scope = to_speedscope(self._doc(), name="unit")
        assert scope["$schema"].endswith("file-format-schema.json")
        assert scope["name"] == "unit"
        names = [f["name"] for f in scope["shared"]["frames"]]
        assert "[span] a" in names and "[span] b" in names
        (profile,) = scope["profiles"]
        assert profile["type"] == "sampled"
        assert profile["unit"] == "seconds"
        # 3 samples at 100 Hz = 30 ms; 1 sample = 10 ms.
        assert profile["weights"] == [0.03, 0.01]
        assert profile["endValue"] == pytest.approx(0.04)
        # Sample index vectors resolve inside the frame table.
        for sample in profile["samples"]:
            assert all(0 <= idx < len(names) for idx in sample)

    def test_speedscope_one_profile_per_pid(self):
        merged = merge_profiles(
            [self._doc(), dict(self._doc(), pid=6)]
        )
        scope = to_speedscope(merged)
        assert [p["name"] for p in scope["profiles"]] == [
            "pid 5",
            "pid 6",
        ]

    def test_write_speedscope_round_trip(self, tmp_path):
        target = tmp_path / "out.speedscope.json"
        written = write_speedscope(self._doc(), target)
        assert written == target
        data = json.loads(target.read_text())
        assert data["name"] == "out.speedscope"
        assert data["profiles"]


class TestProfileTable:
    def test_phase_function_rows(self):
        doc = {
            "schema": PROFILE_SCHEMA,
            "hz": 100.0,
            "samples": 10,
            "attributed": 8,
            "duration_s": 0.1,
            "stacks": [
                {
                    "span": "cli.analyze;alg1.run",
                    "frames": ["a (x.py:1)", "b (x.py:2)"],
                    "count": 6,
                },
                {
                    "span": "cli.analyze",
                    "frames": ["a (x.py:1)"],
                    "count": 4,
                },
            ],
        }
        rows = obs.profile_table(doc)
        assert rows[0]["phase"] == "alg1.run"
        assert rows[0]["function"] == "b (x.py:2)"
        assert rows[0]["samples"] == 6
        assert rows[0]["share"] == pytest.approx(0.6)
        text = obs.render_profile_table(doc)
        assert "alg1.run" in text
        assert "100.0 Hz" in text or "100 Hz" in text

    def test_limit_and_empty(self):
        doc = {"schema": PROFILE_SCHEMA, "samples": 0, "stacks": []}
        assert obs.profile_table(doc) == []
        assert "0 samples" in obs.render_profile_table(doc)


class TestRecorderUnderSampler:
    """Satellite: recorder span-stack thread-safety under the sampler."""

    def test_concurrent_spans_while_sampling(self):
        errors = []

        def _worker(rec):
            try:
                for index in range(300):
                    with obs.span(f"load.w{index % 3}"):
                        with obs.span("load.inner"):
                            sum(range(50))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with obs.recording() as rec:
            profiler = SamplingProfiler(hz=1000, recorder=rec)
            profiler.start()
            threads = [
                threading.Thread(target=_worker, args=(rec,))
                for __ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            doc = profiler.stop()
        assert errors == []
        assert doc["samples"] >= 0  # no crash is the bar; counts vary
        # Every span stack drained: no thread left a dangling entry.
        for tid in list(rec._span_stacks):
            assert rec.active_span_stack(tid) == ()

    def test_span_stack_push_pop_visible_to_reader(self):
        with obs.recording() as rec:
            tid = threading.get_ident()
            assert rec.active_span_stack(tid) == ()
            with obs.span("outer"):
                with obs.span("inner"):
                    stack = rec.active_span_stack(tid)
                    assert [name for name, __ in stack] == [
                        "outer",
                        "inner",
                    ]
                    assert rec.active_span(tid)[0] == "inner"
            assert rec.active_span_stack(tid) == ()
            assert rec.active_span(tid) is None
