"""Tail-sampled trace store + exemplar plumbing (PR 9)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.hist import LATENCY_BUCKETS, HistogramStats
from repro.obs.metrics import render_prometheus
from repro.obs.tracestore import (
    TRACE_DOC_SCHEMA,
    TailSampler,
    TraceStore,
)


def _tid(suffix: str, fill: str = "a") -> str:
    """A 32-hex trace id with a chosen low-order tail (the hash arm
    only looks at the last 8 hex digits)."""
    return (fill * (32 - len(suffix))) + suffix


class TestTailSampler:
    def test_errors_always_kept(self):
        sampler = TailSampler(sample_rate=0.0, min_count=1)
        sampler.decide("ok", 0.001, _tid("ffffffff"))
        assert sampler.decide("error", 0.0, _tid("ffffffff")) == "error"

    def test_everything_slow_during_warmup(self):
        sampler = TailSampler(sample_rate=0.0, min_count=5)
        for _ in range(4):
            assert sampler.decide("ok", 0.001, _tid("ffffffff")) == "slow"

    def test_slow_threshold_is_dynamic_p95(self):
        sampler = TailSampler(sample_rate=0.0, min_count=10)
        for _ in range(20):
            sampler.decide("ok", 0.001, _tid("ffffffff"))
        assert sampler.slow_threshold() is not None
        # Far above the p95 of the traffic seen so far: kept.
        assert sampler.decide("ok", 5.0, _tid("ffffffff")) == "slow"
        # Far below it: the probabilistic arm (rate 0) drops it.
        assert sampler.decide("ok", 0.0, _tid("ffffffff")) is None

    def test_probabilistic_arm_is_deterministic_per_id(self):
        sampler = TailSampler(sample_rate=0.05, min_count=10)
        for _ in range(20):
            sampler.decide("ok", 0.001, _tid("ffffffff"))
        # last-8 = 00000000 -> hash unit 0.0 < 0.05: always sampled.
        assert sampler.decide("ok", 0.0, _tid("00000000")) == "sampled"
        # last-8 = ffffffff -> hash unit ~1.0: always dropped.
        assert sampler.decide("ok", 0.0, _tid("ffffffff")) is None
        # Same id, same answer (restart-stable, cross-daemon agreement).
        assert sampler.decide("ok", 0.0, _tid("00000000")) == "sampled"

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            TailSampler(sample_rate=1.5)


class TestTraceStore:
    def _store(self, tmp_path, **kw):
        kw.setdefault("sampler", TailSampler(sample_rate=0.0, min_count=1))
        return TraceStore(tmp_path / "traces", **kw)

    def test_error_round_trip(self, tmp_path):
        store = self._store(tmp_path)
        tid = _tid("00000001")
        reason = store.offer(
            tid,
            status="error",
            duration_s=0.5,
            op="analyze",
            design="pipeline",
            error={"error": "boom", "error_type": "ValueError"},
            snapshot={"spans": []},
        )
        assert reason == "error"
        doc = store.get(tid)
        assert doc["schema"] == TRACE_DOC_SCHEMA
        assert doc["trace_id"] == tid
        assert doc["status"] == "error"
        assert doc["sampling"] == "error"
        assert doc["error"]["error_type"] == "ValueError"
        assert store.stats()["traces"] == 1

    def test_dropped_trace_not_written(self, tmp_path):
        sampler = TailSampler(sample_rate=0.0, min_count=1)
        sampler.decide("ok", 0.001, _tid("ffffffff"))  # warm past 1
        store = TraceStore(tmp_path / "traces", sampler=sampler)
        assert store.offer(
            _tid("ffffffff"), status="ok", duration_s=0.0
        ) is None
        assert store.stats()["traces"] == 0
        assert store.list() == []

    def test_invalid_ids_rejected(self, tmp_path):
        store = self._store(tmp_path)
        for bad in (None, "", "xyz", "ABCDEF123456", "../../etc/passwd"):
            assert store.offer(bad, status="error", duration_s=0.0) is None
            assert store.get(bad) is None
        assert store.stats()["traces"] == 0

    def test_eviction_is_oldest_first(self, tmp_path):
        store = self._store(tmp_path, max_bytes=600)
        ids = [_tid(f"{i:08x}") for i in range(6)]
        for tid in ids:
            store.offer(tid, status="error", duration_s=0.1)
        stats = store.stats()
        assert stats["bytes"] <= 600
        assert 1 <= stats["traces"] < 6
        # The newest trace always survives; the oldest went first.
        assert store.get(ids[-1]) is not None
        assert store.get(ids[0]) is None
        kept = {row["trace_id"] for row in store.list()}
        assert kept == set(ids[-stats["traces"]:])

    def test_restart_rescans_existing_documents(self, tmp_path):
        first = self._store(tmp_path)
        ids = [_tid(f"{i:08x}") for i in range(3)]
        for tid in ids:
            first.offer(tid, status="error", duration_s=0.1)
        reborn = self._store(tmp_path)
        assert reborn.stats()["traces"] == 3
        assert [row["trace_id"] for row in reborn.list(2)] == [
            ids[2],
            ids[1],
        ]
        assert reborn.get(ids[0])["trace_id"] == ids[0]

    def test_list_skips_corrupt_documents(self, tmp_path):
        store = self._store(tmp_path)
        tid = _tid("00000001")
        store.offer(tid, status="error", duration_s=0.1)
        (tmp_path / "traces" / f"{tid}.json").write_text("{broken")
        assert store.get(tid) is None
        assert store.list() == []

    def test_unwritable_root_never_raises(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        with obs.recording() as rec:
            store = TraceStore(blocker / "traces")
            store.offer(_tid("00000001"), status="error", duration_s=0.1)
            assert store.get(_tid("00000001")) is None
        assert rec.counters.get("service.tracestore.write_errors", 0) >= 1

    def test_keep_counters(self, tmp_path):
        with obs.recording() as rec:
            store = self._store(tmp_path)
            store.offer(_tid("00000001"), status="error", duration_s=0.1)
        assert rec.counters["service.tracestore.kept"] == 1
        assert rec.counters["service.tracestore.kept_error"] == 1


class TestExemplars:
    def test_histogram_keeps_latest_exemplar_per_bucket(self):
        hist = HistogramStats(LATENCY_BUCKETS)
        hist.observe(0.002, exemplar={"trace_id": _tid("01"), "ts": 1.0})
        hist.observe(0.002, exemplar={"trace_id": _tid("02"), "ts": 2.0})
        hist.observe(0.002)  # no exemplar: previous one sticks
        assert len(hist.exemplars) == 1
        ((__, kept),) = hist.exemplars.items()
        assert kept["trace_id"] == _tid("02")

    def test_render_prometheus_emits_openmetrics_exemplar(self):
        with obs.recording() as rec:
            rec.histogram(
                "service.daemon.request_seconds",
                0.002,
                exemplar={"trace_id": _tid("ab"), "ts": 3.0},
            )
            rec.histogram("service.daemon.request_seconds", 0.002)
            text = render_prometheus(rec)
        exemplar_lines = [
            line for line in text.splitlines() if "# {" in line
        ]
        assert len(exemplar_lines) == 1
        line = exemplar_lines[0]
        assert "_bucket" in line
        assert f'# {{trace_id="{_tid("ab")}"}}' in line
        # Suffix shape: ... # {labels} value ts
        tail = line.split("} ", 2)[-1].split()
        assert float(tail[0]) == pytest.approx(0.002)

    def test_exemplar_only_on_its_bucket(self):
        with obs.recording() as rec:
            rec.histogram("h", 0.002, exemplar={"trace_id": _tid("ab")})
            rec.histogram("h", 5.0)
            text = render_prometheus(rec)
        bucket_lines = [
            line
            for line in text.splitlines()
            if "h_bucket" in line and "# {" in line
        ]
        assert len(bucket_lines) == 1

    def test_metrics_json_unaffected_by_exemplars(self):
        with obs.recording() as rec:
            rec.histogram("h", 0.002, exemplar={"trace_id": _tid("ab")})
            doc = obs.metrics_dict(rec)
        assert json.dumps(doc)  # still plain JSON-serialisable
