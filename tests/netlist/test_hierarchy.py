"""Unit tests for module definitions and flattening."""

import pytest

from repro.netlist import (
    ModuleDefinition,
    ModuleSpec,
    NetworkBuilder,
    flatten,
    validate_network,
)
from repro.netlist.kinds import Unateness


def _make_module(lib, name="M"):
    """A two-input, one-output module: Z = NAND(INV(A), B)."""
    inner_b = NetworkBuilder(lib, name="inner")
    inner_b.gate("i1", "INV", A="pa", Z="na")
    inner_b.gate("n1", "NAND2", A="na", B="pb", Z="pz")
    return ModuleSpec(
        name,
        ModuleDefinition(
            inner_b.build(),
            input_ports={"A": "pa", "B": "pb"},
            output_ports={"Z": "pz"},
        ),
    )


class TestModuleDefinition:
    def test_reachable_pairs(self, lib):
        spec = _make_module(lib)
        assert set(spec.arcs) == {("A", "Z"), ("B", "Z")}
        assert all(
            arc.unateness is Unateness.NON_UNATE for arc in spec.arcs.values()
        )

    def test_unreachable_pair_excluded(self, lib):
        inner_b = NetworkBuilder(lib, name="inner")
        inner_b.gate("i1", "INV", A="pa", Z="pz1")
        inner_b.gate("i2", "INV", A="pb", Z="pz2")
        spec = ModuleSpec(
            "M2",
            ModuleDefinition(
                inner_b.build(),
                input_ports={"A": "pa", "B": "pb"},
                output_ports={"Y": "pz1", "Z": "pz2"},
            ),
        )
        assert set(spec.arcs) == {("A", "Y"), ("B", "Z")}

    def test_rejects_sequential_inner_cells(self, lib):
        inner_b = NetworkBuilder(lib, name="inner")
        inner_b.clock("clk")
        inner_b.latch("l", "DFF", D="pa", CK="clk", Q="pz")
        with pytest.raises(ValueError, match="combinational"):
            ModuleDefinition(
                inner_b.build(),
                input_ports={"A": "pa"},
                output_ports={"Z": "pz"},
            )

    def test_rejects_dangling_port(self, lib):
        inner_b = NetworkBuilder(lib, name="inner")
        inner_b.gate("i1", "INV", A="pa", Z="pz")
        with pytest.raises(KeyError):
            ModuleDefinition(
                inner_b.build(),
                input_ports={"A": "pa"},
                output_ports={"Z": "nonexistent"},
            )


def _top_with_module(lib):
    spec = _make_module(lib)
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("ia", "wa", clock="clk")
    b.input("ib", "wb", clock="clk")
    b.instantiate("m1", spec, A="wa", B="wb", Z="wz")
    b.latch("l", "DFF", D="wz", CK="clk", Q="wq")
    b.output("o", "wq", clock="clk")
    return b.build()


class TestFlatten:
    def test_flatten_expands_cells(self, lib):
        top = _top_with_module(lib)
        flat = flatten(top)
        assert not top.has_cell("m1.i1")
        assert flat.has_cell("m1.i1")
        assert flat.has_cell("m1.n1")
        assert not flat.has_cell("m1")
        # 2 inner gates replace 1 module instance.
        assert flat.num_cells == top.num_cells + 1

    def test_flat_network_validates(self, lib):
        flat = flatten(_top_with_module(lib))
        assert validate_network(flat, {"clk"}).ok

    def test_port_nets_merged(self, lib):
        flat = flatten(_top_with_module(lib))
        # The inner NAND's output merges with the outer net wz.
        nand_z = flat.cell("m1.n1").terminal("Z")
        assert nand_z.net is not None
        assert nand_z.net.name == "wz"
        assert flat.cell("l").terminal("D").net is nand_z.net

    def test_inner_nets_prefixed(self, lib):
        flat = flatten(_top_with_module(lib))
        inv_out = flat.cell("m1.i1").terminal("Z")
        assert inv_out.net.name == "m1.na"

    def test_nested_modules(self, lib):
        inner_spec = _make_module(lib, "INNER")
        mid_b = NetworkBuilder(lib, name="mid")
        mid_b.gate("buf", "BUF", A="ma", Z="mb")
        mid_b.instantiate("child", inner_spec, A="mb", B="ma", Z="mz")
        mid_spec = ModuleSpec(
            "MID",
            ModuleDefinition(
                mid_b.build(),
                input_ports={"A": "ma"},
                output_ports={"Z": "mz"},
            ),
        )
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.instantiate("top_m", mid_spec, A="w", Z="wz")
        b.latch("l", "DFF", D="wz", CK="clk", Q="wq")
        b.output("o", "wq", clock="clk")
        flat = flatten(b.build())
        assert flat.has_cell("top_m.buf")
        assert flat.has_cell("top_m.child.i1")
        assert validate_network(flat, {"clk"}).ok

    def test_unconnected_module_port_raises(self, lib):
        spec = _make_module(lib)
        b = NetworkBuilder(lib)
        b.instantiate("m1", spec, A="wa", B="wb")  # Z unconnected
        with pytest.raises(ValueError, match="unconnected"):
            flatten(b.build())
