"""Tests for the mapped BLIF subset round-trip."""

import pytest

from repro.clocks import ClockSchedule
from repro.core import Hummingbird
from repro.netlist import NetworkBuilder, flatten, validate_network
from repro.netlist.blif import (
    BlifError,
    blif_to_network,
    load_blif,
    network_to_blif,
    save_blif,
)


def _demo_network(lib):
    b = NetworkBuilder(lib, name="blif_demo")
    b.clock("phi1")
    b.clock("phi2")
    b.input("din", "n0", clock="phi2", edge="leading", offset=1.0)
    b.gate("u1", "NAND2", A="n0", B="n0", Z="n1")
    b.latch("L1", "DLATCH", D="n1", G="phi1", Q="n2")
    b.gate("u2", "INV", A="n2", Z="n3")
    b.latch("L2", "DFF", D="n3", CK="phi2", Q="n4")
    b.output("dout", "n4", clock="phi2", edge="trailing")
    return b.build()


class TestWrite:
    def test_structure(self, lib):
        text = network_to_blif(_demo_network(lib))
        assert text.startswith(".model blif_demo")
        assert ".inputs n0" in text
        assert ".outputs n4" in text
        assert ".clock phi1 phi2" in text
        assert ".gate NAND2" in text
        assert ".mlatch DLATCH D=n1 Q=n2 G=phi1" in text
        assert text.rstrip().endswith(".end")

    def test_pragmas_carry_pad_timing(self, lib):
        text = network_to_blif(_demo_network(lib))
        assert "# pragma input din net=n0 clock=phi2 edge=leading" in text
        assert "# pragma cell u1" in text

    def test_module_instances_rejected(self, lib):
        from repro.netlist import ModuleDefinition, ModuleSpec

        inner_b = NetworkBuilder(lib)
        inner_b.gate("g", "INV", A="a", Z="z")
        spec = ModuleSpec(
            "M",
            ModuleDefinition(
                inner_b.build(), input_ports={"A": "a"}, output_ports={"Z": "z"}
            ),
        )
        b = NetworkBuilder(lib)
        b.instantiate("m", spec, A="x", Z="y")
        with pytest.raises(BlifError, match="flatten"):
            network_to_blif(b.build())


class TestRoundTrip:
    def test_file_roundtrip(self, lib, tmp_path):
        original = _demo_network(lib)
        path = tmp_path / "demo.blif"
        save_blif(original, path)
        loaded = load_blif(path, lib)
        assert loaded.name == original.name
        assert loaded.num_cells == original.num_cells
        assert loaded.cell("L1").spec.name == "DLATCH"
        assert loaded.cell("din").attrs["offset"] == 1.0
        assert loaded.cell("din").attrs["edge"] == "leading"

    def test_roundtrip_validates_and_analyzes_identically(self, lib, tmp_path):
        original = _demo_network(lib)
        path = tmp_path / "demo.blif"
        save_blif(original, path)
        loaded = load_blif(path, lib)
        schedule = ClockSchedule.two_phase(100)
        assert validate_network(loaded, set(schedule.clock_names)).ok
        a = Hummingbird(original, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)

    def test_flattened_hierarchy_roundtrip(self, lib, tmp_path):
        from repro.generators import generate_sm1h

        network, schedule = generate_sm1h(n_gates=60)
        flat = flatten(network)
        path = tmp_path / "sm1.blif"
        save_blif(flat, path)
        loaded = load_blif(path, lib)
        assert loaded.num_cells == flat.num_cells
        a = Hummingbird(flat, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)


class TestHandWritten:
    def test_minimal_file_with_default_clock(self, lib):
        text = """
.model tiny
.inputs a
.outputs y
.clock clk
.gate INV A=a Z=n1
.mlatch DFF D=n1 CK=clk Q=y
.end
"""
        network = blif_to_network(text, lib, default_clock="clk")
        assert network.name == "tiny"
        assert network.num_cells == 5
        report = validate_network(network, {"clk"})
        assert report.ok, report.errors

    def test_continuation_lines(self, lib):
        text = ".model t\n.inputs a \\\nb\n.clock clk\n.gate NAND2 A=a B=b Z=y\n.outputs y\n.end\n"
        network = blif_to_network(text, lib, default_clock="clk")
        assert len(network.primary_inputs) == 2

    def test_pads_without_clock_rejected(self, lib):
        text = ".model t\n.inputs a\n.end\n"
        with pytest.raises(BlifError, match="default_clock"):
            blif_to_network(text, lib)

    def test_names_construct_rejected(self, lib):
        text = ".model t\n.names a b\n1 1\n.end\n"
        with pytest.raises(BlifError, match="names"):
            blif_to_network(text, lib)

    def test_generic_latch_rejected(self, lib):
        text = ".model t\n.latch a b re clk 0\n.end\n"
        with pytest.raises(BlifError, match="mlatch"):
            blif_to_network(text, lib)

    def test_unknown_construct_rejected(self, lib):
        text = ".model t\n.subckt foo a=b\n.end\n"
        with pytest.raises(BlifError, match="unsupported"):
            blif_to_network(text, lib)

    def test_malformed_binding_rejected(self, lib):
        text = ".model t\n.gate INV A Z=y\n.end\n"
        with pytest.raises(BlifError, match="binding"):
            blif_to_network(text, lib)
