"""Unit tests for Section 3 assumption validation and control tracing."""

import pytest

from repro.netlist import NetworkBuilder, validate_network
from repro.netlist.kinds import Unateness
from repro.netlist.validate import ValidationError, trace_control


def _base(lib):
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("i", "w_in", clock="clk")
    return b


class TestControlTracing:
    def test_direct_clock_positive_sense(self, lib):
        b = _base(lib)
        b.latch("l", "DFF", D="w_in", CK="clk", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        trace = trace_control(n, n.cell("l"))
        assert trace.clock == "clk"
        assert trace.sense is Unateness.POSITIVE
        assert trace.comb_cells == ()

    def test_inverted_control_negative_sense(self, lib):
        b = _base(lib)
        b.gate("ci", "INV", A="clk", Z="nclk")
        b.latch("l", "DLATCH", D="w_in", G="nclk", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        trace = trace_control(n, n.cell("l"))
        assert trace.sense is Unateness.NEGATIVE
        assert trace.comb_cells == ("ci",)

    def test_double_inversion_positive_sense(self, lib):
        b = _base(lib)
        b.gate("c1", "INV", A="clk", Z="n1")
        b.gate("c2", "INV", A="n1", Z="n2")
        b.latch("l", "DLATCH", D="w_in", G="n2", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        assert trace_control(n, n.cell("l")).sense is Unateness.POSITIVE

    def test_buffered_control(self, lib):
        b = _base(lib)
        b.gate("cb", "BUF", A="clk", Z="bclk")
        b.latch("l", "DLATCH", D="w_in", G="bclk", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        assert trace_control(n, n.cell("l")).sense is Unateness.POSITIVE

    def test_gated_clock_two_clocks_rejected(self, lib):
        b = _base(lib)
        b.clock("clk2")
        b.gate("cg", "NAND2", A="clk", B="clk2", Z="gclk")
        b.latch("l", "DLATCH", D="w_in", G="gclk", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        with pytest.raises(ValidationError, match="exactly one"):
            trace_control(n, n.cell("l"))

    def test_reconvergent_mixed_sense_rejected(self, lib):
        b = _base(lib)
        b.gate("ci", "INV", A="clk", Z="nclk")
        b.gate("cg", "NAND2", A="clk", B="nclk", Z="gclk")
        b.latch("l", "DLATCH", D="w_in", G="gclk", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        with pytest.raises(ValidationError, match="monotonic"):
            trace_control(n, n.cell("l"))

    def test_non_unate_control_arc_rejected(self, lib):
        b = _base(lib)
        b.gate("cx", "XOR2", A="clk", B="clk", Z="xclk")
        b.latch("l", "DLATCH", D="w_in", G="xclk", Q="q")
        b.output("o", "q", clock="clk")
        n = b.build()
        with pytest.raises(ValidationError, match="non-unate"):
            trace_control(n, n.cell("l"))

    def test_control_from_data_rejected(self, lib):
        b = _base(lib)
        b.latch("l1", "DFF", D="w_in", CK="clk", Q="q1")
        b.latch("l2", "DLATCH", D="w_in", G="q1", Q="q2")
        b.output("o", "q2", clock="clk")
        n = b.build()
        with pytest.raises(ValidationError):
            trace_control(n, n.cell("l2"))


class TestValidateNetwork:
    def test_clean_network_passes(self, lib):
        b = _base(lib)
        b.gate("g", "INV", A="w_in", Z="w1")
        b.latch("l", "DFF", D="w1", CK="clk", Q="q")
        b.output("o", "q", clock="clk")
        report = validate_network(b.build(), {"clk"})
        assert report.ok
        assert "l" in report.control_traces

    def test_floating_input_reported(self, lib):
        b = _base(lib)
        b.gate("g", "NAND2", A="w_in", B="floating", Z="w1")
        report = validate_network(b.build())
        assert any("floating" in e for e in report.errors)

    def test_multiple_drivers_rejected(self, lib):
        b = _base(lib)
        b.gate("g1", "INV", A="w_in", Z="w")
        b.gate("g2", "INV", A="w_in", Z="w")
        report = validate_network(b.build())
        assert any("multiple drivers" in e for e in report.errors)

    def test_tristate_bus_allowed(self, lib):
        b = _base(lib)
        b.latch("t1", "TRIBUF", D="w_in", EN="clk", Q="bus")
        b.latch("t2", "TRIBUF", D="w_in", EN="clk", Q="bus")
        b.output("o", "bus", clock="clk")
        report = validate_network(b.build(), {"clk"})
        assert report.ok

    def test_comb_cycle_reported(self, lib):
        b = _base(lib)
        b.gate("g1", "NAND2", A="w_in", B="w2", Z="w1")
        b.gate("g2", "INV", A="w1", Z="w2")
        report = validate_network(b.build())
        assert any("cycle" in e for e in report.errors)

    def test_unknown_clock_reference(self, lib):
        b = _base(lib)
        b.latch("l", "DFF", D="w_in", CK="clk", Q="q")
        b.output("o", "q", clock="clk")
        report = validate_network(b.build(), {"other"})
        assert any("unknown clock" in e for e in report.errors)

    def test_bad_pad_edge(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk", edge="sideways")
        b.gate("g", "INV", A="w", Z="w2")
        report = validate_network(b.build(), {"clk"})
        assert any("invalid edge" in e for e in report.errors)

    def test_raise_if_failed(self, lib):
        b = _base(lib)
        b.gate("g1", "INV", A="nowhere", Z="w1")
        report = validate_network(b.build())
        with pytest.raises(ValidationError):
            report.raise_if_failed()

    def test_unconnected_output_is_warning_not_error(self, lib):
        b = _base(lib)
        b.gate("g", "INV", A="w_in", Z="dangling")
        report = validate_network(b.build())
        assert report.ok
