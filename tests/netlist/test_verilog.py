"""Tests for the structural Verilog subset round-trip."""

import pytest

from repro.clocks import ClockSchedule
from repro.core import Hummingbird
from repro.netlist import NetworkBuilder, validate_network
from repro.netlist.verilog import (
    VerilogError,
    load_verilog,
    network_to_verilog,
    save_verilog,
    verilog_to_network,
)


def _demo_network(lib):
    b = NetworkBuilder(lib, name="vdemo")
    b.clock("phi1")
    b.clock("phi2")
    b.input("din", "n0", clock="phi2", edge="leading", offset=1.0)
    b.gate("u1", "NAND2", A="n0", B="n0", Z="n1")
    b.latch("L1", "DLATCH", D="n1", G="phi1", Q="n2")
    b.gate("u2", "INV", A="n2", Z="n3")
    b.latch("L2", "DFF", D="n3", CK="phi2", Q="n4")
    b.output("dout", "n4", clock="phi2", edge="trailing")
    return b.build()


class TestWrite:
    def test_structure(self, lib):
        text = network_to_verilog(_demo_network(lib))
        assert text.startswith("module vdemo (")
        assert "input n0;" in text
        assert "output n4;" in text
        assert "input phi1, phi2;" not in text  # one decl per clock line
        assert "input phi1;" in text and "input phi2;" in text
        assert "NAND2 u1 (.A(n0), .B(n0), .Z(n1));" in text
        assert "DLATCH L1 (.D(n1), .Q(n2), .G(phi1));" in text
        assert text.rstrip().endswith("endmodule")

    def test_pragmas(self, lib):
        text = network_to_verilog(_demo_network(lib))
        assert "// pragma clock phi1 name=phi1" in text
        assert "// pragma input din net=n0 clock=phi2 edge=leading" in text

    def test_wires_declared(self, lib):
        text = network_to_verilog(_demo_network(lib))
        assert "wire n1;" in text
        assert "wire n2;" in text


class TestRoundTrip:
    def test_file_roundtrip_preserves_analysis(self, lib, tmp_path):
        original = _demo_network(lib)
        path = tmp_path / "demo.v"
        save_verilog(original, path)
        loaded = load_verilog(path, lib)
        schedule = ClockSchedule.two_phase(100)
        assert validate_network(loaded, set(schedule.clock_names)).ok
        assert loaded.num_cells == original.num_cells
        assert loaded.cell("din").attrs["offset"] == 1.0
        a = Hummingbird(original, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)

    def test_roundtrip_of_generated_design(self, lib, tmp_path):
        from repro.generators import generate_s27

        network, schedule = generate_s27()
        path = tmp_path / "s27.v"
        save_verilog(network, path)
        loaded = load_verilog(path, lib)
        a = Hummingbird(network, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)


class TestHandWritten:
    def test_minimal_module(self, lib):
        text = """
module tiny (a, y, clk);
  // pragma clock clk name=clk
  input a;
  input clk;
  output y;
  wire n1;
  INV g1 (.A(a), .Z(n1));
  DFF f1 (.D(n1), .CK(clk), .Q(y));
endmodule
"""
        network = verilog_to_network(text, lib, default_clock="clk")
        assert network.name == "tiny"
        report = validate_network(network, {"clk"})
        assert report.ok, report.errors

    def test_multiline_instance(self, lib):
        text = (
            "module t (a, clk);\n// pragma clock clk name=clk\n"
            "input a;\ninput clk;\n"
            "INV g1 (\n  .A(a),\n  .Z(n1)\n);\nendmodule\n"
        )
        network = verilog_to_network(text, lib, default_clock="clk")
        assert network.cell("g1").terminal("Z").net.name == "n1"

    def test_behavioural_rejected(self, lib):
        text = "module t (a);\ninput a;\nassign y = a;\nendmodule\n"
        with pytest.raises(VerilogError, match="behavioural"):
            verilog_to_network(text, lib, default_clock="clk")

    def test_positional_ports_rejected(self, lib):
        text = "module t (a);\ninput a;\nINV g1 (a, y);\nendmodule\n"
        with pytest.raises(VerilogError, match="named port"):
            verilog_to_network(text, lib, default_clock="clk")

    def test_missing_endmodule_rejected(self, lib):
        with pytest.raises(VerilogError, match="endmodule"):
            verilog_to_network("module t (a);\ninput a;\n", lib, "clk")

    def test_port_without_clock_rejected(self, lib):
        text = "module t (a);\ninput a;\nendmodule\n"
        with pytest.raises(VerilogError, match="default_clock"):
            verilog_to_network(text, lib)
