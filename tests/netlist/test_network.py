"""Unit tests for cells, nets, terminals and the Network container."""

import pytest

from repro.netlist import NetworkBuilder
from repro.netlist.cell import Cell
from repro.netlist.kinds import CellRole
from repro.netlist.network import CombinationalCycleError, Network
from repro.netlist.terminals import TerminalKind


class TestCell:
    def test_terminals_created_from_spec(self, lib):
        cell = Cell("g", lib.spec("NAND2"))
        assert {t.pin for t in cell.terminals()} == {"A", "B", "Z"}
        assert cell.terminal("A").kind is TerminalKind.INPUT
        assert cell.terminal("Z").kind is TerminalKind.OUTPUT

    def test_sync_control_terminal(self, lib):
        cell = Cell("l", lib.spec("DLATCH"))
        assert cell.control_terminal is not None
        assert cell.control_terminal.kind is TerminalKind.CONTROL
        assert cell.data_input.pin == "D"
        assert cell.data_output.pin == "Q"

    def test_data_input_on_gate_raises(self, lib):
        cell = Cell("g", lib.spec("INV"))
        with pytest.raises(ValueError):
            cell.data_input

    def test_unknown_pin_raises(self, lib):
        cell = Cell("g", lib.spec("INV"))
        with pytest.raises(KeyError):
            cell.terminal("Q")

    def test_full_name(self, lib):
        cell = Cell("u42", lib.spec("INV"))
        assert cell.terminal("A").full_name == "u42/A"


class TestNetworkContainer:
    def test_duplicate_cell_rejected(self, lib):
        n = Network()
        n.add_cell(Cell("g", lib.spec("INV")))
        with pytest.raises(ValueError):
            n.add_cell(Cell("g", lib.spec("INV")))

    def test_connect_creates_net(self, lib):
        n = Network()
        g = n.add_cell(Cell("g", lib.spec("INV")))
        n.connect("w", g.terminal("Z"))
        assert n.net("w").driver is g.terminal("Z")

    def test_single_net_multiple_sinks(self, lib):
        n = Network()
        g = n.add_cell(Cell("g", lib.spec("INV")))
        a = n.add_cell(Cell("a", lib.spec("INV")))
        b = n.add_cell(Cell("b", lib.spec("INV")))
        n.connect("w", g.terminal("Z"))
        n.connect("w", a.terminal("A"))
        n.connect("w", b.terminal("A"))
        assert n.net("w").fanout == 2
        assert set(n.sinks_of(g.terminal("Z"))) == {
            a.terminal("A"),
            b.terminal("A"),
        }

    def test_terminal_cannot_join_two_nets(self, lib):
        n = Network()
        g = n.add_cell(Cell("g", lib.spec("INV")))
        n.connect("w1", g.terminal("Z"))
        with pytest.raises(ValueError):
            n.connect("w2", g.terminal("Z"))

    def test_remove_cell_detaches_terminals(self, lib):
        n = Network()
        g = n.add_cell(Cell("g", lib.spec("INV")))
        n.connect("w", g.terminal("Z"))
        n.remove_cell("g")
        assert not n.has_cell("g")
        assert n.net("w").drivers == []
        assert n.remove_net_if_empty("w")

    def test_role_queries(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.gate("g", "INV", A="w", Z="w2")
        b.latch("l", "DFF", D="w2", CK="clk", Q="w3")
        b.output("o", "w3", clock="clk")
        n = b.build()
        assert len(n.combinational_cells) == 1
        assert len(n.synchronisers) == 1
        assert len(n.clock_sources) == 1
        assert len(n.primary_inputs) == 1
        assert len(n.primary_outputs) == 1
        assert n.stats()["cells"] == 5


class TestTopologicalOrder:
    def test_chain_ordered(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g2", "INV", A="w1", Z="w2")
        b.gate("g1", "INV", A="w0", Z="w1")
        b.gate("g3", "INV", A="w2", Z="w3")
        order = [c.name for c in b.build().comb_topological_cells()]
        assert order.index("g1") < order.index("g2") < order.index("g3")

    def test_cycle_detected(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g1", "INV", A="w2", Z="w1")
        b.gate("g2", "INV", A="w1", Z="w2")
        with pytest.raises(CombinationalCycleError):
            b.build().comb_topological_cells()

    def test_cycle_through_latch_is_fine(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.gate("g1", "INV", A="q", Z="d")
        b.latch("l", "DFF", D="d", CK="clk", Q="q")
        assert len(b.build().comb_topological_cells()) == 1

    def test_driver_of_multi_driver_net_raises(self, lib):
        b = NetworkBuilder(lib)
        b.clock("clk")
        b.latch("t1", "TRIBUF", D="a", EN="clk", Q="bus")
        b.latch("t2", "TRIBUF", D="b", EN="clk", Q="bus")
        b.gate("g", "INV", A="bus", Z="z")
        n = b.build()
        with pytest.raises(ValueError):
            n.driver_of(n.cell("g").terminal("A"))
