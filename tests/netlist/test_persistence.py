"""Unit tests for JSON save/load round-trips."""

import pytest

from repro.netlist import (
    ModuleDefinition,
    ModuleSpec,
    NetworkBuilder,
    load_network,
    save_network,
)
from repro.netlist.persistence import network_from_dict, network_to_dict


def _simple_network(lib):
    b = NetworkBuilder(lib, name="persist_demo")
    b.clock("clk")
    b.input("i", "w0", clock="clk", offset=1.5)
    b.gate("g1", "NAND2", A="w0", B="w0", Z="w1")
    b.latch("l1", "DLATCH", D="w1", G="clk", Q="w2")
    b.output("o", "w2", clock="clk")
    return b.build()


class TestRoundTrip:
    def test_file_roundtrip(self, lib, tmp_path):
        original = _simple_network(lib)
        path = tmp_path / "net.json"
        save_network(original, path)
        loaded = load_network(path, lib)
        assert loaded.name == original.name
        assert loaded.num_cells == original.num_cells
        assert loaded.num_nets == original.num_nets
        assert loaded.cell("g1").spec.name == "NAND2"
        assert loaded.cell("i").attrs["offset"] == 1.5

    def test_connectivity_preserved(self, lib, tmp_path):
        original = _simple_network(lib)
        path = tmp_path / "net.json"
        save_network(original, path)
        loaded = load_network(path, lib)
        d_net = loaded.cell("l1").terminal("D").net
        assert d_net is not None
        assert d_net.driver.cell.name == "g1"

    def test_module_roundtrip(self, lib, tmp_path):
        inner_b = NetworkBuilder(lib, name="inner")
        inner_b.gate("i1", "INV", A="pa", Z="pz")
        spec = ModuleSpec(
            "MODX",
            ModuleDefinition(
                inner_b.build(),
                input_ports={"A": "pa"},
                output_ports={"Z": "pz"},
            ),
        )
        b = NetworkBuilder(lib, name="hier")
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.instantiate("m", spec, A="w", Z="wz")
        b.latch("l", "DFF", D="wz", CK="clk", Q="wq")
        b.output("o", "wq", clock="clk")
        path = tmp_path / "hier.json"
        save_network(b.build(), path)
        loaded = load_network(path, lib)
        loaded_spec = loaded.cell("m").spec
        assert isinstance(loaded_spec, ModuleSpec)
        assert loaded_spec.definition.inner.has_cell("i1")
        assert set(loaded_spec.arcs) == {("A", "Z")}

    def test_rejects_unknown_format(self, lib):
        with pytest.raises(ValueError, match="format"):
            network_from_dict({"cells": []}, lib)

    def test_dict_shape(self, lib):
        data = network_to_dict(_simple_network(lib))
        assert data["format"] == "repro-netlist-v1"
        names = {entry["name"] for entry in data["cells"]}
        assert {"g1", "l1", "i", "o"} <= names

    def test_analysis_equivalence_after_roundtrip(self, lib, tmp_path):
        from repro.clocks import ClockSchedule
        from repro.core import Hummingbird

        original = _simple_network(lib)
        schedule = ClockSchedule.single("clk", 100)
        path = tmp_path / "net.json"
        save_network(original, path)
        loaded = load_network(path, lib)
        slack_a = Hummingbird(original, schedule).analyze().worst_slack
        slack_b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert slack_a == pytest.approx(slack_b)
