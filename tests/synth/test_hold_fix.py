"""Tests for the same-edge hold check and buffer-insertion repair."""

import pytest

from repro.cells import standard_library
from repro.core.algorithm1 import run_algorithm1
from repro.core.mindelay import check_hold
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators.clock_tree import skewed_clock_pipeline
from repro.netlist import NetworkBuilder
from repro.synth.hold_fix import fix_hold_violations

from tests.conftest import build_ff_stage


def _hold_violations(network, schedule):
    delays = estimate_delays(network)
    model = AnalysisModel(network, schedule, delays)
    engine = SlackEngine(model)
    outcome = run_algorithm1(model, engine)
    return check_hold(model, engine), outcome


class TestReconnectSink:
    def test_moves_terminal(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g1", "INV", A="a", Z="n1")
        b.gate("g2", "INV", A="n1", Z="n2")
        network = b.build()
        sink = network.cell("g2").terminal("A")
        network.reconnect_sink(sink, "n_other")
        assert sink.net.name == "n_other"
        assert sink not in network.net("n1").sinks

    def test_rejects_drivers(self, lib):
        b = NetworkBuilder(lib)
        b.gate("g1", "INV", A="a", Z="n1")
        network = b.build()
        with pytest.raises(ValueError, match="driver"):
            network.reconnect_sink(network.cell("g1").terminal("Z"), "x")


class TestCheckHold:
    def test_unskewed_ff_chain_clean(self, lib):
        """c_to_q_min (0.54) exceeds hold (0.3): classic FF chains are
        hold-safe without skew."""
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        violations, __ = _hold_violations(network, schedule)
        assert [v for v in violations if v.launch_instance.startswith("ff")] == []

    def test_skewed_capture_clock_violates(self):
        """Four clock buffers (~3.2 ns skew) on the capture's clock open
        a hold race through the short stage."""
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 4), chain_length=1, period=40
        )
        violations, __ = _hold_violations(network, schedule)
        assert any(
            v.capture_instance == "ff1@0"
            and v.launch_instance == "ff0@0"
            for v in violations
        )
        worst = max(v.amount for v in violations)
        assert worst > 2.0

    def test_amount_tracks_skew_depth(self):
        def worst(depth):
            network, schedule = skewed_clock_pipeline(
                buffer_depths=(0, depth), chain_length=1, period=40
            )
            violations, __ = _hold_violations(network, schedule)
            return max((v.amount for v in violations), default=0.0)

        assert worst(6) > worst(3) > 0.0

    def test_long_path_immune_to_skew(self):
        """A deep stage's minimum delay covers the skew: no violation
        between the flip-flops."""
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 2), chain_length=12, period=60
        )
        violations, __ = _hold_violations(network, schedule)
        assert not any(
            v.launch_instance == "ff0@0" and v.capture_instance == "ff1@0"
            for v in violations
        )


class TestFixHoldViolations:
    def test_repair_closes_hold_and_keeps_setup(self):
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 4), chain_length=1, period=40
        )
        result = fix_hold_violations(network, schedule, standard_library())
        assert result.success
        assert result.setup_clean
        assert result.buffers_inserted.get("ff1", 0) >= 1
        after, outcome = _hold_violations(network, schedule)
        assert after == []
        assert outcome.intended

    def test_buffers_physically_inserted(self):
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 4), chain_length=1, period=40
        )
        cells_before = network.num_cells
        result = fix_hold_violations(network, schedule, standard_library())
        assert network.num_cells == cells_before + result.total_buffers
        d_net = network.cell("ff1").terminal("D").net
        assert d_net.driver.cell.name.startswith("holdfix_")

    def test_clean_design_untouched(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=10)
        cells_before = network.num_cells
        result = fix_hold_violations(network, schedule, standard_library())
        assert result.success
        # The PI-at-the-edge race may need a buffer; the FF chain does not.
        assert network.num_cells <= cells_before + result.total_buffers
        after, __ = _hold_violations(network, schedule)
        assert after == []

    def test_refuses_when_setup_budget_too_tight(self):
        """At a period barely above the critical path, the padding the
        skew demands cannot fit: the fixer reports the endpoint
        unfixable instead of breaking setup."""
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 6), chain_length=1, period=40
        )
        tight = schedule.scaled("0.22")
        violations, outcome = _hold_violations(network, tight)
        if not violations:
            pytest.skip("no violations at this scale")
        result = fix_hold_violations(network, tight, standard_library())
        assert not result.success
        assert result.unfixable
        assert result.passes <= 3
