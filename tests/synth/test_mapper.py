"""Tests for technology mapping, including functional equivalence."""

import itertools

import pytest

from repro.sim.functional import evaluate_module
from repro.synth.expr import evaluate, parse_expr, variables
from repro.synth.mapper import MappingError, synthesize_into, synthesize_module
from repro.netlist import NetworkBuilder


def _exhaustive_check(module, expression):
    expr = parse_expr(expression)
    names = sorted(variables(expr))
    for values in itertools.product([False, True], repeat=len(names)):
        env = dict(zip(names, values))
        got = evaluate_module(module, env)["y"]
        assert got == evaluate(expr, env), env


EXPRESSIONS = [
    "a & b",
    "a | b",
    "a ^ b",
    "~a",
    "a & ~(b | c) ^ d",
    "(a | b) & (c | ~d)",
    "a ^ b ^ c",
    "~(a & b & c) | (d & a)",
]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_direct_style(self, lib, expression):
        module = synthesize_module("M", {"y": expression}, lib, style="direct")
        _exhaustive_check(module, expression)

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_nand_style(self, lib, expression):
        module = synthesize_module("M", {"y": expression}, lib, style="nand")
        _exhaustive_check(module, expression)

    def test_multi_output_sharing(self, lib):
        module = synthesize_module(
            "M2",
            {"y": "(a & b) | c", "z": "(a & b) & ~c"},
            lib,
        )
        for a, b, c in itertools.product([False, True], repeat=3):
            env = dict(a=a, b=b, c=c)
            out = evaluate_module(module, env)
            assert out["y"] == ((a and b) or c)
            assert out["z"] == ((a and b) and not c)


class TestSharing:
    def test_common_subexpression_shared(self, lib):
        shared = synthesize_module(
            "S", {"y": "(a & b) | c", "z": "(a & b) | d"}, lib
        )
        # (a & b) must be built once: 1 AND2 + 2 OR2 = 3 gates.
        assert shared.definition.inner.num_cells == 3

    def test_commutative_canonicalisation(self, lib):
        module = synthesize_module(
            "C", {"y": "(a & b) | (b & a)"}, lib
        )
        # (a & b) and (b & a) collapse -- and then the | is idempotent.
        assert module.definition.inner.num_cells == 1

    def test_repeated_identical_equation(self, lib):
        module = synthesize_module(
            "R", {"y": "a & b", "z": "a & b"}, lib
        )
        assert module.definition.inner.num_cells == 1
        assert module.definition.output_ports["y"] == (
            module.definition.output_ports["z"]
        )


class TestStyles:
    def test_nand_style_uses_only_nand_inv(self, lib):
        module = synthesize_module(
            "N", {"y": "(a | b) & ~c"}, lib, style="nand"
        )
        kinds = {c.spec.name for c in module.definition.inner.cells}
        assert kinds <= {"NAND2", "INV"}

    def test_direct_style_uses_logic_gates(self, lib):
        module = synthesize_module(
            "D", {"y": "(a | b) & ~c"}, lib, style="direct"
        )
        kinds = {c.spec.name for c in module.definition.inner.cells}
        assert "AND2" in kinds and "OR2" in kinds

    def test_unknown_style_rejected(self, lib):
        with pytest.raises(ValueError, match="style"):
            synthesize_module("X", {"y": "a & b"}, lib, style="magic")


class TestErrors:
    def test_constant_result_rejected(self, lib):
        with pytest.raises(MappingError, match="constant"):
            synthesize_module("K", {"y": "a & ~a"}, lib)

    def test_no_variables_rejected(self, lib):
        with pytest.raises(MappingError):
            synthesize_module("K", {"y": "1"}, lib)

    def test_unbound_variable_in_synthesize_into(self, lib):
        b = NetworkBuilder(lib)
        with pytest.raises(MappingError, match="no net bound"):
            synthesize_into(b, {"y": "a & b"}, {"a": "n_a"})


class TestSynthesizeInto:
    def test_full_design_flow(self, lib):
        from repro.clocks import ClockSchedule
        from repro.core import Hummingbird

        b = NetworkBuilder(lib, name="synth_flow")
        b.clock("clk")
        for v in "ab":
            b.input(f"i{v}", f"n_{v}", clock="clk")
        outs = synthesize_into(
            b, {"y": "a ^ b"}, {"a": "n_a", "b": "n_b"}, style="nand"
        )
        b.latch("f", "DFF", D=outs["y"], CK="clk", Q="q")
        b.output("o", "q", clock="clk")
        result = Hummingbird(b.build(), ClockSchedule.single("clk", 100)).analyze()
        assert result.intended
