"""Tests for gate sizing (the real Singh-style re-synthesis)."""

import pytest

from repro.cells import standard_library
from repro.clocks import ClockSchedule
from repro.core import Hummingbird
from repro.netlist import NetworkBuilder
from repro.synth.sizing import (
    add_drive_variants,
    scaled_variant,
    size_for_timing,
    total_gate_area,
)


@pytest.fixture(scope="module")
def sized_lib():
    return add_drive_variants(standard_library())


def _fanout_design(lib, fanout=16, period=4.0):
    """A hub inverter driving a wide fanout: load-dominated timing."""
    b = NetworkBuilder(lib)
    b.clock("clk")
    b.input("i", "w", clock="clk")
    b.latch("fa", "DFF", D="w", CK="clk", Q="q")
    b.gate("drv", "INV", A="q", Z="hub")
    for k in range(fanout):
        b.gate(f"ld{k}", "INV", A="hub", Z=f"z{k}")
        b.latch(f"fb{k}", "DFF", D=f"z{k}", CK="clk", Q=f"qq{k}")
        b.output(f"o{k}", f"qq{k}", clock="clk")
    return b.build(), ClockSchedule.single("clk", period)


class TestScaledVariant:
    def test_resistance_down_cap_and_area_up(self, lib):
        base = lib.spec("NAND2")
        x4 = scaled_variant(base, 4)
        assert x4.name == "NAND2_X4"
        arc = x4.arcs[("A", "Z")]
        base_arc = base.arcs[("A", "Z")]
        assert arc.rise.resistance == pytest.approx(
            base_arc.rise.resistance / 4
        )
        assert arc.rise.intrinsic == base_arc.rise.intrinsic
        assert x4.input_caps["A"] == pytest.approx(base.input_caps["A"] * 4)
        assert x4.area == pytest.approx(base.area * 4)

    def test_function_preserved(self, lib):
        x2 = scaled_variant(lib.spec("NAND2"), 2)
        assert x2.function({"A": True, "B": True}) is False

    def test_rejects_bad_drive(self, lib):
        with pytest.raises(ValueError):
            scaled_variant(lib.spec("INV"), 0)


class TestAddDriveVariants:
    def test_variants_added_for_every_gate(self, sized_lib, lib):
        for spec in lib.gates():
            assert sized_lib.has(f"{spec.name}_X2")
            assert sized_lib.has(f"{spec.name}_X4")

    def test_synchronisers_not_duplicated(self, sized_lib):
        assert not sized_lib.has("DFF_X2")

    def test_idempotent_on_variants(self, sized_lib):
        again = add_drive_variants(sized_lib)
        assert not again.has("INV_X2_X2")


class TestSizeForTiming:
    def test_fixes_fanout_dominated_violation(self, sized_lib):
        network, schedule = _fanout_design(sized_lib, period=4.0)
        before = Hummingbird(network, schedule).analyze()
        assert not before.intended
        result = size_for_timing(network, schedule, sized_lib)
        assert result.success
        assert result.resized  # something was upsized
        assert "drv" in result.resized  # the hub driver above all
        after = Hummingbird(network, schedule).analyze()
        assert after.intended

    def test_area_increases(self, sized_lib):
        network, schedule = _fanout_design(sized_lib, period=4.0)
        result = size_for_timing(network, schedule, sized_lib)
        assert result.area_increase > 0
        assert result.area_after == pytest.approx(total_gate_area(network))

    def test_slack_history_improves(self, sized_lib):
        network, schedule = _fanout_design(sized_lib, period=4.0)
        result = size_for_timing(network, schedule, sized_lib)
        assert result.worst_slack_history[-1] > result.worst_slack_history[0]

    def test_already_met_does_nothing(self, sized_lib):
        network, schedule = _fanout_design(sized_lib, period=50.0)
        result = size_for_timing(network, schedule, sized_lib)
        assert result.success
        assert result.passes == 1
        assert not result.resized
        assert result.area_increase == 0

    def test_impossible_target_fails_cleanly(self, sized_lib):
        network, schedule = _fanout_design(sized_lib, period=1.0)
        result = size_for_timing(network, schedule, sized_lib, max_passes=8)
        assert not result.success
        # Every critical cell reached its top drive: loop stopped early
        # rather than burning all passes pointlessly.
        assert result.passes <= 8
