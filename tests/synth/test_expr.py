"""Tests for the boolean expression front-end."""

import itertools

import pytest

from repro.synth.expr import (
    And,
    Const,
    Not,
    Or,
    ParseError,
    Var,
    Xor,
    evaluate,
    parse_expr,
    simplify,
    variables,
)


class TestParser:
    def test_precedence_not_and_xor_or(self):
        # ~a & b ^ c | d parses as ((~a & b) ^ c) | d.
        e = parse_expr("~a & b ^ c | d")
        assert isinstance(e, Or)
        left = e.operands[0]
        assert isinstance(left, Xor)
        assert isinstance(left.operands[0], And)

    def test_parentheses_override(self):
        e = parse_expr("a & (b | c)")
        assert isinstance(e, And)
        assert isinstance(e.operands[1], Or)

    def test_constants(self):
        assert parse_expr("1") == Const(True)
        assert parse_expr("0") == Const(False)

    def test_identifiers_with_indices(self):
        e = parse_expr("state[3] & in_2")
        assert variables(e) == {"state[3]", "in_2"}

    def test_chained_operators_flatten(self):
        e = parse_expr("a & b & c")
        assert isinstance(e, And)
        assert len(e.operands) == 3

    def test_double_negation_parses(self):
        e = parse_expr("~~a")
        assert e == Not(Not(Var("a")))

    @pytest.mark.parametrize(
        "bad", ["a &", "& a", "(a", "a)", "a $ b", "", "a ~ b"]
    )
    def test_parse_errors(self, bad):
        with pytest.raises(ParseError):
            parse_expr(bad)

    def test_expr_passthrough(self):
        e = Var("x")
        assert parse_expr(e) is e

    def test_operator_overloads(self):
        e = (Var("a") & ~Var("b")) | (Var("c") ^ Var("d"))
        assert evaluate(e, dict(a=True, b=False, c=True, d=True))


class TestEvaluate:
    def test_truth_table_example(self):
        e = parse_expr("a & ~(b | c) ^ d")
        for a, b, c, d in itertools.product([False, True], repeat=4):
            expected = (a and not (b or c)) != d
            assert evaluate(e, dict(a=a, b=b, c=c, d=d)) == expected

    def test_missing_variable(self):
        with pytest.raises(KeyError, match="value for variable"):
            evaluate(parse_expr("a & b"), {"a": True})

    def test_xor_parity_semantics(self):
        e = parse_expr("a ^ b ^ c")
        assert evaluate(e, dict(a=True, b=True, c=True))
        assert not evaluate(e, dict(a=True, b=True, c=False))


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(parse_expr("a & 0")) == Const(False)
        assert simplify(parse_expr("a | 1")) == Const(True)
        assert simplify(parse_expr("a & 1")) == Var("a")
        assert simplify(parse_expr("a | 0")) == Var("a")

    def test_double_negation(self):
        assert simplify(parse_expr("~~a")) == Var("a")

    def test_idempotence(self):
        assert simplify(parse_expr("a & a")) == Var("a")
        assert simplify(parse_expr("a | a | a")) == Var("a")

    def test_xor_cancellation(self):
        assert simplify(parse_expr("a ^ a")) == Const(False)
        assert simplify(parse_expr("a ^ a ^ b")) == Var("b")
        assert simplify(parse_expr("a ^ 1")) == Not(Var("a"))

    def test_flattening(self):
        e = simplify(parse_expr("(a & b) & (c & d)"))
        assert isinstance(e, And)
        assert len(e.operands) == 4

    def test_simplify_preserves_semantics(self):
        source = "~(a & 1) | (b ^ b) | (c & c & ~0)"
        e = parse_expr(source)
        s = simplify(e)
        for a, b, c in itertools.product([False, True], repeat=3):
            env = dict(a=a, b=b, c=c)
            assert evaluate(e, env) == evaluate(s, env)

    def test_variables_of_const(self):
        assert variables(Const(True)) == frozenset()
