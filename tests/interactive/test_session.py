"""Tests for the interactive what-if session."""

import pytest

from repro.interactive import WhatIfSession

from tests.conftest import build_ff_stage


@pytest.fixture
def session(lib):
    network, schedule = build_ff_stage(lib, chain=2, period=10)
    return WhatIfSession(network, schedule)


class TestClockEdits:
    def test_scale_clocks_changes_verdict(self, session):
        assert session.analyze().intended
        session.scale_clocks("1/4")  # period 2.5 < critical 3.0
        assert not session.analyze().intended

    def test_undo_restores(self, session):
        before = session.analyze().worst_slack
        session.scale_clocks(2)
        assert session.analyze().worst_slack != pytest.approx(before)
        description = session.undo()
        assert "scale_clocks" in description
        assert session.analyze().worst_slack == pytest.approx(before)

    def test_pulse_width_edit(self, session):
        session.set_pulse_width("clk", 7)
        assert session.schedule.waveform("clk").width == 7

    def test_shift_clock(self, session):
        session.shift_clock("clk", 3)
        assert session.schedule.waveform("clk").leading == 3

    def test_undo_empty_history_raises(self, session):
        with pytest.raises(ValueError):
            session.undo()


class TestDelayEdits:
    def test_scale_cell_delay_moves_slack(self, session):
        base = session.analyze().worst_slack
        session.scale_cell_delay("inv0", 5.0)
        assert session.analyze().worst_slack < base

    def test_unknown_cell_rejected_without_history_entry(self, session):
        with pytest.raises(KeyError):
            session.scale_cell_delay("nonexistent", 2.0)
        assert session.history == ()

    def test_stacked_edits_and_undos(self, session):
        base = session.analyze().worst_slack
        session.scale_cell_delay("inv0", 2.0)
        session.scale_clocks(2)
        assert len(session.history) == 2
        session.undo()
        session.undo()
        assert session.analyze().worst_slack == pytest.approx(base)


class TestReport:
    def test_report_includes_history(self, session):
        session.scale_clocks(2)
        text = session.report()
        assert "history:" in text
        assert "scale_clocks(2)" in text

    def test_report_without_history(self, session):
        assert "history:" not in session.report()


class TestForensics:
    def test_explain_endpoint(self, session):
        forensics = session.explain("dout")
        assert forensics.capture_instance == "dout@pad"
        capture = session.analyze().algorithm1.slacks.capture
        assert forensics.slack == pytest.approx(capture["dout@pad"])

    def test_snapshot_then_compare_clean(self, session):
        session.snapshot("base")
        text = session.compare()
        assert "no regression" in text
        assert "base" in text

    def test_compare_detects_regression(self, session):
        session.snapshot("base")
        session.scale_cell_delay("inv0", 10.0)
        text = session.compare()
        assert "REGRESSION detected" in text
        session.undo()
        assert "no regression" in session.compare()

    def test_compare_without_baseline_raises(self, session):
        with pytest.raises(ValueError, match="snapshot"):
            session.compare()

    def test_explicit_baseline_argument(self, session):
        base = session.snapshot("explicit")
        session.scale_clocks(2)
        text = session.compare(baseline=base)
        assert "explicit" in text
