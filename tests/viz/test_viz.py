"""Tests for text rendering."""

from repro.clocks import ClockSchedule
from repro.core import Hummingbird
from repro.viz import (
    render_constraints,
    render_schedule,
    render_slow_paths,
    render_waveform,
)

from tests.conftest import build_ff_stage


class TestWaveformRendering:
    def test_high_and_low_sections(self):
        s = ClockSchedule.single("clk", 100, leading=0, trailing=50)
        line = render_waveform(s.waveform("clk"), s.overall_period, columns=23)
        body = line.strip("|")
        assert body[0] == "#"
        assert body[-1] == "_"
        assert "#" in body and "_" in body

    def test_render_schedule_lists_all_clocks(self):
        text = render_schedule(ClockSchedule.two_phase(100))
        assert "phi1" in text and "phi2" in text
        assert text.count("|") == 4

    def test_shared_axis_alignment(self):
        """phi2's pulse must appear later on the shared axis than phi1's."""
        text = render_schedule(
            ClockSchedule.two_phase(100), columns=43, show_pulses=False
        )
        line1, line2 = text.splitlines()
        assert line1.index("#") < line2.index("#")


class TestPathAndConstraintRendering:
    def test_render_slow_paths(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=2.5)
        result = Hummingbird(network, schedule).analyze()
        text = render_slow_paths(result.slow_paths)
        assert "slack" in text
        assert "ff_b@0" in text

    def test_render_slow_paths_empty(self):
        assert render_slow_paths([]) == "no slow paths"

    def test_render_constraints_table(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=20)
        hb = Hummingbird(network, schedule)
        constraints = hb.generate_constraints().constraints
        text = render_constraints(constraints, network)
        assert "ready" in text and "required" in text
        assert "n1" in text

    def test_render_constraints_selected_nets(self, lib):
        network, schedule = build_ff_stage(lib, chain=3, period=20)
        hb = Hummingbird(network, schedule)
        constraints = hb.generate_constraints().constraints
        text = render_constraints(constraints, network, nets=["n2"])
        assert "n2" in text
        assert "n3" not in text
