"""Tests for the latch-window chart rendering."""

import pytest

from repro.core import Hummingbird
from repro.generators import latch_pipeline
from repro.viz import render_all_windows, render_cluster_windows

from tests.conftest import build_ff_stage


@pytest.fixture
def latch_model(lib):
    network, schedule = latch_pipeline(
        stages=2, stage_lengths=[10, 2], period=40, library=lib
    )
    hb = Hummingbird(network, schedule)
    hb.analyze()
    return hb


class TestClusterWindows:
    def test_contains_markers(self, latch_model):
        cluster = next(
            c for c in latch_model.model.clusters if c.cells
        )
        text = render_cluster_windows(
            latch_model.model, latch_model.engine, cluster.name
        )
        assert "A" in text  # assertion marker
        assert "C" in text  # closure marker
        assert "axis" in text

    def test_transparent_windows_drawn(self, latch_model):
        cluster = next(
            c
            for c in latch_model.model.clusters
            if any(p.instance.adjustable for p in
                   latch_model.model.capture_ports[c.name])
        )
        text = render_cluster_windows(
            latch_model.model, latch_model.engine, cluster.name
        )
        assert "[" in text and "]" in text and "=" in text

    def test_bad_pass_index(self, latch_model):
        cluster = latch_model.model.clusters[0]
        with pytest.raises(ValueError):
            render_cluster_windows(
                latch_model.model, latch_model.engine, cluster.name, 5
            )

    def test_window_moves_with_transfer(self, lib):
        """The '=' marker's column tracks the window variable w."""
        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[10, 2], period=40, library=lib
        )
        hb = Hummingbird(network, schedule)
        cluster = next(
            c
            for c in hb.model.clusters
            if any(
                p.instance.adjustable
                for p in hb.model.capture_ports[c.name]
            )
        )
        capture = next(
            p
            for p in hb.model.capture_ports[cluster.name]
            if p.instance.adjustable
        )
        line_of = lambda text: next(
            l for l in text.splitlines()
            if l.startswith(capture.instance.name)
        )
        capture.instance.w = capture.instance.width
        late = line_of(
            render_cluster_windows(hb.model, hb.engine, cluster.name)
        ).index("=")
        capture.instance.w = 0.0
        early = line_of(
            render_cluster_windows(hb.model, hb.engine, cluster.name)
        ).index("=")
        assert early < late


class TestAllWindows:
    def test_skips_degenerate(self, latch_model):
        text = render_all_windows(latch_model.model, latch_model.engine)
        assert "cluster_net" not in text

    def test_cluster_cap(self, lib):
        network, schedule = build_ff_stage(lib, chain=2, period=10)
        hb = Hummingbird(network, schedule)
        hb.analyze()
        text = render_all_windows(hb.model, hb.engine, max_clusters=0)
        assert "omitted" in text
