"""CLI integration: ``repro-sta batch`` / ``serve`` / ``query``."""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.service import DaemonClient, TimingDaemon


@pytest.fixture
def jobs_file(tmp_path, design_files):
    netlist, clocks = design_files
    path = tmp_path / "jobs.json"
    path.write_text(
        json.dumps(
            {
                "schema": "repro.batch/1",
                "jobs": [
                    {"name": "a", "netlist": "pipeline.json",
                     "clocks": "clocks.json"},
                    {"name": "b", "netlist": "pipeline.json",
                     "clocks": "clocks.json", "slow_path_limit": 9},
                ],
            }
        )
    )
    return str(path)


class TestBatchCommand:
    def test_cold_then_warm_run(self, tmp_path, jobs_file, capsys):
        cache_dir = str(tmp_path / "cache")
        stats = tmp_path / "stats.json"
        argv = [
            "batch",
            jobs_file,
            "--cache-dir",
            cache_dir,
            "--serial",
            "--manifest-dir",
            str(tmp_path / "runs"),
            "--stats-out",
            str(stats),
        ]
        assert main(argv) == 0
        cold = json.loads(stats.read_text())
        assert cold["computed"] == 2 and cold["cached"] == 0
        manifests = sorted((tmp_path / "runs").glob("*.manifest.json"))
        assert [p.name for p in manifests] == [
            "a.manifest.json",
            "b.manifest.json",
        ]

        assert main(argv) == 0
        warm = json.loads(stats.read_text())
        assert warm["cached"] == 2 and warm["computed"] == 0
        assert warm["hit_rate"] == 1.0
        assert warm["alg1_iterations_total"] == 0
        # Manifests served from cache are identical records.
        for cold_row, warm_row in zip(
            cold["outcomes"], warm["outcomes"]
        ):
            assert (
                cold_row["manifest_digest"] == warm_row["manifest_digest"]
            )
        out = capsys.readouterr().out
        assert "hit rate 100%" in out

    def test_batch_with_metrics_export(self, tmp_path, jobs_file):
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "batch",
                    jobs_file,
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--serial",
                    "--metrics",
                    str(metrics),
                ]
            )
            == 0
        )
        dump = json.loads(metrics.read_text())
        assert dump["counters"]["service.batch.jobs"] == 2
        assert dump["counters"]["service.cache.misses"] == 2

    def test_bad_jobs_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        with pytest.raises(SystemExit):
            main(["batch", str(bogus)])


class TestQueryCommand:
    def test_query_against_live_daemon(
        self, tmp_path, design_files, capsys
    ):
        netlist, clocks = design_files
        sock = str(tmp_path / "repro.sock")
        with TimingDaemon(sock):
            assert main(["query", "--socket", sock, '{"op": "ping"}']) == 0
            out = capsys.readouterr().out
            assert json.loads(out)["pong"] is True
            request = json.dumps(
                {"op": "analyze", "netlist": netlist, "clocks": clocks}
            )
            assert main(["query", "--socket", sock, request]) == 0
            analyzed = json.loads(capsys.readouterr().out)
            assert analyzed["engine"] == "cold"
            assert analyzed["intended"] is True

    def test_query_bad_json(self, tmp_path):
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["query", "--socket", str(tmp_path / "x.sock"), "{"])

    def test_query_no_daemon(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot reach daemon"):
            main(
                [
                    "query",
                    "--socket",
                    str(tmp_path / "nothing.sock"),
                    '{"op": "ping"}',
                ]
            )


class TestServeCommand:
    def test_serve_foreground_until_shutdown(
        self, tmp_path, design_files
    ):
        sock = str(tmp_path / "serve.sock")
        done = threading.Event()
        status = {}

        def run():
            status["code"] = main(
                ["serve", "--socket", sock, "--no-cache"]
            )
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        # Wait for the socket to appear, then drive it.
        import time

        for __ in range(200):
            try:
                client = DaemonClient(sock, timeout=5.0)
                break
            except OSError:
                time.sleep(0.05)
        else:  # pragma: no cover
            pytest.fail("serve never came up")
        with client:
            assert client.ping()["pong"]
            client.shutdown()
        assert done.wait(timeout=10.0)
        assert status["code"] == 0
