"""ResultCache: round-trips, integrity checks, LRU eviction."""

from __future__ import annotations

import json

import pytest

from repro.service.cache import CACHE_SCHEMA, ResultCache


def _key(tag: str) -> str:
    """A syntactically valid 64-hex cache key."""
    return (tag * 64)[:64]


PAYLOAD = {
    "schema": "repro.result/1",
    "intended": True,
    "worst_slack": 1.25,
    "endpoint_slacks": {"s1_l": 1.25, "s2_l": "inf"},
}
MANIFEST = {"schema": "repro.manifest/1", "design": "unit"}


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD, MANIFEST)
        entry = cache.get(_key("a"))
        assert entry is not None
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["payload"] == PAYLOAD
        assert entry["manifest"] == MANIFEST
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(_key("b")) is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_survives_reopen(self, tmp_path):
        ResultCache(tmp_path / "cache").put(_key("a"), PAYLOAD)
        fresh = ResultCache(tmp_path / "cache")
        entry = fresh.get(_key("a"))
        assert entry is not None and entry["payload"] == PAYLOAD

    def test_contains_and_len(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert _key("a") not in cache
        cache.put(_key("a"), PAYLOAD)
        cache.put(_key("b"), PAYLOAD)
        assert _key("a") in cache
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_malformed_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        for bad in ("", "../../etc/passwd", "a/b", "x.json"):
            with pytest.raises(ValueError):
                cache.put(bad, PAYLOAD)


class TestIntegrity:
    """Corrupt entries are evicted and counted -- never raised."""

    def _entry_path(self, cache, key):
        return cache._entry_path(key)  # noqa: SLF001 -- deliberate

    def test_truncated_file_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD)
        path = self._entry_path(cache, _key("a"))
        path.write_text(path.read_text()[: 40])
        assert cache.get(_key("a")) is None
        assert cache.stats.corrupt == 1
        assert not path.exists(), "corrupt entry must be removed"

    def test_garbage_json_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD)
        self._entry_path(cache, _key("a")).write_text("not json {")
        assert cache.get(_key("a")) is None
        assert cache.stats.corrupt == 1

    def test_tampered_payload_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD)
        path = self._entry_path(cache, _key("a"))
        entry = json.loads(path.read_text())
        entry["payload"]["worst_slack"] = -999.0  # bit-flip simulation
        path.write_text(json.dumps(entry))
        assert cache.get(_key("a")) is None
        assert cache.stats.corrupt == 1

    def test_wrong_schema_is_evicted(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        path = self._entry_path(cache, _key("a"))
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "bogus/9", "key": _key("a")}))
        assert cache.get(_key("a")) is None
        assert cache.stats.corrupt == 1

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD)
        (tmp_path / "cache" / "index.json").write_text("}{ garbage")
        fresh = ResultCache(tmp_path / "cache")
        entry = fresh.get(_key("a"))
        assert entry is not None and entry["payload"] == PAYLOAD


class TestEviction:
    def test_lru_bound(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=2)
        cache.put(_key("a"), PAYLOAD)
        cache.put(_key("b"), PAYLOAD)
        cache.put(_key("c"), PAYLOAD)
        assert len(cache) == 2
        assert cache.get(_key("a")) is None, "oldest entry evicted"
        assert cache.get(_key("c")) is not None

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=2)
        cache.put(_key("a"), PAYLOAD)
        cache.put(_key("b"), PAYLOAD)
        assert cache.get(_key("a")) is not None  # refresh "a"
        cache.put(_key("c"), PAYLOAD)  # evicts "b", not "a"
        assert cache.get(_key("a")) is not None
        assert cache.get(_key("b")) is None

    def test_explicit_evict(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD)
        assert cache.evict(_key("a")) is True
        assert cache.evict(_key("a")) is False
        assert cache.get(_key("a")) is None

    def test_unbounded_when_none(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=None)
        for tag in "abcdef":
            cache.put(_key(tag), PAYLOAD)
        assert len(cache) == 6

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "cache", max_entries=0)

    def test_stale_index_row_reconciled_without_eviction_count(
        self, tmp_path
    ):
        """An index row whose file vanished is dropped, not 'evicted'."""
        cache = ResultCache(tmp_path / "cache", max_entries=2)
        cache.put(_key("a"), PAYLOAD)
        cache.put(_key("b"), PAYLOAD)
        # Simulate an external deletion the index does not know about.
        cache._entry_path(_key("a")).unlink()  # noqa: SLF001
        before = cache.stats.evictions
        cache.put(_key("c"), PAYLOAD)  # overflow targets stale "a"
        assert cache.stats.evictions == before, (
            "removing a stale index row must not count as an eviction"
        )
        assert cache.get(_key("b")) is not None
        assert cache.get(_key("c")) is not None


class TestHotPath:
    """The warm-path contract: zero walks, zero index writes on a hit."""

    def test_hit_performs_no_object_store_iteration(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD, MANIFEST)
        cache.get(_key("a"))  # warm the in-memory index

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "get() hit walked the objects/ directory"
            )

        cache._iter_entries = boom  # noqa: SLF001 -- deliberate probe
        entry = cache.get(_key("a"))
        assert entry is not None and entry["payload"] == PAYLOAD

    def test_hit_writes_no_index_file(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD, MANIFEST)
        index_path = tmp_path / "cache" / "index.json"
        before = index_path.read_bytes()
        stat_before = index_path.stat()
        for __ in range(5):
            assert cache.get(_key("a")) is not None
        assert index_path.read_bytes() == before
        stat_after = index_path.stat()
        assert stat_after.st_mtime_ns == stat_before.st_mtime_ns
        assert stat_after.st_ino == stat_before.st_ino, (
            "hit path must not atomically rewrite index.json"
        )

    def test_entries_count_maintained_incrementally(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.stats.entries == 0 or cache.stats.entries == 0
        cache.put(_key("a"), PAYLOAD)
        assert cache.stats.entries == 1
        cache.put(_key("b"), PAYLOAD)
        assert cache.stats.entries == 2
        cache.put(_key("b"), PAYLOAD)  # overwrite, not a new entry
        assert cache.stats.entries == 2
        cache.evict(_key("a"))
        assert cache.stats.entries == 1
        cache.clear()
        assert cache.stats.entries == 0

    def test_flush_persists_write_behind_recency(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=2)
        cache.put(_key("a"), PAYLOAD)
        cache.put(_key("b"), PAYLOAD)
        assert cache.get(_key("a")) is not None  # recency bump, unflushed
        cache.flush()
        # A *fresh* instance (crash-restart simulation after flush) must
        # see the bumped recency: "b" is now the LRU victim.
        fresh = ResultCache(tmp_path / "cache", max_entries=2)
        fresh.put(_key("c"), PAYLOAD)
        assert fresh.get(_key("a")) is not None
        assert fresh.get(_key("b")) is None

    def test_context_manager_flushes(self, tmp_path):
        with ResultCache(tmp_path / "cache", max_entries=2) as cache:
            cache.put(_key("a"), PAYLOAD)
            cache.put(_key("b"), PAYLOAD)
            assert cache.get(_key("a")) is not None
        fresh = ResultCache(tmp_path / "cache", max_entries=2)
        fresh.put(_key("c"), PAYLOAD)
        assert fresh.get(_key("a")) is not None
        assert fresh.get(_key("b")) is None

    def test_unflushed_recency_is_only_advisory_loss(self, tmp_path):
        """Dropping unflushed recency never loses entries."""
        cache = ResultCache(tmp_path / "cache")
        cache.put(_key("a"), PAYLOAD)
        cache.get(_key("a"))  # dirty, never flushed
        del cache  # simulated crash: write-behind state lost
        fresh = ResultCache(tmp_path / "cache")
        assert fresh.get(_key("a")) is not None
