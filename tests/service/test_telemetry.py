"""Service-level telemetry: trace propagation, health/metrics, logs."""

from __future__ import annotations

import json
import os
import urllib.request

import pytest

from repro import obs
from repro.obs.accesslog import ACCESS_LOG_SCHEMA, AccessLog
from repro.service import (
    BatchEngine,
    BatchJob,
    DaemonClient,
    ResultCache,
    TimingDaemon,
)


@pytest.fixture
def daemon_socket(tmp_path):
    return str(tmp_path / "telemetry.sock")


class TestDaemonTracePropagation:
    def test_client_and_daemon_share_one_trace(
        self, daemon_socket, design_files
    ):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket) as daemon:
            with obs.recording() as rec:
                with DaemonClient(daemon_socket) as client:
                    response = client.analyze(netlist, clocks)
            assert response["ok"]
        assert rec.trace_id is not None
        names = {s.name for s in rec.spans}
        # Client-side span and daemon-side handler spans in ONE recorder.
        assert "service.client.request" in names
        assert "service.daemon.request" in names
        assert "service.daemon.analyze" in names
        assert rec.counters.get("obs.snapshots_merged") == 1
        # The merged trace validates and carries flow links.
        trace = obs.to_chrome_trace(rec)
        obs.validate_chrome_trace(trace)
        assert trace["otherData"]["trace_id"] == rec.trace_id
        assert any(e["ph"] == "s" for e in trace["traceEvents"])
        assert any(e["ph"] == "f" for e in trace["traceEvents"])

    def test_untraced_requests_ship_no_snapshot(
        self, daemon_socket, design_files
    ):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket):
            with DaemonClient(daemon_socket) as client:
                response = client.request(
                    {"op": "analyze", "netlist": netlist, "clocks": clocks}
                )
        assert response["ok"]
        assert "trace" not in response


class TestBatchTracePropagation:
    def _jobs(self, design_files):
        netlist, clocks = design_files
        return [BatchJob(name="one", netlist=netlist, clocks=clocks)]

    def test_worker_spans_merge_under_one_trace(
        self, daemon_socket, design_files, tmp_path
    ):
        jobs = self._jobs(design_files)
        engine = BatchEngine(cache=None, max_workers=2)
        with obs.recording() as rec:
            report = engine.run(jobs)
        assert report.computed == 1
        worker_spans = [
            s for s in rec.spans if s.name == "service.worker.job"
        ]
        assert len(worker_spans) == 1
        # The worker ran in another process: its pid travelled along.
        assert worker_spans[0].pid is not None
        assert worker_spans[0].pid != os.getpid()
        trace = obs.to_chrome_trace(rec)
        obs.validate_chrome_trace(trace)
        pids = {
            e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert len(pids) >= 2
        assert rec.counters.get("obs.snapshots_merged") == 1

    def test_queue_wait_recorded(self, design_files):
        engine = BatchEngine(cache=None, max_workers=1)
        with obs.recording() as rec:
            report = engine.run(self._jobs(design_files))
        outcome = report.outcomes[0]
        assert outcome.queue_wait_s is not None
        assert outcome.queue_wait_s >= 0.0
        hist = rec.histograms.get("service.batch.queue_wait_seconds")
        assert hist is not None and hist.count == 1

    def test_untraced_batch_still_reports_queue_wait(self, design_files):
        report = BatchEngine(cache=None, serial=True).run(
            self._jobs(design_files)
        )
        assert report.computed == 1
        assert report.outcomes[0].queue_wait_s is not None

    def test_batch_access_log(self, design_files, tmp_path):
        log_path = tmp_path / "batch.access.jsonl"
        engine = BatchEngine(
            cache=ResultCache(tmp_path / "cache"),
            serial=True,
            access_log=str(log_path),
        )
        engine.run(self._jobs(design_files))
        engine.run(self._jobs(design_files))  # warm: cache hit
        engine.access_log.close()
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(lines) == 2
        for line in lines:
            assert line["schema"] == ACCESS_LOG_SCHEMA
            assert line["kind"] == "batch"
            assert line["status"] == "ok"
        assert lines[0]["cache_hit"] is False
        assert lines[1]["cache_hit"] is True


class TestHealthAndMetricsOps:
    def test_health_op(self, daemon_socket, design_files):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket):
            with DaemonClient(daemon_socket) as client:
                client.analyze(netlist, clocks)
                health = client.health()
        assert health["ok"] and health["status"] == "ok"
        assert health["requests"] >= 1
        assert health["designs_loaded"] == 1
        assert health["in_flight"] >= 0
        assert health["uptime_s"] >= 0.0
        assert health["telemetry"] is True
        assert health["last_error"] is None

    def test_health_reports_last_error(self, daemon_socket):
        with TimingDaemon(daemon_socket):
            with DaemonClient(daemon_socket) as client:
                bad = client.request({"op": "analyze"})  # missing files
                assert not bad["ok"]
                health = client.health()
        assert health["errors"] == 1
        assert health["last_error"]["op"] == "analyze"

    def test_metrics_op_exposes_latency_histograms(
        self, daemon_socket, design_files
    ):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket):
            with DaemonClient(daemon_socket) as client:
                client.analyze(netlist, clocks)
                metrics = client.metrics()
        assert metrics["ok"]
        doc = metrics["metrics"]
        assert doc["counters"]["service.daemon.requests"] >= 1
        hist = doc["histograms"]["service.daemon.request_seconds"]
        assert hist["count"] >= 1
        assert len(hist["counts"]) == len(hist["bounds"]) + 1
        assert "service.daemon.queue_wait_seconds" in doc["histograms"]
        assert "service.daemon.handle_seconds" in doc["histograms"]
        # Prometheus text parses: every line is comment or name value.
        for line in metrics["text"].splitlines():
            assert line.startswith("#") or len(line.split()) == 2

    def test_metrics_refused_when_telemetry_disabled(self, daemon_socket):
        with TimingDaemon(daemon_socket, telemetry=False):
            with DaemonClient(daemon_socket) as client:
                metrics = client.metrics()
                health = client.health()
        assert not metrics["ok"]
        assert health["ok"] and health["telemetry"] is False

    def test_snapshot_consistency_across_ops(
        self, daemon_socket, design_files
    ):
        """ping, health and stats all derive from one _snapshot()."""
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket):
            with DaemonClient(daemon_socket) as client:
                client.analyze(netlist, clocks)
                ping = client.ping()
                health = client.health()
                stats = client.stats()
        assert ping["pid"] == health["pid"] == stats["pid"]
        for doc in (health, stats):
            assert doc["requests"] >= 1
            assert doc["designs_loaded"] == 1
            assert "in_flight" in doc and "errors" in doc
        assert stats["designs"]
        for design in stats["designs"].values():
            assert "in_flight" in design


class TestHttpSidecar:
    def _get(self, address, path):
        host, port = address
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=5
        ) as response:
            return response.status, response.read().decode("utf-8")

    def test_healthz_and_metrics_routes(
        self, daemon_socket, design_files
    ):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            assert daemon.http_address is not None
            with DaemonClient(daemon_socket) as client:
                client.analyze(netlist, clocks)
            status, body = self._get(daemon.http_address, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["ok"] and health["requests"] >= 1
            status, text = self._get(daemon.http_address, "/metrics")
            assert status == 200
            assert "service.daemon.requests" in text.replace("_", ".")
            assert 'le="' in text  # histogram buckets exported
        # Requests over HTTP are themselves counted.
        assert daemon.recorder.counters["service.daemon.http_requests"] >= 2

    def test_unknown_route_is_404(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(daemon.http_address, "/nope")
            assert err.value.code == 404

    def test_no_sidecar_by_default(self, daemon_socket):
        with TimingDaemon(daemon_socket) as daemon:
            assert daemon.http_address is None


class TestHttpHygiene:
    """PR-6 satellite: HEAD / 405 / JSON 404 / buildz on the sidecar."""

    def _request(self, address, path, method="GET"):
        host, port = address
        req = urllib.request.Request(
            f"http://{host}:{port}{path}", method=method
        )
        with urllib.request.urlopen(req, timeout=5) as response:
            return response.status, dict(response.headers), response.read()

    def test_head_mirrors_get_without_body(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            get_status, get_headers, get_body = self._request(
                daemon.http_address, "/healthz"
            )
            status, headers, body = self._request(
                daemon.http_address, "/healthz", method="HEAD"
            )
        assert get_status == status == 200
        assert body == b""
        assert get_body
        # Same Content-Length/Type as the GET would have sent.
        assert headers["Content-Type"] == get_headers["Content-Type"]
        assert int(headers["Content-Length"]) == len(get_body)

    def test_post_is_405_with_allow_header(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            host, port = daemon.http_address
            req = urllib.request.Request(
                f"http://{host}:{port}/healthz",
                data=b"{}",
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=5)
            assert err.value.code == 405
            assert err.value.headers["Allow"] == "GET, HEAD"
            payload = json.loads(err.value.read())
            assert payload["ok"] is False
            assert payload["allow"] == ["GET", "HEAD"]

    def test_404_lists_routes_as_json(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._request(daemon.http_address, "/nope")
            assert err.value.code == 404
            payload = json.loads(err.value.read())
            assert payload["ok"] is False
            assert "/healthz" in payload["routes"]
            assert "/metrics/history" in payload["routes"]
            assert "/profile" in payload["routes"]
            assert "/buildz" in payload["routes"]

    def test_buildz_route(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            status, headers, body = self._request(
                daemon.http_address, "/buildz"
            )
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        build = json.loads(body)
        assert build["ok"] and build["version"]
        assert build["pid"] == os.getpid()
        assert build["config"]["telemetry"] is True

    def test_metrics_history_route(self, daemon_socket, design_files):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with DaemonClient(daemon_socket) as client:
                client.analyze(netlist, clocks)
            __, __, body = self._request(
                daemon.http_address, "/metrics/history"
            )
        history = json.loads(body)
        assert history["ok"]
        assert history["schema"] == "repro.metrics.history/1"
        # The boot point is recorded immediately at daemon start.
        assert history["points"]

    def test_metrics_history_last_param_trims(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            daemon.history.record(daemon.recorder)
            daemon.history.record(daemon.recorder)
            __, __, body = self._request(
                daemon.http_address, "/metrics/history?last=1"
            )
        history = json.loads(body)
        assert len(history["points"]) == 1
        assert history["snapshots"] >= 3

    def test_metrics_history_bad_last_is_400(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._request(
                    daemon.http_address, "/metrics/history?last=x"
                )
            assert err.value.code == 400
            assert b"?last must be an integer" in err.value.read()

    def test_profile_route_500_before_first_run(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._request(daemon.http_address, "/profile")
            assert err.value.code == 500

    def test_profile_route_serves_live_snapshot(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            assert daemon.start_profiler(hz=200)
            __, __, body = self._request(daemon.http_address, "/profile")
            daemon.stop_profiler()
        payload = json.loads(body)
        assert payload["ok"]
        doc = payload["profile"]
        assert doc["schema"] == "repro.profile/1"
        assert doc["hz"] == 200


class TestProfileAndHistoryOps:
    def test_profile_lifecycle_over_socket(
        self, daemon_socket, design_files
    ):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket) as daemon:
            with DaemonClient(daemon_socket) as client:
                started = client.profile("start", hz=500)
                assert started["ok"] and started["started"] is True
                # Idempotent: a second start reports started=false.
                again = client.profile("start")
                assert again["ok"] and again["started"] is False
                client.analyze(netlist, clocks)
                fetched = client.profile("fetch")
                assert fetched["ok"] and fetched["running"] is True
                assert fetched["profile"]["schema"] == "repro.profile/1"
                stopped = client.profile("stop")
                assert stopped["ok"]
                doc = stopped["profile"]
                assert doc["schema"] == "repro.profile/1"
                assert doc["hz"] == 500
                # After stop, fetch still serves the last document.
                idle = client.profile("fetch")
                assert idle["ok"] and idle["running"] is False
            assert daemon.recorder.counters[
                "service.profile.starts"
            ] == 1
            assert daemon.recorder.counters["service.profile.stops"] == 1

    def test_profile_attributes_daemon_spans(
        self, daemon_socket, design_files
    ):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket) as daemon:
            with DaemonClient(daemon_socket) as client:
                client.profile("start", hz=997)
                for __ in range(5):
                    client.analyze(netlist, clocks)
                stopped = client.profile("stop")
        doc = stopped["profile"]
        spans = {row["span"] for row in doc["stacks"]}
        # Either the daemon was fast enough to dodge every tick (rare)
        # or sampled stacks attribute to daemon request spans.
        if doc["attributed"]:
            assert any("service.daemon" in span for span in spans), spans

    def test_profile_errors(self, daemon_socket):
        with TimingDaemon(daemon_socket):
            with DaemonClient(daemon_socket) as client:
                stopped = client.profile("stop")
                assert stopped["ok"] is False
                assert "not running" in stopped["error"]
                fetched = client.profile("fetch")
                assert fetched["ok"] is False
                unknown = client.profile("bogus")
                assert unknown["ok"] is False

    def test_history_op(self, daemon_socket, design_files):
        netlist, clocks = design_files
        with TimingDaemon(daemon_socket) as daemon:
            with DaemonClient(daemon_socket) as client:
                client.analyze(netlist, clocks)
                history = client.history()
                assert history["ok"]
                assert history["schema"] == "repro.metrics.history/1"
                assert history["points"]  # boot point at least
                trimmed = client.history(last=1)
                assert len(trimmed["points"]) == 1
            assert daemon.recorder.counters["service.tsdb.reads"] == 2

    def test_history_refused_when_telemetry_disabled(self, daemon_socket):
        with TimingDaemon(daemon_socket, telemetry=False):
            with DaemonClient(daemon_socket) as client:
                response = client.history()
                assert response["ok"] is False
                assert "telemetry" in response["error"]

    def test_buildinfo_op(self, daemon_socket):
        with TimingDaemon(daemon_socket) as daemon:
            with DaemonClient(daemon_socket) as client:
                build = client.buildinfo()
        assert build["ok"] and build["pid"] == os.getpid()
        assert build["config"]["socket"] == daemon_socket

    def test_tsdb_gauges_in_health_metrics(self, daemon_socket):
        with TimingDaemon(daemon_socket) as daemon:
            with DaemonClient(daemon_socket) as client:
                metrics = client.metrics()["metrics"]
        assert metrics["gauges"]["service.tsdb.points"] >= 1
        assert metrics["gauges"]["service.tsdb.snapshots"] >= 1


class TestDaemonAccessLog:
    def test_one_line_per_request(self, daemon_socket, design_files):
        netlist, clocks = design_files
        lines_buffer = []

        class Sink:
            def write(self, data):
                lines_buffer.append(data)

        log = AccessLog(Sink(), slow_threshold_s=0.0)
        with TimingDaemon(daemon_socket, access_log=log):
            with DaemonClient(daemon_socket) as client:
                with obs.recording():
                    client.analyze(netlist, clocks)
                client.ping()
        entries = [json.loads(line) for line in lines_buffer]
        assert len(entries) >= 2
        by_op = {entry["op"]: entry for entry in entries}
        analyze = by_op["analyze"]
        assert analyze["kind"] == "daemon"
        assert analyze["design"] is not None
        assert analyze["engine"] in ("cold", "incremental-warm", "snapshot")
        assert analyze["queue_wait_s"] >= 0.0
        assert analyze["handle_s"] >= 0.0
        # slow_threshold 0.0: the traced request carries its span tree.
        assert analyze["slow"] is True
        assert analyze["spans"][0]["name"] == "service.daemon.request"
        assert by_op["ping"]["status"] == "ok"

    def test_error_requests_logged(self, daemon_socket, tmp_path):
        log_path = tmp_path / "daemon.access.jsonl"
        with TimingDaemon(daemon_socket, access_log=str(log_path)):
            with DaemonClient(daemon_socket) as client:
                client.request({"op": "analyze"})
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        errors = [l for l in lines if l["status"] == "error"]
        assert errors and errors[0]["error"]


class TestSelfDiagnosisRoutes:
    """PR 7: /alertz, /crashz, /flightz plus the shared route table."""

    def _get(self, address, path):
        host, port = address
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=5
        ) as response:
            return response.status, response.read().decode("utf-8")

    def test_alertz_route(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            daemon.alerts.fire("daemon.stalled", message="unit test")
            status, body = self._get(daemon.http_address, "/alertz")
        assert status == 200
        doc = json.loads(body)
        assert doc["schema"] == "repro.alerts/1"
        assert doc["firing"] == 1
        firing = [r for r in doc["alerts"] if r["state"] == "firing"]
        assert firing[0]["name"] == "daemon.stalled"

    def test_crashz_route_healthy_and_after_crash(
        self, daemon_socket, tmp_path
    ):
        with TimingDaemon(
            daemon_socket,
            http_port=0,
            crash_dir=tmp_path / "crashes",
            debug_ops=True,
        ) as daemon:
            status, body = self._get(daemon.http_address, "/crashz")
            assert status == 200
            doc = json.loads(body)
            assert doc["ok"] and doc["crash"] is None
            with DaemonClient(daemon_socket) as client:
                client.request({"op": "fail"})
            status, body = self._get(daemon.http_address, "/crashz")
            doc = json.loads(body)
        assert doc["crash"]["kind"] == "handler_exception"
        assert doc["path"].endswith(".json")
        assert doc["reports_written"] == 1

    def test_flightz_route_with_last_param(self, daemon_socket):
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with DaemonClient(daemon_socket) as client:
                for __ in range(3):
                    client.ping()
            status, body = self._get(daemon.http_address, "/flightz?last=2")
            assert status == 200
            doc = json.loads(body)
            assert doc["schema"] == "repro.flight/1"
            assert len(doc["events"]) == 2
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(daemon.http_address, "/flightz?last=banana")
            assert err.value.code == 400

    def test_404_lists_new_routes(self, daemon_socket):
        """Satellite 3: the 404 listing stays in sync with HTTP_ROUTES."""
        with TimingDaemon(daemon_socket, http_port=0) as daemon:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(daemon.http_address, "/nope")
            payload = json.loads(err.value.read())
        expected = sorted(
            [path for path, __ in TimingDaemon.HTTP_ROUTES]
            + ["/traces/<id>"]  # the trace-show handler route (PR 9)
        )
        assert sorted(payload["routes"]) == expected
        for path in ("/alertz", "/crashz", "/flightz", "/fabricz"):
            assert path in payload["routes"]

    def test_route_table_handlers_exist(self):
        """Every route in the table resolves to a real bound method."""
        for path, attr in TimingDaemon.HTTP_ROUTES:
            assert path.startswith("/")
            assert callable(getattr(TimingDaemon, attr))
