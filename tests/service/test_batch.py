"""BatchEngine: planning, caching, crash recovery, degradation."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.service import (
    BatchEngine,
    BatchJob,
    ResultCache,
    load_jobs,
)


@pytest.fixture
def job(design_files):
    netlist, clocks = design_files
    return BatchJob("pipeline", netlist, clocks)


class TestJobSetFile:
    def test_load_resolves_relative_paths(self, tmp_path, design_files):
        netlist, clocks = design_files
        jobs_file = tmp_path / "jobs.json"
        jobs_file.write_text(
            json.dumps(
                {
                    "schema": "repro.batch/1",
                    "jobs": [
                        {"name": "a", "netlist": "pipeline.json",
                         "clocks": "clocks.json"},
                        {"netlist": "pipeline.json",
                         "clocks": "clocks.json",
                         "slow_path_limit": 5},
                    ],
                }
            )
        )
        jobs = load_jobs(jobs_file)
        assert [j.name for j in jobs] == ["a", "job_1"]
        assert jobs[0].netlist == netlist
        assert jobs[1].slow_path_limit == 5

    def test_rejects_bad_schema(self, tmp_path):
        bad = tmp_path / "jobs.json"
        bad.write_text(json.dumps({"schema": "nope", "jobs": []}))
        with pytest.raises(ValueError, match="repro.batch/1"):
            load_jobs(bad)

    def test_rejects_duplicates_and_missing_fields(self, tmp_path):
        dup = tmp_path / "dup.json"
        dup.write_text(
            json.dumps(
                {
                    "schema": "repro.batch/1",
                    "jobs": [
                        {"name": "a", "netlist": "x", "clocks": "y"},
                        {"name": "a", "netlist": "x", "clocks": "y"},
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="duplicate"):
            load_jobs(dup)
        missing = tmp_path / "missing.json"
        missing.write_text(
            json.dumps(
                {"schema": "repro.batch/1", "jobs": [{"name": "a"}]}
            )
        )
        with pytest.raises(ValueError, match="missing"):
            load_jobs(missing)

    def test_rejects_empty(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema": "repro.batch/1", "jobs": []}))
        with pytest.raises(ValueError, match="empty"):
            load_jobs(empty)


class TestPlanning:
    def test_plan_carries_partition_and_key(self, job):
        engine = BatchEngine(serial=True)
        plans = engine.plan([job])
        assert len(plans) == 1
        assert plans[0].partition == ("phi1", "phi2")
        assert len(plans[0].key) == 64
        assert plans[0].weight > 0

    def test_equal_content_means_equal_key(self, design_files):
        netlist, clocks = design_files
        engine = BatchEngine(serial=True)
        a = engine.plan([BatchJob("a", netlist, clocks)])[0]
        b = engine.plan([BatchJob("b", netlist, clocks)])[0]
        assert a.key == b.key
        c = engine.plan(
            [BatchJob("c", netlist, clocks, slow_path_limit=3)]
        )[0]
        assert c.key != a.key, "config is part of the content address"


class TestColdWarm:
    def test_warm_rerun_is_all_hits_and_zero_iterations(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        cache = ResultCache(tmp_path / "cache")
        engine = BatchEngine(cache=cache, serial=True)
        jobs = [
            BatchJob("a", netlist, clocks),
            BatchJob("b", netlist, clocks, slow_path_limit=9),
            BatchJob("c", netlist, clocks, tolerance=0.01),
        ]
        cold = engine.run(jobs)
        assert cold.computed == 3 and cold.cached == 0
        assert cold.total_iterations > 0
        warm = engine.run(jobs)
        assert warm.cached == 3 and warm.computed == 0
        assert warm.hit_rate == 1.0
        # The acceptance criterion: a warm batch runs zero Algorithm 1
        # iterations -- everything is served from the content cache.
        assert warm.total_iterations == 0
        # Hits return the same payload the cold run computed.
        for before, after in zip(cold.outcomes, warm.outcomes):
            assert after.payload["endpoint_slacks"] == (
                before.payload["endpoint_slacks"]
            )
            assert after.manifest["timing"] == before.manifest["timing"]

    def test_mutated_input_misses(self, tmp_path, design_files):
        netlist, clocks = design_files
        cache = ResultCache(tmp_path / "cache")
        engine = BatchEngine(cache=cache, serial=True)
        engine.run([BatchJob("a", netlist, clocks)])
        # Change the clock schedule on disk: content address changes.
        data = json.loads(open(clocks).read())
        for clock in data["clocks"]:
            clock["period"] = "999"
        with open(clocks, "w") as handle:
            json.dump(data, handle)
        again = engine.run([BatchJob("a", netlist, clocks)])
        assert again.computed == 1 and again.cached == 0

    def test_exit_codes(self, tmp_path, design_files):
        netlist, clocks = design_files
        engine = BatchEngine(serial=True)
        ok = engine.run([BatchJob("a", netlist, clocks)])
        assert ok.exit_code() == 0
        missing = engine.run(
            [BatchJob("gone", str(tmp_path / "missing.json"), clocks)]
        )
        assert missing.failed == 1
        assert missing.exit_code() == 2
        assert missing.outcomes[0].error


class TestFaultTolerance:
    def test_worker_crash_is_retried_to_completion(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        flag = tmp_path / "crash.flag"
        flag.write_text("boom")
        jobs = [
            BatchJob(
                "crashy",
                netlist,
                clocks,
                inject=(("inject_crash_file", str(flag)),),
            ),
            BatchJob("steady", netlist, clocks, slow_path_limit=9),
        ]
        with obs.recording() as recorder:
            report = BatchEngine(
                cache=ResultCache(tmp_path / "cache"),
                max_workers=2,
                retries=2,
            ).run(jobs)
        assert report.failed == 0
        assert report.computed == 2
        assert not flag.exists(), "crash injection fired exactly once"
        crashy = next(
            o for o in report.outcomes if o.job.name == "crashy"
        )
        assert crashy.attempts >= 2, "the crashed job was re-dispatched"
        assert crashy.payload["intended"] is True
        assert recorder.counters.get("service.batch.worker_crashes", 0) >= 1

    def test_degrades_to_serial_when_retries_exhausted(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        flag = tmp_path / "crash.flag"
        flag.write_text("boom")
        jobs = [
            BatchJob(
                "crashy",
                netlist,
                clocks,
                inject=(("inject_crash_file", str(flag)),),
            )
        ]
        with obs.recording() as recorder:
            report = BatchEngine(max_workers=1, retries=0).run(jobs)
        assert report.failed == 0 and report.computed == 1
        assert report.outcomes[0].serial_fallback is True
        assert (
            recorder.counters.get("service.batch.serial_fallbacks", 0)
            >= 1
        )

    def test_worker_error_reported_not_raised(self, tmp_path, design_files):
        __, clocks = design_files
        bogus = tmp_path / "bogus.xyz"
        bogus.write_text("?")
        report = BatchEngine(max_workers=1, retries=0).run(
            [BatchJob("bad", str(bogus), clocks)]
        )
        assert report.failed == 1
        assert "unknown netlist format" in report.outcomes[0].error

    def test_report_document_shape(self, tmp_path, design_files):
        netlist, clocks = design_files
        report = BatchEngine(
            cache=ResultCache(tmp_path / "cache"), serial=True
        ).run([BatchJob("a", netlist, clocks)])
        doc = report.to_dict()
        assert doc["schema"] == "repro.batchstats/1"
        assert doc["jobs"] == 1
        assert doc["cache"]["stores"] == 1
        row = doc["outcomes"][0]
        assert row["status"] == "computed"
        assert row["manifest_digest"]
        assert "batch: 1 job(s)" in report.render_text()


class TestBatchProfiling:
    """PR-6: per-job worker profiling and the merged profile."""

    def test_serial_jobs_carry_profiles(self, tmp_path, design_files):
        netlist, clocks = design_files
        engine = BatchEngine(serial=True, profile_hz=500)
        report = engine.run([BatchJob("a", netlist, clocks)])
        (outcome,) = report.outcomes
        assert outcome.status == "computed"
        assert outcome.profile is not None
        assert outcome.profile["schema"] == "repro.profile/1"
        assert outcome.profile["hz"] == 500
        merged = report.merged_profile()
        assert merged is not None
        assert merged["schema"] == "repro.profile/1"

    def test_no_profiling_by_default(self, design_files):
        netlist, clocks = design_files
        report = BatchEngine(serial=True).run(
            [BatchJob("a", netlist, clocks)]
        )
        assert report.outcomes[0].profile is None
        assert report.merged_profile() is None

    def test_cached_jobs_have_no_profile(self, tmp_path, design_files):
        netlist, clocks = design_files
        cache = ResultCache(tmp_path / "cache")
        engine = BatchEngine(cache=cache, serial=True, profile_hz=500)
        jobs = [BatchJob("a", netlist, clocks)]
        engine.run(jobs)
        warm = engine.run(jobs)
        assert warm.outcomes[0].status == "cached"
        assert warm.outcomes[0].profile is None
        assert warm.merged_profile() is None

    def test_merged_profile_includes_extra_parent_doc(
        self, design_files
    ):
        netlist, clocks = design_files
        from repro.obs.profile import PROFILE_SCHEMA

        parent = {
            "schema": PROFILE_SCHEMA,
            "pid": 999999,
            "hz": 500.0,
            "started_wall": None,
            "duration_s": 0.1,
            "samples": 2,
            "attributed": 2,
            "idle": 0,
            "dropped_ticks": 0,
            "stacks": [
                {"span": "cli.batch", "frames": ["run"], "count": 2}
            ],
        }
        engine = BatchEngine(serial=True, profile_hz=500)
        report = engine.run([BatchJob("a", netlist, clocks)])
        merged = report.merged_profile(parent)
        assert 999999 in merged["pids"]
        assert merged["samples"] >= 2
        # None/empty extras are ignored.
        assert report.merged_profile(None) is not None

    def test_pool_workers_ship_profiles_across_pids(
        self, design_files
    ):
        import os

        netlist, clocks = design_files
        engine = BatchEngine(max_workers=2, profile_hz=500)
        report = engine.run(
            [
                BatchJob("a", netlist, clocks),
                BatchJob("b", netlist, clocks, slow_path_limit=5),
            ]
        )
        assert report.failed == 0
        profiles = [o.profile for o in report.outcomes if o.profile]
        assert len(profiles) == 2
        worker_pids = {doc["pid"] for doc in profiles}
        assert os.getpid() not in worker_pids
        merged = report.merged_profile()
        assert set(merged["pids"]) == worker_pids

    def test_rejects_bad_profile_hz(self):
        with pytest.raises(ValueError):
            BatchEngine(profile_hz=0)


class TestWorkerCrashForensics:
    """PR 7: failed jobs carry a repro.crash/1 worker postmortem."""

    def _failed_report(self, design_files):
        netlist, clocks = design_files
        return BatchEngine(serial=True).run(
            [BatchJob("bad", netlist, clocks,
                      inject=(("inject_raise", "synthetic fault"),))]
        )

    def test_outcome_carries_crash_document(self, design_files):
        report = self._failed_report(design_files)
        outcome = report.outcomes[0]
        assert outcome.status == "failed"
        crash = outcome.crash
        assert crash["schema"] == "repro.crash/1"
        assert crash["kind"] == "worker_exception"
        assert crash["op"] == "bad"
        assert crash["error"]["error_type"] == "ValueError"
        assert crash["error"]["frames"]
        assert crash["threads"]

    def test_crash_survives_to_dict_and_json(self, design_files):
        report = self._failed_report(design_files)
        doc = report.to_dict()
        row = doc["outcomes"][0]
        assert row["crash"]["kind"] == "worker_exception"
        json.dumps(doc)  # the whole document stays serialisable

    def test_render_text_shows_crash_site(self, design_files):
        report = self._failed_report(design_files)
        text = report.render_text()
        # The innermost crash frame is shown inline for failed jobs.
        assert "synthetic fault" in text
        assert " in _maybe_inject_faults" in text
        assert "workers.py:" in text

    def test_successful_outcomes_have_no_crash(self, design_files):
        netlist, clocks = design_files
        report = BatchEngine(serial=True).run(
            [BatchJob("good", netlist, clocks)]
        )
        assert report.outcomes[0].crash is None
        assert report.to_dict()["outcomes"][0]["crash"] is None


class TestSourceMapPlanning:
    """The warm-plan fast path: raw-bytes digests, zero parent parses."""

    def _engine(self, tmp_path):
        return BatchEngine(
            cache=ResultCache(tmp_path / "cache", max_entries=32),
            serial=True,
        )

    def test_warm_plan_parses_nothing(self, tmp_path, job, monkeypatch):
        """After one run, planning the same bytes never parses."""
        import repro.service.batch as batch_mod

        engine = self._engine(tmp_path)
        report = engine.run([job])
        assert report.computed == 1

        warm = self._engine(tmp_path)  # fresh engine, same cache dir

        def explode(j):
            raise AssertionError("warm plan must not parse designs")

        monkeypatch.setattr(batch_mod, "_load_design", explode)
        plans = warm.plan([job], weigh=False)
        assert plans[0].error is None
        report2 = warm.run([job])
        assert report2.cached == 1
        assert report2.failed == 0

    def test_planner_output_identical_cold_vs_warm(self, tmp_path, job):
        engine = self._engine(tmp_path)
        cold = engine.plan([job], weigh=False)
        engine.run([job])
        warm_engine = self._engine(tmp_path)
        warm = warm_engine.plan([job], weigh=False)
        assert [(p.key, p.partition, p.weight) for p in warm] == [
            (p.key, p.partition, p.weight) for p in cold
        ]

    def test_worker_fingerprint_teaches_the_map(self, tmp_path, job):
        from repro.service.batch import SourceMap

        engine = self._engine(tmp_path)
        engine.run([job])
        sources = SourceMap(tmp_path / "cache" / "sources.json")
        assert len(sources) == 1
        (entry,) = [sources.get(s) for s in sources._load()]
        assert entry["partition"] == ["phi1", "phi2"]
        assert entry["weight"] > 0

    def test_map_weight_drives_lpt_on_cache_miss(self, tmp_path, job):
        """A fast-path plan weighs from the map when the result cache
        missed (e.g. evicted) -- no parse needed for LPT either."""
        engine = self._engine(tmp_path)
        engine.run([job])
        warm = self._engine(tmp_path)
        plans = warm.plan([job], weigh=True)
        assert plans[0].weight > 0
        assert plans[0].network is None  # no parse held

    def test_edited_source_falls_back_to_parse(self, tmp_path, job):
        from pathlib import Path

        engine = self._engine(tmp_path)
        engine.run([job])
        # Touch the netlist bytes (whitespace only -- same design).
        netlist = Path(job.netlist)
        netlist.write_text(netlist.read_text() + "\n")
        warm = self._engine(tmp_path)
        plans = warm.plan([job], weigh=False)
        # Parse path: semantic digest unchanged, so still a cache hit.
        assert plans[0].error is None
        report = warm.run([job])
        assert report.cached == 1

    def test_no_cache_means_no_map(self, tmp_path, job):
        engine = BatchEngine(cache=None, serial=True)
        assert engine._sources is None
        plans = engine.plan([job])
        assert plans[0].partition == ("phi1", "phi2")

    def test_corrupt_map_is_empty(self, tmp_path):
        from repro.service.batch import SourceMap

        path = tmp_path / "sources.json"
        path.write_text("{not json")
        sources = SourceMap(path)
        assert len(sources) == 0
        sources.record("s1", "k1", ("phi1",), 4)
        sources.flush()
        reloaded = SourceMap(path)
        assert reloaded.get("s1")["weight"] == 4

    def test_record_keeps_learned_weight(self, tmp_path):
        from repro.service.batch import SourceMap

        sources = SourceMap(tmp_path / "sources.json")
        sources.record("s1", "k1", ("phi1",), 7)
        sources.record("s1", "k1", ("phi1",), 0)  # weightless probe hit
        assert sources.get("s1")["weight"] == 7
        sources.record("s1", "k2", ("phi1",), 0)  # new key: reset
        assert sources.get("s1")["weight"] == 0

    def test_map_is_bounded(self, tmp_path):
        from repro.service.batch import SourceMap

        sources = SourceMap(tmp_path / "sources.json", max_entries=3)
        for i in range(5):
            sources.record(f"s{i}", f"k{i}", ("phi1",), 1)
        assert len(sources) == 3
        assert sources.get("s0") is None
        assert sources.get("s4") is not None
