"""repro-sta doctor: fetch/render/exit-code triage + CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import DaemonClient, TimingDaemon
from repro.service.doctor import (
    DOCTOR_SCHEMA,
    doctor_exit_code,
    fetch_doctor,
    render_doctor,
)


def _doc(**overrides):
    """A healthy doctor document; keyword args replace sub-documents."""
    doc = {
        "schema": DOCTOR_SCHEMA,
        "ts": 1000.0,
        "health": {
            "ok": True,
            "pid": 4242,
            "uptime_s": 61.0,
            "requests": 10,
            "errors": 1,
            "in_flight": 0,
        },
        "buildinfo": {"ok": True, "version": "1.2.3", "protocol": 1},
        "alerts": {"ok": True, "alerts": [], "rules": 0, "firing": 0},
        "flight": {"ok": True, "events": [], "total": 0, "dropped": 0},
        "crash": {"ok": True, "crash": None, "path": None},
    }
    doc.update(overrides)
    return doc


def _firing_row(**extra):
    row = {
        "name": "daemon.stalled",
        "kind": "event",
        "severity": "critical",
        "state": "firing",
        "message": "request stuck",
        "acked": False,
    }
    row.update(extra)
    return row


def _crash_doc():
    return {
        "ok": True,
        "crash": {
            "schema": "repro.crash/1",
            "ts": 990.0,
            "kind": "handler_exception",
            "op": "fail",
            "error": {
                "schema": "repro.error/1",
                "error": "boom",
                "error_type": "RuntimeError",
                "frames": [
                    {
                        "file": "service/daemon.py",
                        "line": 99,
                        "function": "_op_fail",
                        "code": "raise RuntimeError",
                    }
                ],
            },
        },
        "path": "/var/crashes/crash-1.json",
    }


class TestExitCode:
    def test_healthy_is_zero(self):
        assert doctor_exit_code(_doc()) == 0

    def test_firing_alert_is_one(self):
        doc = _doc(
            alerts={"ok": True, "alerts": [_firing_row()], "firing": 1}
        )
        assert doctor_exit_code(doc) == 1

    def test_pending_alert_stays_zero(self):
        doc = _doc(
            alerts={
                "ok": True,
                "alerts": [_firing_row(state="pending")],
                "firing": 0,
            }
        )
        assert doctor_exit_code(doc) == 0

    def test_crash_is_two_and_wins_over_alerts(self):
        doc = _doc(
            crash=_crash_doc(),
            alerts={"ok": True, "alerts": [_firing_row()], "firing": 1},
        )
        assert doctor_exit_code(doc) == 2

    def test_degraded_subdocs_do_not_trip_the_verdict(self):
        doc = _doc(
            crash={"ok": False, "error": "unknown op"},
            alerts={"ok": False, "error": "no engine"},
        )
        assert doctor_exit_code(doc) == 0


class TestRenderDoctor:
    def test_healthy_render(self):
        text = render_doctor(_doc())
        assert "verdict: HEALTHY (exit 0)" in text
        assert "daemon pid 4242" in text
        assert "version 1.2.3" in text
        assert "requests : 10 total, 1 errors, 0 in flight" in text
        assert "alerts   : 0 active of 0 rules" in text
        assert "crash    : none recorded" in text

    def test_firing_alert_render(self):
        doc = _doc(
            alerts={
                "ok": True,
                "alerts": [_firing_row(acked=True)],
                "firing": 1,
            }
        )
        text = render_doctor(doc)
        assert "verdict: DEGRADED -- alerts firing (exit 1)" in text
        assert "1 active of 1 rules" in text
        assert "[critical] daemon.stalled [acked]: request stuck" in text

    def test_crash_render_shows_site_and_report(self):
        text = render_doctor(_doc(crash=_crash_doc()))
        assert "verdict: CRASHED -- postmortem on disk (exit 2)" in text
        assert "handler_exception [RuntimeError] boom" in text
        assert "at service/daemon.py:99 in _op_fail" in text
        assert "report: /var/crashes/crash-1.json" in text

    def test_degraded_subdocs_render_explanations(self):
        doc = _doc(
            alerts={"ok": False, "error": "x"},
            flight={"ok": False, "error": "x"},
            crash={"ok": False, "error": "x"},
        )
        text = render_doctor(doc)
        assert "(no alert engine on this daemon)" in text
        assert "(disabled on this daemon)" in text
        assert "(daemon too old for the crash-report op)" in text

    def test_flight_tail_renders_each_kind(self):
        events = [
            {
                "kind": "request",
                "ts": 995.0,
                "op": "analyze",
                "design": "chip",
                "status": "ok",
                "duration_ms": 250.0,
            },
            {
                "kind": "error",
                "ts": 996.0,
                "error": {"error_type": "ValueError", "error": "kaboom"},
            },
            {
                "kind": "stall",
                "ts": 997.0,
                "op": "sleep",
                "status": "stalled",
                "waited_s": 1.5,
            },
            {"kind": "log", "ts": 998.0, "message": "daemon started"},
            "not-a-dict",
        ]
        doc = _doc(
            flight={
                "ok": True,
                "events": events,
                "total": 9,
                "dropped": 4,
            }
        )
        text = render_doctor(doc)
        assert "last 5 of 9 events (4 dropped)" in text
        assert "analyze design=chip ok 250.0ms" in text
        assert "ValueError: kaboom" in text
        assert "sleep stalled waited 1.5s" in text
        assert "daemon started" in text


class TestFetchDoctor:
    class _StubClient:
        def __init__(self):
            self.flight_last = None

        def health(self):
            return {"ok": True, "pid": 1}

        def buildinfo(self):
            return {"ok": True, "version": "x"}

        def alerts(self):
            return {"ok": True, "alerts": []}

        def flight(self, last=None):
            self.flight_last = last
            return {"ok": True, "events": []}

        def crash_report(self):
            return {"ok": True, "crash": None}

    def test_bundles_all_ops(self):
        stub = self._StubClient()
        doc = fetch_doctor(stub, flight_last=7)
        assert doc["schema"] == DOCTOR_SCHEMA
        assert doc["ts"] > 0
        assert doc["health"]["pid"] == 1
        assert doc["buildinfo"]["version"] == "x"
        assert doc["alerts"]["ok"] and doc["flight"]["ok"]
        assert doc["crash"]["crash"] is None
        assert stub.flight_last == 7


class TestDoctorAgainstLiveDaemon:
    @pytest.fixture
    def diag(self, tmp_path):
        sock = str(tmp_path / "doc.sock")
        with TimingDaemon(
            sock,
            crash_dir=tmp_path / "crashes",
            debug_ops=True,
            stall_timeout_s=None,
        ) as server:
            with DaemonClient(sock, timeout=30.0) as c:
                yield server, c

    def test_healthy_daemon_exits_zero(self, diag):
        __, c = diag
        doc = fetch_doctor(c)
        assert doctor_exit_code(doc) == 0
        assert "verdict: HEALTHY" in render_doctor(doc)
        json.dumps(doc)  # the whole document stays serialisable

    def test_crashed_daemon_exits_two(self, diag):
        __, c = diag
        assert c.request({"op": "fail"})["ok"] is False
        doc = fetch_doctor(c)
        assert doctor_exit_code(doc) == 2
        text = render_doctor(doc)
        assert "handler_exception" in text
        assert "report:" in text

    def test_cli_doctor_json_and_exit_codes(self, diag, capsys):
        server, c = diag
        sock = server.socket_path
        assert main(["doctor", "--socket", sock, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == DOCTOR_SCHEMA
        assert c.request({"op": "fail"})["ok"] is False
        assert main(["doctor", "--socket", sock]) == 2
        assert "verdict: CRASHED" in capsys.readouterr().out

    def test_cli_doctor_flight_tail_flag(self, diag, capsys):
        server, __ = diag
        rc = main(
            ["doctor", "--socket", server.socket_path,
             "--flight", "2", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["flight"]["events"]) <= 2

    def test_cli_alerts_table_and_ack(self, diag, capsys):
        server, __ = diag
        sock = server.socket_path
        assert main(["alerts", "--socket", sock]) == 0
        out = capsys.readouterr().out
        assert "STATE" in out and "daemon.stalled" in out
        # Ack requires a firing alert; exercise the failure path first.
        assert main(
            ["alerts", "--socket", sock, "--ack", "daemon.stalled"]
        ) == 1
        server.alerts.fire("daemon.stalled", message="test")
        assert main(
            ["alerts", "--socket", sock, "--ack", "daemon.stalled"]
        ) == 0
        assert "acknowledged daemon.stalled" in capsys.readouterr().out
        assert main(["alerts", "--socket", sock, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        row = [
            r for r in payload["alerts"]
            if r["name"] == "daemon.stalled"
        ][0]
        assert row["acked"] is True

    def test_cli_unreachable_daemon_raises_systemexit(self, tmp_path):
        gone = str(tmp_path / "gone.sock")
        with pytest.raises(SystemExit, match="cannot reach daemon"):
            main(["doctor", "--socket", gone])
        with pytest.raises(SystemExit, match="cannot reach daemon"):
            main(["alerts", "--socket", gone])
