"""Shared fixtures for the service-layer tests."""

from __future__ import annotations

import pytest

from repro.clocks.serialize import save_schedule
from repro.generators import latch_pipeline
from repro.netlist.persistence import save_network


@pytest.fixture
def design_files(tmp_path):
    """A small latch pipeline written to disk: (netlist, clocks)."""
    network, schedule = latch_pipeline(
        stages=4, stage_lengths=[10, 1, 1, 1], period=12.0
    )
    netlist = tmp_path / "pipeline.json"
    clocks = tmp_path / "clocks.json"
    save_network(network, netlist)
    save_schedule(schedule, clocks)
    return str(netlist), str(clocks)
