"""The distributed cache fabric: router, server, client, tiers."""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.service.batch import BatchEngine, BatchJob
from repro.service.cache import CACHE_SCHEMA, ResultCache, _payload_sha
from repro.service.fabric import (
    FABRIC_SCHEMA,
    CacheServer,
    RemoteCache,
    ShardRouter,
    TieredCache,
)


def _key(i: int) -> str:
    return hashlib.sha256(f"key-{i}".encode()).hexdigest()


PEERS = [f"http://127.0.0.1:{9400 + i}" for i in range(4)]


class TestShardRouter:
    def test_bucket_is_first_nibble(self):
        assert ShardRouter.bucket_of("0" + "a" * 63) == 0
        assert ShardRouter.bucket_of("f" * 64) == 15

    def test_malformed_key_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter.bucket_of("")
        with pytest.raises(ValueError):
            ShardRouter.bucket_of("zzz")

    def test_needs_a_peer(self):
        with pytest.raises(ValueError):
            ShardRouter([])

    def test_deterministic_within_process(self):
        a = ShardRouter(PEERS)
        b = ShardRouter(list(reversed(PEERS)))  # order-insensitive
        assert a.mapping() == b.mapping()

    def test_deterministic_across_processes(self):
        """Same peer list -> same mapping under a different hash seed.

        The scheme must not lean on ``hash()`` (randomised per process)
        -- every client with the same ``--peers`` list has to route
        identically without coordination.
        """
        code = (
            "import json;"
            "from repro.service.fabric import ShardRouter;"
            f"r = ShardRouter({PEERS!r});"
            "print(json.dumps({str(k): v for k, v in r.mapping().items()}))"
        )
        import os
        from pathlib import Path

        import repro

        src_dir = str(Path(repro.__file__).resolve().parents[1])
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={
                **os.environ,
                "PYTHONPATH": src_dir,
                "PYTHONHASHSEED": "12345",
            },
        )
        remote_mapping = {
            int(k): v for k, v in json.loads(out.stdout).items()
        }
        assert remote_mapping == ShardRouter(PEERS).mapping()

    def test_distribution_over_buckets_is_uniform_ish(self):
        """Keys spread over the 16 digest-prefix buckets ~uniformly."""
        counts = [0] * 16
        for i in range(1600):
            counts[ShardRouter.bucket_of(_key(i))] += 1
        # Expected 100 per bucket; SHA-256 nibbles are uniform, so a
        # generous 2x band catches only a broken bucket function.
        assert min(counts) > 50
        assert max(counts) < 200

    def test_every_peer_owns_something(self):
        owners = set(ShardRouter(PEERS[:2]).mapping().values())
        assert owners == set(p.rstrip("/") for p in PEERS[:2])

    def test_minimal_movement_on_peer_removal(self):
        """Removing one peer moves only the buckets it owned."""
        before = ShardRouter(PEERS).mapping()
        removed = PEERS[1]
        after = ShardRouter(
            [p for p in PEERS if p != removed]
        ).mapping()
        for bucket in range(16):
            if before[bucket] != removed:
                # Every surviving peer's buckets stay put -- the HRW
                # argmax over the remaining candidates is unchanged.
                assert after[bucket] == before[bucket]
            else:
                assert after[bucket] != removed


@pytest.fixture
def server(tmp_path):
    with CacheServer(tmp_path / "store", max_entries=64) as srv:
        yield srv


def _base(server) -> str:
    host, port = server.address
    return f"http://{host}:{port}"


def _envelope(key: str, payload: dict, manifest=None) -> bytes:
    entry = {
        "schema": CACHE_SCHEMA,
        "key": key,
        "stored_at": "2026-01-01T00:00:00",
        "payload_sha256": _payload_sha(payload, manifest),
        "payload": payload,
        "manifest": manifest,
    }
    return json.dumps(
        {"schema": FABRIC_SCHEMA, "key": key, "entry": entry}
    ).encode()


def _put(server, key, body, params=""):
    request = urllib.request.Request(
        f"{_base(server)}/objects/{key}{params}", data=body, method="PUT"
    )
    with urllib.request.urlopen(request) as r:
        return r.status


class TestCacheServer:
    def test_round_trip(self, server):
        key = _key(1)
        assert _put(server, key, _envelope(key, {"x": 1})) == 200
        with urllib.request.urlopen(
            f"{_base(server)}/objects/{key}"
        ) as r:
            doc = json.loads(r.read())
        assert doc["schema"] == FABRIC_SCHEMA
        assert doc["entry"]["payload"] == {"x": 1}

    def test_get_unknown_key_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{_base(server)}/objects/{_key(9)}")
        assert excinfo.value.code == 404

    def test_head_existence(self, server):
        key = _key(2)
        request = urllib.request.Request(
            f"{_base(server)}/objects/{key}", method="HEAD"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
        _put(server, key, _envelope(key, {"x": 2}))
        with urllib.request.urlopen(request) as r:
            assert r.status == 200

    def test_put_integrity_reject_400(self, server):
        key = _key(3)
        body = _envelope(key, {"x": 3})
        tampered = body.replace(b'"x": 3', b'"x": 4')
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _put(server, key, tampered)
        assert excinfo.value.code == 400
        # The corrupt entry was never stored.
        assert server.cache.get(key) is None

    def test_put_wrong_schema_400(self, server):
        key = _key(4)
        body = json.dumps({"schema": "nope", "key": key}).encode()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _put(server, key, body)
        assert excinfo.value.code == 400

    def test_post_objects_405_allows_put(self, server):
        key = _key(5)
        request = urllib.request.Request(
            f"{_base(server)}/objects/{key}", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405
        assert "PUT" in excinfo.value.headers["Allow"]

    def test_lease_blocks_eviction(self, tmp_path):
        with CacheServer(tmp_path / "s", max_entries=2) as srv:
            leased = _key(10)
            _put(srv, leased, _envelope(leased, {"i": 0}), "?lease=h1")
            for i in (11, 12, 13):
                key = _key(i)
                _put(srv, key, _envelope(key, {"i": i}))
            # Overflowed twice past max_entries=2, but the leased entry
            # was never the eviction victim.
            assert srv.cache.get(leased) is not None
            assert srv.leased(leased)

    def test_lease_expires(self, tmp_path):
        with CacheServer(
            tmp_path / "s", max_entries=8, lease_ttl_s=0.05
        ) as srv:
            key = _key(20)
            _put(srv, key, _envelope(key, {"x": 1}), "?lease=h1")
            assert srv.leased(key)
            time.sleep(0.06)
            assert not srv.leased(key)

    def test_lease_release(self, server):
        key = _key(21)
        _put(server, key, _envelope(key, {"x": 1}), "?lease=h1")
        assert server.leased(key)
        request = urllib.request.Request(
            f"{_base(server)}/leases/{key}?owner=h1", method="DELETE"
        )
        with urllib.request.urlopen(request) as r:
            assert json.loads(r.read())["released"] is True
        assert not server.leased(key)

    def test_fabricz(self, server):
        key = _key(22)
        _put(server, key, _envelope(key, {"x": 1}), "?lease=h1")
        with urllib.request.urlopen(f"{_base(server)}/fabricz") as r:
            doc = json.loads(r.read())
        assert doc["leases"] == 1
        assert doc["requests"] >= 1


class TestRemoteCache:
    def test_put_get_head(self, server):
        remote = RemoteCache([_base(server)])
        key = _key(30)
        assert remote.get(key) is None
        assert remote.head(key) is False
        assert remote.put(key, {"v": 30}, {"m": 1}) is True
        entry = remote.get(key)
        assert entry["payload"] == {"v": 30}
        assert entry["manifest"] == {"m": 1}
        assert remote.head(key) is True
        assert remote.stats.remote_hits == 1
        assert remote.stats.remote_misses == 1
        assert remote.stats.remote_stores == 1

    def test_client_side_integrity_check(self):
        """A lying server is a miss, never a poisoned cache."""
        from repro.service.httpmon import RouteHTTPServer, RouteTable

        key = _key(31)

        def lying(request):
            entry = {
                "schema": CACHE_SCHEMA,
                "key": key,
                "payload_sha256": "0" * 64,  # doesn't match payload
                "payload": {"v": 1},
                "manifest": None,
            }
            body = json.dumps(
                {"schema": FABRIC_SCHEMA, "key": key, "entry": entry}
            )
            return 200, "application/json", body

        table = RouteTable()
        table.add("GET", "/objects/<key>", lying)
        with RouteHTTPServer(table=table) as srv:
            host, port = srv.address
            remote = RemoteCache([f"http://{host}:{port}"])
            assert remote.get(key) is None
        assert remote.stats.integrity_failures == 1
        assert remote.stats.remote_hits == 0

    def test_dead_peer_degrades_and_recovers(self, tmp_path):
        down_events, up_events = [], []
        with CacheServer(tmp_path / "s") as srv:
            base = _base(srv)
        # Server stopped: the port is now dead.
        remote = RemoteCache(
            [base],
            timeout_s=0.2,
            retries=1,
            backoff_s=0.01,
            reprobe_s=30.0,
            on_peer_down=down_events.append,
            on_peer_up=up_events.append,
        )
        key = _key(40)
        assert remote.get(key) is None
        assert remote.degraded
        assert remote.down_peers() == [base]
        assert down_events == [base]
        assert remote.stats.retries == 1
        # While down (and before the re-probe window), requests are
        # skipped without touching the socket.
        assert remote.put(key, {"v": 1}) is False
        assert remote.stats.degraded_skips >= 1
        # Peer comes back on the same port; an active probe heals it.
        host, port = base.rsplit(":", 1)[0], int(base.rsplit(":", 1)[1])
        with CacheServer(tmp_path / "s2", port=port) as srv2:
            assert remote.probe_peers() == []
            assert not remote.degraded
            assert up_events == [base]
            assert remote.put(key, {"v": 1}) is True

    def test_probe_peers_marks_down(self, tmp_path):
        with CacheServer(tmp_path / "s") as srv:
            base = _base(srv)
            remote = RemoteCache([base], timeout_s=0.2)
            assert remote.probe_peers() == []
        assert remote.probe_peers(timeout_s=0.2) == [base]
        assert remote.degraded


class TestTieredCache:
    def _tier(self, tmp_path, server, name="l1"):
        return TieredCache(
            ResultCache(tmp_path / name, max_entries=32),
            RemoteCache([_base(server)]),
        )

    def test_put_reaches_both_tiers(self, tmp_path, server):
        tier = self._tier(tmp_path, server)
        key = _key(50)
        tier.put(key, {"v": 50})
        assert tier.local.get(key) is not None
        assert server.cache.get(key) is not None

    def test_remote_hit_writes_through_to_l1(self, tmp_path, server):
        writer = self._tier(tmp_path, server, "writer")
        key = _key(51)
        writer.put(key, {"v": 51})
        reader = self._tier(tmp_path, server, "reader")
        entry = reader.get(key)
        assert entry["payload"] == {"v": 51}
        assert reader.remote.stats.remote_hits == 1
        # Second probe is a pure L1 hit.
        assert reader.get(key)["payload"] == {"v": 51}
        assert reader.remote.stats.remote_hits == 1

    def test_local_only_on_dead_peer(self, tmp_path):
        with CacheServer(tmp_path / "s") as srv:
            base = _base(srv)
        tier = TieredCache(
            ResultCache(tmp_path / "l1"),
            RemoteCache([base], timeout_s=0.2, retries=0),
        )
        key = _key(52)
        tier.put(key, {"v": 52})  # remote push fails silently
        assert tier.get(key)["payload"] == {"v": 52}
        assert tier.remote.degraded

    def test_stats_merge(self, tmp_path, server):
        tier = self._tier(tmp_path, server)
        key = _key(53)
        tier.get(key)
        tier.put(key, {"v": 53})
        doc = tier.stats.to_dict()
        assert doc["remote"]["misses"] == 1
        assert doc["remote"]["stores"] == 1
        assert "remote_hit_rate" in doc

    def test_contains_checks_remote(self, tmp_path, server):
        writer = self._tier(tmp_path, server, "writer")
        key = _key(54)
        writer.put(key, {"v": 54})
        reader = self._tier(tmp_path, server, "reader")
        assert key in reader
        assert len(reader) == 0  # HEAD probe, no transfer


class TestBatchOverFabric:
    def test_second_host_warm_batch_hits_remotely(
        self, tmp_path, server, design_files
    ):
        """Host A computes; host B's cold local cache hits the fabric."""
        netlist, clocks = design_files
        jobs = [BatchJob(name="pipe", netlist=netlist, clocks=clocks)]

        def host(name):
            return TieredCache(
                ResultCache(tmp_path / name, max_entries=32),
                RemoteCache([_base(server)]),
            )

        cache_a = host("host_a")
        report_a = BatchEngine(cache=cache_a, serial=True).run(jobs)
        assert report_a.computed == 1
        assert cache_a.remote.stats.remote_stores == 1

        cache_b = host("host_b")
        report_b = BatchEngine(cache=cache_b, serial=True).run(jobs)
        assert report_b.cached == 1
        assert report_b.failed == 0
        assert cache_b.remote.stats.remote_hits == 1
        assert report_b.cache_stats["remote"]["hits"] == 1

    def test_peer_death_degrades_to_recompute(
        self, tmp_path, design_files
    ):
        """A dead peer costs recomputation, never a failed job."""
        netlist, clocks = design_files
        jobs = [BatchJob(name="pipe", netlist=netlist, clocks=clocks)]
        with CacheServer(tmp_path / "s") as srv:
            base = _base(srv)
        cache = TieredCache(
            ResultCache(tmp_path / "l1", max_entries=32),
            RemoteCache([base], timeout_s=0.2, retries=0),
        )
        report = BatchEngine(cache=cache, serial=True).run(jobs)
        assert report.failed == 0
        assert report.computed == 1
        assert cache.remote.degraded


class TestDynamicPeerMembership:
    """``--peers-file`` reloads: a new peer starts receiving the
    buckets it wins, without restarting the clients (PR 9)."""

    def _write_peers(self, path, peers):
        path.write_text("".join(f"{p}\n" for p in peers))

    def _touch(self, path, offset=10):
        import os

        stamp = path.stat().st_mtime + offset
        os.utime(path, (stamp, stamp))

    def test_new_peer_receives_its_buckets(self, tmp_path):
        with CacheServer(tmp_path / "sa") as srv_a, CacheServer(
            tmp_path / "sb"
        ) as srv_b:
            base_a, base_b = _base(srv_a), _base(srv_b)
            peers_file = tmp_path / "peers.txt"
            self._write_peers(peers_file, [base_a])
            remote = RemoteCache([base_a], peers_file=peers_file)
            assert remote.peers == (base_a,)

            # Unchanged file: no reload.
            assert remote.maybe_reload_peers() is False
            assert remote.stats.peer_set_reloads == 0

            # Grow the fleet; the next reload picks up the new peer.
            self._write_peers(peers_file, [base_a, base_b])
            self._touch(peers_file)
            assert remote.maybe_reload_peers() is True
            assert remote.stats.peer_set_reloads == 1
            assert set(remote.peers) == {base_a, base_b}
            mapping = remote.router.mapping()
            won = [b for b, url in mapping.items() if url == base_b]
            assert won, "new peer won no buckets"

            # A put routed to one of the won buckets lands on B.
            key = next(
                _key(i)
                for i in range(256)
                if remote.router.peer_for(_key(i)) == base_b
            )
            assert remote.put(key, {"v": 1}) is True
            with urllib.request.urlopen(
                f"{base_b}/objects/{key}", timeout=5
            ) as response:
                assert response.status == 200
            # ... and is readable back through the fabric client.
            entry = remote.get(key)
            assert entry is not None
            assert entry["payload"] == {"v": 1}

    def test_bad_or_empty_file_keeps_current_set(self, tmp_path):
        with CacheServer(tmp_path / "sa") as srv:
            base = _base(srv)
            peers_file = tmp_path / "peers.txt"
            self._write_peers(peers_file, [base])
            remote = RemoteCache([base], peers_file=peers_file)
            peers_file.write_text("")  # empty: would leave no peers
            self._touch(peers_file)
            assert remote.maybe_reload_peers() is False
            assert remote.peers == (base,)
            peers_file.write_text('{"peers": 42}')
            self._touch(peers_file, offset=20)
            assert remote.maybe_reload_peers() is False
            assert remote.peers == (base,)
            assert remote.stats.peer_set_reloads == 0

    def test_no_peers_file_is_inert(self):
        remote = RemoteCache(PEERS)
        assert remote.maybe_reload_peers() is False
