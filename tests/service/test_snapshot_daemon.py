"""PR 10: lock-free snapshot reads, per-request tracing, lock hygiene.

Covers the copy-on-write ``AnalysisSnapshot`` read path (epoch
invalidation, counters, digest identity), the regression for the old
daemon-wide ``_trace_lock`` (two traced analyses of *different* designs
must overlap in time), and the ``_locked_design`` context manager (an
injected handler fault can never leak ``in_flight`` or keep a design
locked).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.clocks.serialize import save_schedule
from repro.generators import latch_pipeline
from repro.netlist.persistence import save_network
from repro.service import DaemonClient, TimingDaemon


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "snap.sock")
    with TimingDaemon(sock) as server:
        yield server


@pytest.fixture
def client(daemon):
    with DaemonClient(daemon.socket_path, timeout=30.0) as c:
        yield c


def _counters(daemon) -> dict:
    return dict(daemon.recorder.counters)


class TestSnapshotReads:
    def test_repeat_analyze_answers_from_snapshot(
        self, daemon, client, design_files
    ):
        netlist, clocks = design_files
        first = client.analyze(netlist, clocks)
        assert first["engine"] == "cold"
        second = client.analyze(netlist, clocks)
        third = client.analyze(netlist, clocks)
        assert second["engine"] == "snapshot"
        assert third["engine"] == "snapshot"
        # Byte-identical to the locked answer it republishes.
        assert second["manifest_digest"] == first["manifest_digest"]
        assert third["timing_digest"] == first["timing_digest"]
        counters = _counters(daemon)
        assert counters["service.daemon.snapshot_hits"] == 2
        assert counters["service.daemon.snapshot_misses"] == 1

    def test_mutation_invalidates_snapshot(
        self, daemon, client, design_files
    ):
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        assert client.analyze(netlist, clocks)["engine"] == "snapshot"
        mutated = client.mutate(
            netlist, clocks, "scale_cell", cell="s1_i0", factor=1.5
        )
        # Mutate's inline analysis runs under the lock, not the snapshot.
        assert mutated["analysis"]["engine"] == "incremental-warm"
        # ... and republishes, so the next read is lock-free again.
        after = client.analyze(netlist, clocks)
        assert after["engine"] == "snapshot"
        assert (
            after["manifest_digest"]
            == mutated["analysis"]["manifest_digest"]
        )
        assert _counters(daemon)["service.daemon.epoch_bumps"] == 1
        stats = client.stats()["designs"]["latch_pipeline"]
        assert stats["epoch"] == 1
        assert stats["snapshot_hits"] == 2
        assert stats["snapshot_published"] is True

    def test_distinct_parameters_miss_then_hit(
        self, daemon, client, design_files
    ):
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        # New parameter combination: locked analyze, then published.
        first = client.request(
            {
                "op": "analyze",
                "netlist": netlist,
                "clocks": clocks,
                "slow_path_limit": 5,
            }
        )
        assert first["engine"] == "incremental-warm"
        second = client.request(
            {
                "op": "analyze",
                "netlist": netlist,
                "clocks": clocks,
                "slow_path_limit": 5,
            }
        )
        assert second["engine"] == "snapshot"
        assert second["manifest_digest"] == first["manifest_digest"]
        # Both parameter variants coexist in the current snapshot.
        assert client.analyze(netlist, clocks)["engine"] == "snapshot"

    def test_snapshot_reads_disabled_keeps_locked_path(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        sock = str(tmp_path / "locked.sock")
        with TimingDaemon(sock, snapshot_reads=False) as server:
            with DaemonClient(sock, timeout=30.0) as c:
                assert c.analyze(netlist, clocks)["engine"] == "cold"
                repeat = c.analyze(netlist, clocks)
                assert repeat["engine"] == "incremental-warm"
            counters = _counters(server)
            assert "service.daemon.snapshot_hits" not in counters
            assert server._buildinfo()["config"]["snapshot_reads"] is False

    def test_snapshot_hit_response_is_not_aliased(
        self, daemon, client, design_files
    ):
        """handle_line decorates responses (id, trace) in place; the
        cached snapshot entry must stay pristine across hits."""
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        tagged = client.request(
            {
                "op": "analyze",
                "netlist": netlist,
                "clocks": clocks,
                "id": "tag-1",
            }
        )
        assert tagged["id"] == "tag-1"
        untagged = client.analyze(netlist, clocks)
        assert "id" not in untagged
        assert untagged["engine"] == "snapshot"


class TestDoubleCheckedMiss:
    def test_missed_reader_serves_republished_snapshot(
        self, tmp_path, monkeypatch, design_files
    ):
        """A reader that misses (stale epoch) and queues on the lock
        must serve the snapshot republished while it waited -- never
        re-analyse (a warm no-change re-analysis converges in fewer
        iterations and would hash differently than the published
        answer)."""
        netlist, clocks = design_files
        daemon = TimingDaemon(str(tmp_path / "dc.sock"))
        line = json.dumps(
            {"op": "analyze", "netlist": netlist, "clocks": clocks}
        ).encode("utf-8")
        assert daemon.handle_line(line)["ok"]
        state = next(iter(daemon._designs.values()))
        key, cached = next(iter(state.snapshot.responses.items()))

        analyses = {"count": 0}
        real_analyze = TimingDaemon._analyze_state

        def counting_analyze(self, st, request):
            analyses["count"] += 1
            return real_analyze(self, st, request)

        monkeypatch.setattr(
            TimingDaemon, "_analyze_state", counting_analyze
        )

        # Freeze the design mid-"mutation": lock held, epoch bumped,
        # snapshot stale -- exactly the bump->publish window.
        state.lock.acquire()
        state.epoch += 1
        reader_result = {}

        def reader():
            reader_result["response"] = daemon.handle_line(line)

        thread = threading.Thread(target=reader)
        thread.start()
        # Wait until the reader has taken the miss path and is queued
        # (the initial cold analyze already counted one miss).
        deadline = time.perf_counter() + 10.0
        while (
            daemon.recorder.counters.get(
                "service.daemon.snapshot_misses", 0
            )
            < 2
        ):
            assert time.perf_counter() < deadline, "reader never missed"
            time.sleep(0.001)
        # "Mutation" finishes: republish at the new epoch, release.
        daemon._publish_snapshot(state, key, dict(cached))
        state.lock.release()
        thread.join(timeout=10.0)

        response = reader_result["response"]
        assert response["ok"] and response["engine"] == "snapshot"
        assert response["manifest_digest"] == cached["manifest_digest"]
        assert analyses["count"] == 0, "double-checked miss re-analysed"
        counters = _counters(daemon)
        assert counters["service.daemon.snapshot_misses"] == 2
        assert counters["service.daemon.snapshot_hits"] == 1


class TestTracedConcurrency:
    def test_traced_analyses_of_different_designs_overlap(
        self, tmp_path, monkeypatch
    ):
        """Regression for the old daemon-wide trace lock: two traced
        analyses of *different* designs must run concurrently."""
        designs = []
        for index, stages in enumerate((3, 4)):
            network, schedule = latch_pipeline(
                stages=stages, stage_lengths=[4] * stages, period=12.0
            )
            netlist = tmp_path / f"pipe{index}.json"
            clocks = tmp_path / f"clocks{index}.json"
            save_network(network, netlist)
            save_schedule(schedule, clocks)
            designs.append((str(netlist), str(clocks)))

        sock = str(tmp_path / "trace.sock")
        daemon = TimingDaemon(sock)
        windows = {}
        real_analyze = TimingDaemon._analyze_state

        def slow_analyze(self, state, request):
            start = time.perf_counter()
            time.sleep(0.25)
            response = real_analyze(self, state, request)
            windows[state.netlist] = (start, time.perf_counter())
            return response

        monkeypatch.setattr(TimingDaemon, "_analyze_state", slow_analyze)

        def traced_analyze(pair, trace_id):
            netlist, clocks = pair
            line = json.dumps(
                {
                    "op": "analyze",
                    "netlist": netlist,
                    "clocks": clocks,
                    "trace": {
                        "trace_id": trace_id,
                        "span_id": "00000001",
                    },
                }
            ).encode("utf-8")
            return daemon.handle_line(line)

        results = [None, None]
        threads = [
            threading.Thread(
                target=lambda i=i, pair=pair: results.__setitem__(
                    i, traced_analyze(pair, f"{i:016x}")
                )
            )
            for i, pair in enumerate(designs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

        assert all(r is not None and r["ok"] for r in results)
        # Each traced response carries only its own request's spans.
        for result in results:
            spans = result["trace"]["spans"]
            assert (
                sum(1 for s in spans if s["name"] == "service.daemon.request")
                == 1
            )
        (a_start, a_end), (b_start, b_end) = windows.values()
        overlap = min(a_end, b_end) - max(a_start, b_start)
        assert overlap > 0, (
            "traced analyses serialised "
            f"(windows {windows}) -- trace-lock regression"
        )


class TestLockHygiene:
    def test_handler_fault_releases_design_lock(
        self, tmp_path, monkeypatch, design_files
    ):
        netlist, clocks = design_files
        sock = str(tmp_path / "fault.sock")
        daemon = TimingDaemon(sock)
        boom = {"armed": True}
        real_analyze = TimingDaemon._analyze_state

        def faulty_analyze(self, state, request):
            if boom["armed"]:
                boom["armed"] = False
                raise RuntimeError("injected handler fault")
            return real_analyze(self, state, request)

        monkeypatch.setattr(TimingDaemon, "_analyze_state", faulty_analyze)
        line = json.dumps(
            {"op": "analyze", "netlist": netlist, "clocks": clocks}
        ).encode("utf-8")
        failed = daemon.handle_line(line)
        assert failed["ok"] is False
        assert failed["error_type"] == "RuntimeError"

        state = next(iter(daemon._designs.values()))
        assert state.in_flight == 0, "fault leaked state.in_flight"
        assert not state.lock.locked(), "fault left the design locked"
        # The design still serves -- no deadlock, no poisoned state.
        ok = daemon.handle_line(line)
        assert ok["ok"] and ok["engine"] == "cold"
        assert state.in_flight == 0 and not state.lock.locked()
