"""The shared route-dispatch stack (RouteTable / RouteHTTPServer).

One test suite for the HTTP hygiene rules both the telemetry sidecar
and the cache-fabric object store are built on: unknown paths answer a
JSON 404 listing every route, unsupported methods answer 405 with an
accurate ``Allow`` header, HEAD is served from GET with the body
stripped, ValueError maps to 400 and anything else to 500, and prefix
routes (``/objects/<key>``) dispatch with the operand split out.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service.httpmon import HttpRequest, RouteHTTPServer, RouteTable


def _ok(request: HttpRequest):
    return 200, "application/json", json.dumps({"ok": True}) + "\n"


class TestRouteTable:
    def test_exact_dispatch(self):
        table = RouteTable()
        table.add("GET", "/healthz", _ok)
        status, ctype, body, headers = table.dispatch("GET", "/healthz", {})
        assert status == 200
        assert json.loads(body) == {"ok": True}

    def test_unknown_path_404_lists_routes(self):
        table = RouteTable()
        table.add("GET", "/healthz", _ok)
        table.add("PUT", "/objects/<key>", _ok)
        status, ctype, body, headers = table.dispatch("GET", "/nope", {})
        assert status == 404
        doc = json.loads(body)
        assert doc["ok"] is False
        assert doc["routes"] == ["/healthz", "/objects/<key>"]

    def test_unknown_path_404_regardless_of_method(self):
        table = RouteTable()
        table.add("GET", "/healthz", _ok)
        status, *_ = table.dispatch("PUT", "/nope", {})
        assert status == 404

    def test_wrong_method_405_with_allow(self):
        table = RouteTable()
        table.add("GET", "/healthz", _ok)
        status, ctype, body, headers = table.dispatch("POST", "/healthz", {})
        assert status == 405
        assert headers["Allow"] == "GET, HEAD"
        assert json.loads(body)["allow"] == ["GET", "HEAD"]

    def test_allow_reflects_registered_methods(self):
        table = RouteTable()
        table.add("PUT", "/objects/<key>", _ok)
        table.add("GET", "/objects/<key>", _ok)
        status, ctype, body, headers = table.dispatch(
            "POST", "/objects/abc", {}
        )
        assert status == 405
        assert headers["Allow"] == "GET, HEAD, PUT"

    def test_head_falls_back_to_get_handler(self):
        table = RouteTable()
        table.add("GET", "/healthz", _ok)
        status, *_ = table.dispatch("HEAD", "/healthz", {})
        assert status == 200

    def test_prefix_route_operand(self):
        seen = {}

        def handler(request: HttpRequest):
            seen["operand"] = request.operand
            seen["params"] = request.params
            return 200, "text/plain", "hi\n"

        table = RouteTable()
        table.add("GET", "/objects/<key>", handler)
        status, *_ = table.dispatch(
            "GET", "/objects/abc123", {"lease": "h1"}
        )
        assert status == 200
        assert seen["operand"] == "abc123"
        assert seen["params"] == {"lease": "h1"}

    def test_prefix_route_requires_operand(self):
        table = RouteTable()
        table.add("GET", "/objects/<key>", _ok)
        status, *_ = table.dispatch("GET", "/objects/", {})
        assert status == 404

    def test_value_error_maps_to_400(self):
        def handler(request: HttpRequest):
            raise ValueError("bad input")

        table = RouteTable()
        table.add("GET", "/healthz", handler)
        status, ctype, body, _ = table.dispatch("GET", "/healthz", {})
        assert status == 400
        assert b"bad input" in body

    def test_other_exception_maps_to_500(self):
        def handler(request: HttpRequest):
            raise RuntimeError("boom")

        table = RouteTable()
        table.add("GET", "/healthz", handler)
        status, ctype, body, _ = table.dispatch("GET", "/healthz", {})
        assert status == 500
        assert b"boom" in body

    def test_body_reaches_handler(self):
        seen = {}

        def handler(request: HttpRequest):
            seen["body"] = request.body
            return 200, "text/plain", "ok\n"

        table = RouteTable()
        table.add("PUT", "/objects/<key>", handler)
        table.dispatch("PUT", "/objects/k", {}, body=b"payload")
        assert seen["body"] == b"payload"

    def test_legacy_route_adapter(self):
        table = RouteTable()
        table.add_simple("/metrics", lambda params: ("text/plain", "m\n"))
        status, ctype, body, _ = table.dispatch("GET", "/metrics", {})
        assert status == 200
        assert ctype == "text/plain"
        assert body == b"m\n"


class TestRouteHTTPServer:
    @pytest.fixture
    def server(self):
        table = RouteTable()
        table.add("GET", "/healthz", _ok)

        def echo(request: HttpRequest):
            return (
                200,
                "application/octet-stream",
                request.body or b"(empty)",
            )

        table.add("PUT", "/objects/<key>", echo)
        with RouteHTTPServer(table=table) as srv:
            yield srv

    def _url(self, server, path):
        host, port = server.address
        return f"http://{host}:{port}{path}"

    def test_round_trip(self, server):
        with urllib.request.urlopen(self._url(server, "/healthz")) as r:
            assert r.status == 200
            assert json.loads(r.read()) == {"ok": True}

    def test_put_body_round_trip(self, server):
        request = urllib.request.Request(
            self._url(server, "/objects/k1"), data=b"hello", method="PUT"
        )
        with urllib.request.urlopen(request) as r:
            assert r.read() == b"hello"

    def test_head_has_no_body(self, server):
        request = urllib.request.Request(
            self._url(server, "/healthz"), method="HEAD"
        )
        with urllib.request.urlopen(request) as r:
            assert r.status == 200
            assert r.read() == b""
            assert int(r.headers["Content-Length"]) > 0

    def test_405_over_the_wire_carries_allow(self, server):
        request = urllib.request.Request(
            self._url(server, "/healthz"), data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "GET, HEAD"

    def test_404_over_the_wire_lists_routes(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(self._url(server, "/missing"))
        assert excinfo.value.code == 404
        doc = json.loads(excinfo.value.read())
        assert "/healthz" in doc["routes"]
        assert "/objects/<key>" in doc["routes"]
