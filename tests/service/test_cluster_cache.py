"""Cluster-granular cache: digests, invalidation map, byte-identity.

Covers the PR-5 tentpole end to end:

* :func:`repro.service.digest.cluster_digest` -- stability across
  re-extraction, locality of a one-cell delay change;
* :class:`repro.service.cluster_cache.ClusterMap` -- cell/net
  ownership, synchroniser fallback;
* :class:`repro.service.cluster_cache.ClusterCache` -- cold warm,
  full-hit warm, one-dirty-cluster warm, invalidation, schema guard;
* the byte-identity property: a cluster-cached re-analysis after a
  single-cell delay mutation produces the *same* manifest digest as a
  from-scratch run, while every cluster outside the mutated cone hits;
* :class:`repro.core.incremental.IncrementalAnalyzer` touched-cluster
  reporting (including survival across control-cone rebuilds);
* daemon and batch wiring (``touched_cluster`` / ``dropped_sub_keys``
  responses, warm-re-run hit rates).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analyzer import Hummingbird
from repro.core.clusters import ARTIFACT_SCHEMA, extract_clusters
from repro.core.incremental import IncrementalAnalyzer
from repro.delay.estimator import estimate_delays
from repro.generators import clock_gated_design, latch_pipeline
from repro.report.manifest import manifest_digest
from repro.service import (
    BatchEngine,
    BatchJob,
    ClusterCache,
    DaemonClient,
    TimingDaemon,
    build_cluster_map,
)

CONFIG_SHA = "a" * 64


def _design():
    return latch_pipeline(
        stages=4, stage_lengths=[10, 1, 1, 1], period=12.0
    )


@pytest.fixture
def design():
    return _design()


@pytest.fixture
def store(tmp_path):
    return ClusterCache(tmp_path / "clusters")


class TestClusterDigest:
    def test_keys_stable_across_reextraction(self, design):
        network, schedule = design
        delays = estimate_delays(network)
        first = build_cluster_map(network, schedule, delays, CONFIG_SHA)
        second = build_cluster_map(network, schedule, delays, CONFIG_SHA)
        assert first.keys == second.keys
        # And across a *fresh* network build of the same circuit.
        network2, schedule2 = _design()
        third = build_cluster_map(
            network2, schedule2, estimate_delays(network2), CONFIG_SHA
        )
        assert first.keys == third.keys

    def test_one_cell_mutation_changes_exactly_one_key(self, design):
        network, schedule = design
        delays = estimate_delays(network)
        before = build_cluster_map(network, schedule, delays, CONFIG_SHA)
        after = build_cluster_map(
            network,
            schedule,
            delays.with_scaled_cell("s1_i0", 1.5),
            CONFIG_SHA,
        )
        changed = [
            name
            for name in before.keys
            if before.keys[name] != after.keys[name]
        ]
        assert changed == [before.owner_of_cell("s1_i0")]

    def test_config_perturbs_every_key(self, design):
        network, schedule = design
        delays = estimate_delays(network)
        a = build_cluster_map(network, schedule, delays, CONFIG_SHA)
        b = build_cluster_map(network, schedule, delays, "b" * 64)
        assert all(a.keys[name] != b.keys[name] for name in a.keys)

    def test_schedule_perturbs_every_key(self, design):
        """Boundary clock waveforms are part of every digest."""
        network, schedule = design
        delays = estimate_delays(network)
        a = build_cluster_map(network, schedule, delays, CONFIG_SHA)
        b = build_cluster_map(
            network, schedule.scaled(2), delays, CONFIG_SHA
        )
        assert all(a.keys[name] != b.keys[name] for name in a.keys)


class TestClusterMap:
    def test_cell_and_net_ownership_agree(self, design):
        network, schedule = design
        cmap = build_cluster_map(
            network, schedule, estimate_delays(network), CONFIG_SHA
        )
        owner = cmap.owner_of_cell("s1_i0")
        assert owner is not None
        cluster = next(c for c in cmap.clusters if c.name == owner)
        assert any(cell.name == "s1_i0" for cell in cluster.cells)
        # The inverter's output net lives in the same cluster.
        assert cmap.owner_of_net("s1_c0") == owner

    def test_synchronisers_have_no_owner(self, design):
        network, schedule = design
        cmap = build_cluster_map(
            network, schedule, estimate_delays(network), CONFIG_SHA
        )
        assert cmap.owner_of_cell("s1_l") is None

    def test_to_dict_summary(self, design):
        network, schedule = design
        cmap = build_cluster_map(
            network, schedule, estimate_delays(network), CONFIG_SHA
        )
        summary = cmap.to_dict()
        assert summary["clusters"] == len(cmap.clusters)
        assert set(summary["keys"]) == set(cmap.keys)


class TestWarm:
    def test_cold_warm_recomputes_everything(self, design, store):
        network, schedule = design
        warmup = store.warm(
            network, schedule, estimate_delays(network), CONFIG_SHA
        )
        assert warmup.hits == []
        assert sorted(warmup.recomputed) == sorted(
            c.name for c in warmup.map.clusters
        )
        assert warmup.hit_rate == 0.0
        for artifact in warmup.artifacts.values():
            assert artifact["schema"] == ARTIFACT_SCHEMA

    def test_second_warm_hits_everything(self, design, store):
        network, schedule = design
        delays = estimate_delays(network)
        store.warm(network, schedule, delays, CONFIG_SHA)
        warmup = store.warm(network, schedule, delays, CONFIG_SHA)
        assert warmup.recomputed == []
        assert warmup.hit_rate == 1.0

    def test_warm_seeds_reachability_on_hit(self, design, store):
        network, schedule = design
        delays = estimate_delays(network)
        cold = store.warm(network, schedule, delays, CONFIG_SHA)
        clusters = extract_clusters(network)
        warm = store.warm(
            network, schedule, delays, CONFIG_SHA, clusters=clusters
        )
        assert warm.hit_rate == 1.0
        for cluster in clusters:
            # The seeded map equals what the cold BFS computed.
            seeded = {
                source: sorted(captures)
                for source, captures in cluster.reachable_captures(
                    network
                ).items()
            }
            assert seeded == cold.artifacts[cluster.name]["reach"]

    def test_mutation_recomputes_only_the_dirty_cluster(
        self, design, store
    ):
        network, schedule = design
        delays = estimate_delays(network)
        store.warm(network, schedule, delays, CONFIG_SHA)
        mutated = delays.with_scaled_cell("s1_i0", 1.5)
        warmup = store.warm(network, schedule, mutated, CONFIG_SHA)
        assert warmup.recomputed == [warmup.map.owner_of_cell("s1_i0")]
        assert len(warmup.hits) == len(warmup.map.clusters) - 1

    def test_invalidate_drops_one_sub_entry(self, design, store):
        network, schedule = design
        delays = estimate_delays(network)
        warmup = store.warm(network, schedule, delays, CONFIG_SHA)
        owner = store.invalidate(warmup.map, "s1_i0")
        assert owner == warmup.map.owner_of_cell("s1_i0")
        again = store.warm(network, schedule, delays, CONFIG_SHA)
        assert again.recomputed == [owner]

    def test_invalidate_synchroniser_returns_none(self, design, store):
        network, schedule = design
        warmup = store.warm(
            network, schedule, estimate_delays(network), CONFIG_SHA
        )
        assert store.invalidate(warmup.map, "s1_l") is None

    def test_invalidate_all_drops_every_sub_entry(self, design, store):
        network, schedule = design
        delays = estimate_delays(network)
        warmup = store.warm(network, schedule, delays, CONFIG_SHA)
        dropped = store.invalidate_all(warmup.map)
        assert dropped == len(warmup.map.clusters)
        again = store.warm(network, schedule, delays, CONFIG_SHA)
        assert again.hits == []

    def test_probe_rejects_foreign_schema(self, store):
        store.store("k" * 64, {"schema": "bogus/9", "reach": {}})
        assert store.probe("k" * 64) is None
        # The corrupt entry was evicted, not just skipped.
        assert store.probe("k" * 64) is None
        assert len(store) == 0


_CELLS = ("s0_i0", "s0_i7", "s1_i0", "s2_i0", "s3_i0")
_FACTORS = (0.5, 1.25, 1.5, 2.0, 3.0)


class TestByteIdentity:
    """Satellite 4: cached re-analysis is byte-identical to scratch."""

    @given(
        cell=st.sampled_from(_CELLS),
        factor=st.sampled_from(_FACTORS),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_mutated_rerun_matches_from_scratch(
        self, tmp_path_factory, cell, factor
    ):
        store = ClusterCache(
            tmp_path_factory.mktemp("clusters") / "store"
        )
        network, schedule = _design()
        base = estimate_delays(network)
        store.warm(network, schedule, base, CONFIG_SHA)

        mutated = base.with_scaled_cell(cell, factor)
        clusters = extract_clusters(network)
        warmup = store.warm(
            network, schedule, mutated, CONFIG_SHA, clusters=clusters
        )
        # Every cluster outside the mutated cone hits.
        assert warmup.recomputed == [warmup.map.owner_of_cell(cell)]
        assert len(warmup.hits) == len(warmup.map.clusters) - 1

        cached = Hummingbird(
            network, schedule, delays=mutated, clusters=clusters
        ).analyze()

        scratch_network, scratch_schedule = _design()
        scratch = Hummingbird(
            scratch_network,
            scratch_schedule,
            delays=estimate_delays(scratch_network).with_scaled_cell(
                cell, factor
            ),
        ).analyze()

        assert manifest_digest(cached.manifest()) == manifest_digest(
            scratch.manifest()
        )


class TestIncrementalTouchedCluster:
    def test_scale_cell_reports_owner(self, design):
        network, schedule = design
        analyzer = IncrementalAnalyzer(network, schedule)
        assert analyzer.last_touched_cluster is None
        analyzer.scale_cell("s1_i0", 1.5)
        assert analyzer.last_touched_cluster == analyzer.cluster_of(
            "s1_i0"
        )
        assert analyzer.swaps == 1

    def test_scale_synchroniser_reports_none(self, design):
        network, schedule = design
        analyzer = IncrementalAnalyzer(network, schedule)
        analyzer.scale_cell("s1_l", 1.5)
        assert analyzer.last_touched_cluster is None

    def test_touched_cluster_survives_control_cone_rebuild(self):
        network, schedule = clock_gated_design()
        analyzer = IncrementalAnalyzer(network, schedule)
        owner = analyzer.cluster_of("en_buf0")
        assert owner is not None
        analyzer.scale_cell("en_buf0", 1.5)
        # Control-cone edit: full rebuild, but the touched cluster is
        # still reported so the cache layer can drop its sub-entry.
        assert analyzer.rebuilds == 1
        assert analyzer.last_touched_cluster == owner


class TestDaemonWiring:
    @pytest.fixture
    def served(self, tmp_path, design_files):
        sock = str(tmp_path / "repro.sock")
        daemon = TimingDaemon(
            sock,
            cache=None,
            cluster_cache=ClusterCache(tmp_path / "clusters"),
        )
        with daemon, DaemonClient(sock, timeout=30.0) as client:
            yield client, design_files

    def test_analyze_reports_cluster_cache(self, served):
        client, (netlist, clocks) = served
        first = client.analyze(netlist, clocks)
        assert first["ok"]
        info = first["cluster_cache"]
        assert info["recomputed"] == info["clusters"] > 0
        assert info["hits"] == 0

    def test_mutate_drops_exactly_one_sub_key(self, served):
        client, (netlist, clocks) = served
        client.analyze(netlist, clocks)
        response = client.mutate(
            netlist, clocks, "scale_cell", cell="s1_i0", factor=1.5
        )
        assert response["ok"]
        assert response["touched_cluster"] is not None
        assert response["dropped_sub_keys"] == 1
        # The follow-up analysis recomputes only the dirty cluster.
        info = response["analysis"]["cluster_cache"]
        assert info["recomputed"] == 1
        assert info["hits"] == info["clusters"] - 1

    def test_clock_mutation_drops_the_whole_map(self, served):
        client, (netlist, clocks) = served
        baseline = client.analyze(netlist, clocks)
        clusters = baseline["cluster_cache"]["clusters"]
        response = client.mutate(
            netlist, clocks, "scale_clocks", factor=2
        )
        assert response["ok"]
        assert response["touched_cluster"] is None
        assert response["dropped_sub_keys"] == clusters

    def test_stats_includes_cluster_cache(self, served):
        client, (netlist, clocks) = served
        client.analyze(netlist, clocks)
        stats = client.stats()
        assert stats["cluster_cache"] is not None

    def test_disabled_cache_omits_cluster_fields(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        sock = str(tmp_path / "plain.sock")
        with TimingDaemon(sock) as daemon:  # noqa: F841
            with DaemonClient(sock, timeout=30.0) as client:
                analyzed = client.analyze(netlist, clocks)
                assert "cluster_cache" not in analyzed
                mutated = client.mutate(
                    netlist, clocks, "scale_cell",
                    cell="s1_i0", factor=1.5,
                )
                assert "touched_cluster" not in mutated


class TestBatchWiring:
    def test_warm_rerun_hits_every_cluster(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        jobs = [BatchJob("pipeline", netlist, clocks)]
        root = tmp_path / "clusters"

        cold_engine = BatchEngine(serial=True, cluster_cache=root)
        cold = cold_engine.run(jobs)
        assert cold.cluster_recomputed > 0
        assert cold.cluster_hits == 0

        warm_engine = BatchEngine(serial=True, cluster_cache=root)
        warm = warm_engine.run(jobs)
        assert warm.cluster_hit_rate == 1.0
        assert warm.cluster_recomputed == 0
        summary = warm.to_dict()["cluster_cache"]
        assert summary["hit_rate"] == 1.0
        assert "cluster hit rate" in warm.render_text()

    def test_outcomes_carry_cluster_info(self, tmp_path, design_files):
        netlist, clocks = design_files
        engine = BatchEngine(
            serial=True, cluster_cache=tmp_path / "clusters"
        )
        report = engine.run([BatchJob("pipeline", netlist, clocks)])
        (outcome,) = report.outcomes
        assert outcome.cluster_cache is not None
        assert outcome.cluster_cache["clusters"] > 0
