"""Tests for the ``repro-sta top`` dashboard (renderer + CLI loop)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import DaemonClient, TimingDaemon
from repro.service.top import (
    fetch_frame,
    json_frame,
    render_top,
    sparkline,
)


def _frame(ts=1000.0, requests=10, **over):
    health = {
        "ok": True,
        "pid": 4242,
        "uptime_s": 75.0,
        "requests": requests,
        "errors": 1,
        "in_flight": 2,
        "designs_loaded": 1,
        "last_error": None,
    }
    health.update(over.pop("health", {}))
    metrics = over.pop(
        "metrics",
        {
            "ok": True,
            "metrics": {
                "counters": {
                    "service.daemon.incremental_hits": 3,
                    "service.daemon.mutations": 1,
                    "service.daemon.slow_requests": 0,
                    "service.daemon.http_requests": 5,
                },
                "histograms": {
                    "service.daemon.request_seconds": {
                        "bounds": [0.001, 0.01, 0.1],
                        "counts": [0, 10, 0, 0],
                        "count": 10,
                        "sum": 0.05,
                        "min": 0.002,
                        "max": 0.009,
                        "mean": 0.005,
                    }
                },
            },
        },
    )
    stats = over.pop(
        "stats",
        {
            "ok": True,
            "designs": {
                "chip_a": {
                    "warm": True,
                    "analyses": 4,
                    "mutations": 1,
                    "in_flight": 0,
                }
            },
            "cache": {
                "hits": 8,
                "misses": 2,
                "stores": 2,
                "entries": 2,
            },
        },
    )
    history = over.pop("history", None)
    frame = {
        "ts": ts,
        "health": health,
        "stats": stats,
        "metrics": metrics,
    }
    if history is not None:
        frame["history"] = history
    return frame


def _history(requests=(10, 25, 45), p95=(0.01, 0.02, 0.03)):
    points = [
        {
            "ts": 1000.0 + 5.0 * index,
            "counters": {"service.daemon.requests": count},
            "gauges": {},
            "histograms": {
                "service.daemon.request_seconds": {
                    "count": count,
                    "p50": quantile / 2,
                    "p95": quantile,
                }
            },
        }
        for index, (count, quantile) in enumerate(zip(requests, p95))
    ]
    return {
        "ok": True,
        "schema": "repro.metrics.history/1",
        "interval_s": 5.0,
        "capacity": 720,
        "snapshots": len(points),
        "points": points,
    }


class TestRenderTop:
    def test_renders_all_blocks(self):
        text = render_top(_frame())
        assert "daemon pid 4242" in text
        assert "1m15s" in text  # uptime formatting
        assert "requests" in text and "in-flight" in text
        assert "request" in text and "p50" in text and "p95" in text
        assert "hit rate  80.0%" in text
        assert "chip_a" in text

    def test_rate_from_previous_frame(self):
        previous = _frame(ts=1000.0, requests=10)
        text = render_top(_frame(ts=1002.0, requests=20), previous)
        assert "5.00 req/s" in text
        # Without a previous frame the rate column is a placeholder.
        assert "req/s" in render_top(_frame())
        assert "5.00" not in render_top(_frame())

    def test_quantiles_from_histogram_buckets(self):
        text = render_top(_frame())
        # All 10 samples in (0.001, 0.01]: p50 interpolates to 5.5ms.
        assert "5.5ms" in text

    def test_degrades_without_telemetry(self):
        frame = _frame(metrics={"ok": False, "error": "disabled"})
        text = render_top(frame)
        assert "telemetry disabled" in text

    def test_degrades_without_cache_or_designs(self):
        frame = _frame(stats={"ok": True, "designs": {}, "cache": None})
        text = render_top(frame)
        assert "no result cache" in text
        assert "no designs loaded yet" in text

    def test_last_error_shown(self):
        frame = _frame(
            health={
                "last_error": {"op": "analyze", "error": "netlist gone"}
            }
        )
        text = render_top(frame)
        assert "last error [analyze]: netlist gone" in text

    def test_renderer_is_pure(self):
        frame = _frame()
        assert render_top(frame) == render_top(frame)

    def test_trend_block_from_history(self):
        text = render_top(_frame(history=_history()))
        assert "trend" in text
        # Rising request deltas and p95s render non-flat sparklines.
        assert any(glyph in text for glyph in "▂▃▄▅▆▇█")

    def test_no_trend_block_without_history(self):
        assert "trend" not in render_top(_frame())
        short = _history(requests=(10,), p95=(0.01,))
        assert "trend" not in render_top(_frame(history=short))
        refused = {"ok": False, "error": "telemetry disabled"}
        assert "trend" not in render_top(_frame(history=refused))


class TestSparkline:
    def test_scales_min_to_max(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert line == "▁▃▅█"

    def test_flat_series_renders_low_bars(self):
        assert sparkline([5.0, 5.0, 5.0], width=3) == "▁▁▁"

    def test_empty_is_spaces(self):
        assert sparkline([], width=6) == " " * 6

    def test_fixed_width_right_justified(self):
        line = sparkline([1.0, 2.0], width=10)
        assert len(line) == 10
        assert line.startswith(" " * 8)

    def test_window_keeps_newest(self):
        # Only the last `width` values matter for the scale.
        line = sparkline([100.0, 0.0, 1.0], width=2)
        assert line == "▁█"


class TestJsonFrame:
    def test_schema_and_raw_passthrough(self):
        frame = _frame(history=_history())
        doc = json_frame(frame)
        assert doc["schema"] == "repro.topframe/1"
        assert doc["health"]["pid"] == 4242
        assert doc["stats"]["cache"]["hits"] == 8
        assert doc["history"]["points"]
        json.dumps(doc)  # must be JSON-safe

    def test_derived_block(self):
        previous = _frame(ts=1000.0, requests=10)
        doc = json_frame(_frame(ts=1002.0, requests=20), previous)
        derived = doc["derived"]
        assert derived["rate_rps"] == pytest.approx(5.0)
        assert derived["latency"]["request"]["p50"] == pytest.approx(
            0.0055
        )
        assert derived["trends"] is None  # no history in _frame()

    def test_derived_trends_from_history(self):
        doc = json_frame(_frame(history=_history()))
        trends = doc["derived"]["trends"]
        assert trends["rate"] == [15.0, 20.0]
        assert trends["p95"] == [0.02, 0.03]

    def test_rate_none_on_first_frame(self):
        doc = json_frame(_frame())
        assert doc["derived"]["rate_rps"] is None


class TestTopAgainstLiveDaemon:
    def test_fetch_frame_shape(self, tmp_path, design_files):
        socket_path = str(tmp_path / "top.sock")
        netlist, clocks = design_files
        with TimingDaemon(socket_path):
            with DaemonClient(socket_path) as client:
                client.analyze(netlist, clocks)
                frame = fetch_frame(client)
        assert frame["health"]["ok"]
        assert frame["stats"]["ok"]
        assert frame["metrics"]["ok"]
        assert frame["ts"] > 0

    def test_cli_top_once(self, tmp_path, design_files, capsys):
        socket_path = str(tmp_path / "top.sock")
        netlist, clocks = design_files
        with TimingDaemon(socket_path):
            with DaemonClient(socket_path) as client:
                client.analyze(netlist, clocks)
            status = main(["top", "--socket", socket_path, "--once"])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "latch_pipeline" in out
        assert "\x1b" not in out  # --once never emits escape codes

    def test_cli_top_once_json(self, tmp_path, design_files, capsys):
        socket_path = str(tmp_path / "top.sock")
        netlist, clocks = design_files
        with TimingDaemon(socket_path):
            with DaemonClient(socket_path) as client:
                client.analyze(netlist, clocks)
            status = main(
                ["top", "--socket", socket_path, "--once", "--json"]
            )
        assert status == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.topframe/1"
        assert doc["health"]["ok"]
        assert doc["history"]["ok"]
        assert "trends" in doc["derived"]

    def test_cli_top_unreachable_socket(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["top", "--socket", str(tmp_path / "absent.sock"), "--once"]
            )


def _alerts(rows):
    return {
        "ok": True,
        "schema": "repro.alerts/1",
        "rules": len(rows),
        "firing": sum(1 for r in rows if r["state"] == "firing"),
        "alerts": rows,
    }


class TestRestartNotice:
    """PR 7 satellite: top survives a daemon restart."""

    def test_pid_change_shows_notice(self):
        previous = _frame(ts=1000.0, requests=500)
        frame = _frame(ts=1002.0, requests=3, health={"pid": 9999})
        text = render_top(frame, previous)
        assert "daemon restarted (uptime reset)" in text

    def test_uptime_going_backwards_shows_notice(self):
        previous = _frame(ts=1000.0, health={"uptime_s": 500.0})
        frame = _frame(ts=1002.0, health={"uptime_s": 1.5})
        text = render_top(frame, previous)
        assert "daemon restarted (uptime reset)" in text

    def test_rates_rebase_across_restart(self):
        # PR 9 satellite: a peer restarting mid-window used to clamp
        # the rate to a stale 0.0; the post-restart count *is* the
        # delta since the restart, so 3 requests / 2s = 1.5 req/s.
        previous = _frame(ts=1000.0, requests=500)
        frame = _frame(ts=1002.0, requests=3, health={"pid": 9999})
        text = render_top(frame, previous)
        assert "-" not in text.split("req/s")[0].rsplit("\n", 1)[-1]
        assert "1.50 req/s" in text
        doc = json_frame(frame, previous)
        assert doc["derived"]["rate_rps"] == pytest.approx(1.5)
        assert doc["derived"]["restarted"] is True

    def test_history_trend_rebases_across_restart(self):
        # Counter ring: 10 -> 25 -> 4 (restart) -> 9.  The restart
        # interval contributes its absolute count (4), not a negative
        # or clamped-zero delta, and the following interval is normal.
        history = _history(
            requests=(10, 25, 4, 9), p95=(0.01, 0.02, 0.01, 0.02)
        )
        doc = json_frame(_frame(history=history))
        assert doc["derived"]["trends"]["rate"] == [15.0, 4.0, 5.0]

    def test_no_notice_on_steady_daemon(self):
        previous = _frame(ts=1000.0, requests=10)
        frame = _frame(ts=1002.0, requests=20)
        text = render_top(frame, previous)
        assert "restarted" not in text
        assert json_frame(frame, previous)["derived"]["restarted"] is False

    def test_first_frame_is_not_a_restart(self):
        assert "restarted" not in render_top(_frame(), None)


class TestAlertBanners:
    def test_firing_and_pending_render(self):
        frame = _frame()
        frame["alerts"] = _alerts(
            [
                {
                    "name": "daemon.error_burn",
                    "state": "firing",
                    "severity": "critical",
                    "message": "errors / requests = 0.4",
                    "acked": False,
                },
                {
                    "name": "daemon.handle_p95_high",
                    "state": "pending",
                    "severity": "warning",
                    "message": "p95 = 0.8",
                    "acked": False,
                },
                {
                    "name": "quiet.rule",
                    "state": "ok",
                    "severity": "info",
                    "message": "",
                    "acked": False,
                },
            ]
        )
        text = render_top(frame)
        assert "!! alert firing [critical] daemon.error_burn" in text
        assert "?? alert pending [warning] daemon.handle_p95_high" in text
        assert "quiet.rule" not in text

    def test_acked_alert_is_marked(self):
        frame = _frame()
        frame["alerts"] = _alerts(
            [
                {
                    "name": "daemon.stalled",
                    "state": "firing",
                    "severity": "critical",
                    "message": "op=sleep",
                    "acked": True,
                }
            ]
        )
        assert "[acked]" in render_top(frame)

    def test_degrades_without_alert_engine(self):
        frame = _frame()
        frame["alerts"] = {"ok": False, "error": "telemetry disabled"}
        text = render_top(frame)
        assert "alert" not in text.split("\n")[2]  # no banner line
        doc = json_frame(frame)
        assert doc["derived"]["alerts_firing"] == 0

    def test_json_frame_passes_alerts_through(self):
        frame = _frame()
        frame["alerts"] = _alerts(
            [
                {
                    "name": "a",
                    "state": "firing",
                    "severity": "critical",
                    "message": "",
                    "acked": False,
                }
            ]
        )
        doc = json_frame(frame)
        assert doc["alerts"]["alerts"][0]["name"] == "a"
        assert doc["derived"]["alerts_firing"] == 1
