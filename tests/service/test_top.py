"""Tests for the ``repro-sta top`` dashboard (renderer + CLI loop)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.service import DaemonClient, TimingDaemon
from repro.service.top import fetch_frame, render_top


def _frame(ts=1000.0, requests=10, **over):
    health = {
        "ok": True,
        "pid": 4242,
        "uptime_s": 75.0,
        "requests": requests,
        "errors": 1,
        "in_flight": 2,
        "designs_loaded": 1,
        "last_error": None,
    }
    health.update(over.pop("health", {}))
    metrics = over.pop(
        "metrics",
        {
            "ok": True,
            "metrics": {
                "counters": {
                    "service.daemon.incremental_hits": 3,
                    "service.daemon.mutations": 1,
                    "service.daemon.slow_requests": 0,
                    "service.daemon.http_requests": 5,
                },
                "histograms": {
                    "service.daemon.request_seconds": {
                        "bounds": [0.001, 0.01, 0.1],
                        "counts": [0, 10, 0, 0],
                        "count": 10,
                        "sum": 0.05,
                        "min": 0.002,
                        "max": 0.009,
                        "mean": 0.005,
                    }
                },
            },
        },
    )
    stats = over.pop(
        "stats",
        {
            "ok": True,
            "designs": {
                "chip_a": {
                    "warm": True,
                    "analyses": 4,
                    "mutations": 1,
                    "in_flight": 0,
                }
            },
            "cache": {
                "hits": 8,
                "misses": 2,
                "stores": 2,
                "entries": 2,
            },
        },
    )
    return {"ts": ts, "health": health, "stats": stats, "metrics": metrics}


class TestRenderTop:
    def test_renders_all_blocks(self):
        text = render_top(_frame())
        assert "daemon pid 4242" in text
        assert "1m15s" in text  # uptime formatting
        assert "requests" in text and "in-flight" in text
        assert "request" in text and "p50" in text and "p95" in text
        assert "hit rate  80.0%" in text
        assert "chip_a" in text

    def test_rate_from_previous_frame(self):
        previous = _frame(ts=1000.0, requests=10)
        text = render_top(_frame(ts=1002.0, requests=20), previous)
        assert "5.00 req/s" in text
        # Without a previous frame the rate column is a placeholder.
        assert "req/s" in render_top(_frame())
        assert "5.00" not in render_top(_frame())

    def test_quantiles_from_histogram_buckets(self):
        text = render_top(_frame())
        # All 10 samples in (0.001, 0.01]: p50 interpolates to 5.5ms.
        assert "5.5ms" in text

    def test_degrades_without_telemetry(self):
        frame = _frame(metrics={"ok": False, "error": "disabled"})
        text = render_top(frame)
        assert "telemetry disabled" in text

    def test_degrades_without_cache_or_designs(self):
        frame = _frame(stats={"ok": True, "designs": {}, "cache": None})
        text = render_top(frame)
        assert "no result cache" in text
        assert "no designs loaded yet" in text

    def test_last_error_shown(self):
        frame = _frame(
            health={
                "last_error": {"op": "analyze", "error": "netlist gone"}
            }
        )
        text = render_top(frame)
        assert "last error [analyze]: netlist gone" in text

    def test_renderer_is_pure(self):
        frame = _frame()
        assert render_top(frame) == render_top(frame)


class TestTopAgainstLiveDaemon:
    def test_fetch_frame_shape(self, tmp_path, design_files):
        socket_path = str(tmp_path / "top.sock")
        netlist, clocks = design_files
        with TimingDaemon(socket_path):
            with DaemonClient(socket_path) as client:
                client.analyze(netlist, clocks)
                frame = fetch_frame(client)
        assert frame["health"]["ok"]
        assert frame["stats"]["ok"]
        assert frame["metrics"]["ok"]
        assert frame["ts"] > 0

    def test_cli_top_once(self, tmp_path, design_files, capsys):
        socket_path = str(tmp_path / "top.sock")
        netlist, clocks = design_files
        with TimingDaemon(socket_path):
            with DaemonClient(socket_path) as client:
                client.analyze(netlist, clocks)
            status = main(["top", "--socket", socket_path, "--once"])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "latch_pipeline" in out
        assert "\x1b" not in out  # --once never emits escape codes

    def test_cli_top_unreachable_socket(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["top", "--socket", str(tmp_path / "absent.sock"), "--once"]
            )
