"""Digest stability: the content-addressing contract.

The cache key must be a pure function of the analysis *content*:
byte-stable across process restarts (no hash randomisation leaking in)
and insensitive to dict insertion order.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.clocks.schedule import ClockSchedule
from repro.generators import fig1_circuit, fig1_schedule, latch_pipeline
from repro.service.digest import (
    PAYLOAD_SCHEMA_VERSION,
    analysis_config,
    cache_key,
    config_digest,
    network_digest,
    schedule_digest,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class TestConfigDigest:
    def test_insensitive_to_dict_ordering(self):
        forward = {"latch_model": "transparent", "tolerance": 0.0,
                   "slow_path_limit": 50}
        backward = {"slow_path_limit": 50, "tolerance": 0.0,
                    "latch_model": "transparent"}
        assert list(forward) != list(backward)
        assert config_digest(forward) == config_digest(backward)

    def test_sensitive_to_values(self):
        base = analysis_config()
        changed = analysis_config(tolerance=0.1)
        assert config_digest(base) != config_digest(changed)

    def test_nested_delay_params_order(self):
        a = analysis_config(delay_params={"x": 1, "y": 2})
        b = analysis_config(delay_params={"y": 2, "x": 1})
        assert config_digest(a) == config_digest(b)


class TestNetworkAndScheduleDigests:
    def test_equal_for_equal_content(self):
        net_a, sched_a = fig1_circuit()
        net_b, sched_b = fig1_circuit()
        assert network_digest(net_a) == network_digest(net_b)
        assert schedule_digest(sched_a) == schedule_digest(sched_b)
        assert schedule_digest(fig1_schedule()) == schedule_digest(sched_a)

    def test_differs_for_different_designs(self):
        net_a, __ = fig1_circuit()
        net_b, __ = latch_pipeline(stages=2)
        assert network_digest(net_a) != network_digest(net_b)

    def test_schedule_digest_sees_clock_changes(self):
        base = ClockSchedule.two_phase(100)
        scaled = base.scaled(2)
        assert schedule_digest(base) != schedule_digest(scaled)

    def test_digest_is_hex_sha256(self):
        digest = network_digest(fig1_circuit()[0])
        assert len(digest) == 64
        int(digest, 16)  # raises on non-hex


class TestProcessRestartStability:
    """The key must survive a fresh interpreter (fresh hash seed)."""

    SCRIPT = """
import json, sys
from repro.generators import fig1_circuit, fig1_schedule
from repro.service.digest import (
    analysis_config, cache_key, config_digest, network_digest,
    schedule_digest,
)
network, __ = fig1_circuit()
schedule = fig1_schedule()
config = analysis_config(slow_path_limit=7, tolerance=0.25)
n, s, c = (network_digest(network), schedule_digest(schedule),
           config_digest(config))
print(json.dumps({"network": n, "schedule": s, "config": c,
                  "key": cache_key(n, s, c)}))
"""

    def _run_subprocess(self, hash_seed: str) -> dict:
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(REPO_SRC),
                "PYTHONHASHSEED": hash_seed,
                "PATH": "/usr/bin:/bin",
            },
            check=True,
        )
        return json.loads(proc.stdout)

    def test_byte_stable_across_restarts_and_hash_seeds(self):
        network, __ = fig1_circuit()
        schedule = fig1_schedule()
        config = analysis_config(slow_path_limit=7, tolerance=0.25)
        here = {
            "network": network_digest(network),
            "schedule": schedule_digest(schedule),
            "config": config_digest(config),
        }
        here["key"] = cache_key(
            here["network"], here["schedule"], here["config"]
        )
        for seed in ("0", "12345"):
            there = self._run_subprocess(seed)
            assert there == here, f"digest drift with hash seed {seed}"


class TestCacheKey:
    def test_folds_in_payload_schema_version(self):
        # Reaching into the preimage: the key must change when any
        # component changes, including the payload schema version.
        key_a = cache_key("n" * 64, "s" * 64, "c" * 64)
        key_b = cache_key("n" * 64, "s" * 64, "d" * 64)
        assert key_a != key_b
        assert PAYLOAD_SCHEMA_VERSION >= 1
