"""Fleet collector: scrape degradation, reloads, HTTP surfaces."""

from __future__ import annotations

import json
import os
import re
import time
import urllib.error
import urllib.request

import pytest

from repro.service import DaemonClient, FleetCollector, TimingDaemon
from repro.service.collector import scrape_fleet, scrape_peer
from repro.service.httpmon import RouteHTTPServer, RouteTable


def _get(base, path, timeout=5):
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as r:
        return r.status, r.read().decode("utf-8")


def _json_route(document):
    def route(params):
        return "application/json", json.dumps(document)

    return route


_HEALTH = {
    "ok": True,
    "pid": 4242,
    "uptime_s": 1.0,
    "requests": 10,
    "errors": 0,
    "in_flight": 0,
    "designs_loaded": 0,
}


def _serve(routes):
    table = RouteTable()
    for path, route in routes.items():
        table.add_simple(path, route)
    return RouteHTTPServer(table=table)


class TestScrapeDegradation:
    """Satellite: a bad peer is a ``down`` row, never an exception."""

    def test_unreachable_peer_is_down(self):
        with _serve({"/healthz": _json_route(_HEALTH)}) as srv:
            host, port = srv.address
        # Server stopped: connection refused.
        scrape = scrape_peer(f"http://{host}:{port}", timeout_s=0.5)
        assert scrape["ok"] is False
        assert scrape["error"]
        assert scrape["healthz"] is None

    def test_peer_timeout_is_down(self):
        def slow(params):
            time.sleep(1.0)
            return "application/json", json.dumps(_HEALTH)

        with _serve({"/healthz": slow}) as srv:
            host, port = srv.address
            scrape = scrape_peer(f"http://{host}:{port}", timeout_s=0.2)
        assert scrape["ok"] is False
        assert "timed out" in scrape["error"].lower()

    def test_malformed_healthz_json_is_down(self):
        def garbage(params):
            return "application/json", "{not json"

        with _serve({"/healthz": garbage}) as srv:
            host, port = srv.address
            scrape = scrape_peer(f"http://{host}:{port}")
        assert scrape["ok"] is False
        assert "JSONDecodeError" in scrape["error"]

    def test_non_object_healthz_is_down(self):
        with _serve({"/healthz": _json_route(None)}) as srv:
            host, port = srv.address
            scrape = scrape_peer(f"http://{host}:{port}")
        assert scrape["ok"] is False
        assert "ValueError" in scrape["error"]

    def test_failing_aux_endpoints_leave_peer_up(self):
        """A peer that answers ``/healthz`` but whose other endpoints
        404, error or return garbage (e.g. it vanished mid-scrape) is
        still ``up``; the missing sub-documents are ``None``."""

        def exploding(params):
            raise RuntimeError("endpoint vanished")

        routes = {
            "/healthz": _json_route(_HEALTH),
            "/alertz": lambda p: ("application/json", "<html>"),
            "/fabricz": exploding,
            # /metrics/history and /crashz: not registered -> 404
        }
        with _serve(routes) as srv:
            host, port = srv.address
            scrape = scrape_peer(f"http://{host}:{port}")
        assert scrape["ok"] is True
        assert scrape["healthz"]["pid"] == 4242
        assert scrape["history"] is None
        assert scrape["alertz"] is None
        assert scrape["fabricz"] is None
        assert scrape["crashz"] is None

    def test_one_bad_peer_does_not_poison_the_sweep(self):
        with _serve({"/healthz": _json_route(_HEALTH)}) as srv:
            host, port = srv.address
            good = f"http://{host}:{port}"
            dead = "http://127.0.0.1:1"
            scrapes = scrape_fleet([good, dead], timeout_s=0.5)
        assert list(scrapes) == [good, dead]
        assert scrapes[good]["ok"] is True
        assert scrapes[dead]["ok"] is False


class TestFleetCollector:
    def _peers_file(self, tmp_path, peers):
        path = tmp_path / "peers.txt"
        path.write_text("".join(f"{p}\n" for p in peers))
        return path

    def _touch(self, path, offset=10):
        stamp = path.stat().st_mtime + offset
        os.utime(path, (stamp, stamp))

    def test_sweep_with_down_peers_never_raises(self, tmp_path):
        path = self._peers_file(tmp_path, ["http://127.0.0.1:1"])
        collector = FleetCollector(path, timeout_s=0.3, http_port=None)
        doc = collector.sweep()
        assert doc["summary"] == {
            "peers": 1,
            "up": 0,
            "degraded": 0,
            "down": 1,
            "rate_rps": 0.0,
            "alerts_firing": 0,
        }
        assert collector.doctor_doc()["exit_code"] == 1
        assert len(collector.history.points()) == 1

    def test_peers_file_reload_on_mtime_change(self, tmp_path):
        path = self._peers_file(tmp_path, ["http://a:1"])
        collector = FleetCollector(path, http_port=None)
        assert collector.peers == ["http://a:1"]
        assert collector.maybe_reload_peers() is False  # unchanged
        self._peers_file(tmp_path, ["http://a:1", "http://b:2"])
        self._touch(path)
        assert collector.maybe_reload_peers() is True
        assert collector.peers == ["http://a:1", "http://b:2"]
        assert (
            collector.recorder.counters[
                "service.collector.peer_set_reloads"
            ]
            == 1
        )

    def test_reload_keeps_old_set_on_broken_file(self, tmp_path):
        path = self._peers_file(tmp_path, ["http://a:1"])
        collector = FleetCollector(path, http_port=None)
        path.write_text('{"peers": 42}')
        self._touch(path)
        assert collector.maybe_reload_peers() is False
        assert collector.peers == ["http://a:1"]

    def test_standalone_http_surface(self, tmp_path):
        path = self._peers_file(tmp_path, [])
        collector = FleetCollector(
            path, interval_s=30.0, http_port=0
        )
        host, port = collector.start()
        base = f"http://{host}:{port}"
        try:
            status, body = _get(base, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["role"] == "collector"
            status, body = _get(base, "/fleetz")
            assert json.loads(body)["schema"] == "repro.fleet/1"
            status, body = _get(base, "/fleet/doctor")
            assert json.loads(body)["schema"] == "repro.fleetdoctor/1"
            status, text = _get(base, "/fleet/metrics")
            assert text.startswith("# ")
            assert "repro_fleet_up" in text
            status, body = _get(base, "/fleet/history")
            assert json.loads(body)["schema"] == "repro.metrics.history/1"
        finally:
            collector.stop()


class TestCollectorAgainstLiveDaemon:
    """End-to-end: daemon sidecars -> collector -> fleet views, plus
    the exemplar -> trace-store retrieval loop."""

    def test_embedded_collector_and_exemplar_trace(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        peers_file = tmp_path / "peers.txt"
        peers_file.write_text("")  # filled in once ports are known
        collector = FleetCollector(
            peers_file, interval_s=30.0, timeout_s=2.0, http_port=None
        )
        daemon = TimingDaemon(
            str(tmp_path / "d.sock"),
            http_port=0,
            trace_dir=tmp_path / "traces",
            trace_sample=1.0,
            collector=collector,
        )
        with daemon:
            host, port = daemon.http_address
            base = f"http://{host}:{port}"
            with DaemonClient(str(tmp_path / "d.sock")) as client:
                assert client.analyze(netlist, clocks)["ok"]
                bad = client.request({"op": "analyze"})  # errored
                assert not bad["ok"]

            # The daemon's own sidecar now answers the fleet routes.
            peers_file.write_text(base + "\n")
            stamp = peers_file.stat().st_mtime + 10
            os.utime(peers_file, (stamp, stamp))
            status, body = _get(base, "/fleetz?refresh=1")
            assert status == 200
            fleet = json.loads(body)
            assert fleet["summary"]["up"] >= 1
            row = fleet["peers"][0]
            assert row["url"] == base
            assert row["state"] in ("up", "degraded")
            assert row["requests"] >= 2

            # /metrics carries an exemplar trace id; the trace store
            # serves that exact trace back over /traces/<id>.
            status, text = _get(base, "/metrics")
            ids = set(
                re.findall(r'# \{trace_id="([0-9a-f]{32})"\}', text)
            )
            assert ids, "no exemplars in /metrics"
            trace_id = sorted(ids)[0]
            status, body = _get(base, f"/traces/{trace_id}")
            assert status == 200
            doc = json.loads(body)
            assert doc["ok"] is True
            assert doc["trace"]["trace_id"] == trace_id
            assert doc["trace"]["schema"] == "repro.tracedoc/1"

            # The errored request was tail-kept and is listed.
            status, body = _get(base, "/traces")
            listing = json.loads(body)
            assert listing["ok"] is True
            assert any(
                row["status"] == "error" for row in listing["traces"]
            )

            # Unknown ids are a JSON 404, not a crash.
            missing = "0" * 32
            try:
                _get(base, f"/traces/{missing}")
            except urllib.error.HTTPError as err:
                assert err.code == 404
            else:  # pragma: no cover - store must not invent traces
                pytest.fail("expected 404 for unknown trace id")

            # Same data over the socket protocol.
            with DaemonClient(str(tmp_path / "d.sock")) as client:
                shown = client.traces(action="show", trace_id=trace_id)
                assert shown["ok"]
                assert shown["trace"]["trace_id"] == trace_id

    def test_standalone_collector_tracks_peer_death(
        self, tmp_path, design_files
    ):
        netlist, clocks = design_files
        sock_a = str(tmp_path / "a.sock")
        sock_b = str(tmp_path / "b.sock")
        with TimingDaemon(sock_a, http_port=0) as da, TimingDaemon(
            sock_b, http_port=0
        ) as db:
            bases = [
                f"http://{h}:{p}"
                for h, p in (da.http_address, db.http_address)
            ]
            peers_file = tmp_path / "peers.txt"
            peers_file.write_text("".join(f"{b}\n" for b in bases))
            with DaemonClient(sock_a) as client:
                client.analyze(netlist, clocks)
            collector = FleetCollector(
                peers_file, interval_s=30.0, timeout_s=1.0, http_port=0
            )
            host, port = collector.start()
            cbase = f"http://{host}:{port}"
            try:
                __, body = _get(cbase, "/fleetz?refresh=1")
                fleet = json.loads(body)
                assert fleet["summary"]["peers"] == 2
                assert fleet["summary"]["up"] == 2
                assert fleet["summary"]["down"] == 0

                db.stop()  # one peer dies
                __, body = _get(cbase, "/fleetz?refresh=1")
                fleet = json.loads(body)
                assert fleet["summary"]["up"] == 1
                assert fleet["summary"]["down"] == 1
                down = [
                    row
                    for row in fleet["peers"]
                    if row["state"] == "down"
                ]
                assert down[0]["url"] == bases[1]

                __, body = _get(cbase, "/fleet/doctor?refresh=1")
                assert json.loads(body)["exit_code"] == 1
            finally:
                collector.stop()
