"""TimingDaemon: protocol, warm serving, incremental re-query."""

from __future__ import annotations

import json
import socket

import pytest

from repro.cells import standard_library
from repro.clocks.serialize import load_schedule
from repro.core.analyzer import Hummingbird
from repro.delay.estimator import estimate_delays
from repro.netlist.persistence import load_network
from repro.report.manifest import manifest_digest, timing_digest
from repro.service import DaemonClient, ResultCache, TimingDaemon


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "repro.sock")
    with TimingDaemon(
        sock, cache=ResultCache(tmp_path / "cache")
    ) as server:
        yield server


@pytest.fixture
def client(daemon):
    with DaemonClient(daemon.socket_path, timeout=30.0) as c:
        yield c


class TestProtocol:
    def test_ping(self, client):
        response = client.ping()
        assert response["ok"] and response["pong"]
        assert response["protocol"] == 1

    def test_unknown_op_is_an_error_response(self, client):
        response = client.request({"op": "frobnicate"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_malformed_json_does_not_kill_the_daemon(self, daemon):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10.0)
        raw.connect(daemon.socket_path)
        raw.sendall(b"this is not json\n")
        reply = json.loads(raw.makefile("rb").readline())
        assert reply["ok"] is False
        raw.close()
        # The daemon still answers on a fresh connection.
        with DaemonClient(daemon.socket_path) as again:
            assert again.ping()["pong"]

    def test_request_id_is_echoed(self, client):
        response = client.request({"op": "ping", "id": "req-42"})
        assert response["id"] == "req-42"

    def test_missing_paths_rejected(self, client):
        response = client.request({"op": "analyze"})
        assert response["ok"] is False
        assert "netlist" in response["error"]

    def test_shutdown_op_stops_the_server(self, tmp_path, design_files):
        sock = str(tmp_path / "down.sock")
        daemon = TimingDaemon(sock)
        daemon.start()
        with DaemonClient(sock) as client:
            assert client.shutdown()["stopping"]
        # The socket disappears shortly after.
        import time

        for __ in range(100):
            try:
                DaemonClient(sock, timeout=0.2).close()
            except OSError:
                break
            time.sleep(0.05)
        else:  # pragma: no cover
            pytest.fail("daemon kept listening after shutdown")


class TestServing:
    def test_analyze_cold_then_warm(self, client, design_files):
        netlist, clocks = design_files
        first = client.analyze(netlist, clocks)
        assert first["ok"] and first["engine"] == "cold"
        assert first["intended"] is True
        second = client.analyze(netlist, clocks)
        assert second["engine"] == "incremental-warm"
        # Same fixed point, same answer.
        assert second["timing_digest"] == first["timing_digest"]

    def test_cold_manifest_matches_one_shot_cli_run(
        self, client, design_files
    ):
        netlist, clocks = design_files
        served = client.analyze(netlist, clocks)
        network = load_network(netlist, standard_library())
        schedule = load_schedule(clocks)
        result = Hummingbird(network, schedule).analyze()
        manifest = result.manifest(
            netlist_path=netlist, clocks_path=clocks
        )
        assert served["manifest_digest"] == manifest_digest(manifest)
        assert served["timing_digest"] == timing_digest(manifest)

    def test_analyze_mutate_reanalyze_sequence(
        self, client, design_files
    ):
        """The acceptance sequence: analyze -> mutate -> re-analyze,
        second answer from the incremental engine, result identical to
        a from-scratch run with the mutated delays."""
        netlist, clocks = design_files
        baseline = client.analyze(netlist, clocks)
        assert baseline["engine"] == "cold"

        mutated = client.mutate(
            netlist, clocks, "scale_cell", cell="s1_i0", factor=1.5
        )
        assert mutated["ok"]
        assert mutated["swaps"] + mutated["rebuilds"] == 1
        answer = mutated["analysis"]
        assert answer["engine"] == "incremental-warm"

        # From-scratch reference with the same delay mutation.
        network = load_network(netlist, standard_library())
        schedule = load_schedule(clocks)
        delays = estimate_delays(network).with_scaled_cell("s1_i0", 1.5)
        result = Hummingbird(network, schedule, delays=delays).analyze()
        manifest = result.manifest(
            netlist_path=netlist, clocks_path=clocks
        )
        assert answer["timing_digest"] == timing_digest(manifest)
        assert answer["payload"]["endpoint_slacks"] == (
            result.payload()["endpoint_slacks"]
        )

    def test_report_endpoint(self, client, design_files):
        netlist, clocks = design_files
        analyzed = client.analyze(netlist, clocks)
        endpoint = next(
            iter(analyzed["payload"]["endpoint_slacks"])
        )
        response = client.request(
            {
                "op": "report",
                "netlist": netlist,
                "clocks": clocks,
                "endpoint": endpoint,
            }
        )
        assert response["ok"]
        assert endpoint in response["text"]
        assert response["report"]["schema"].startswith("repro.report/")

    def test_stats_reflects_serving_state(self, client, design_files):
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        client.mutate(
            netlist, clocks, "scale_cell", cell="s1_i0", factor=1.1,
            analyze=False,
        )
        stats = client.stats()
        assert stats["ok"]
        design = stats["designs"]["latch_pipeline"]
        assert design["analyses"] >= 1
        assert design["mutations"] == 1
        assert design["warm"] is True
        assert stats["cache"] is not None

    def test_mutate_unknown_action(self, client, design_files):
        netlist, clocks = design_files
        response = client.mutate(netlist, clocks, "teleport")
        assert response["ok"] is False
        assert "unknown mutate action" in response["error"]

    def test_clock_mutation_rebuilds(self, client, design_files):
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        response = client.mutate(
            netlist, clocks, "scale_clocks", factor=2
        )
        assert response["ok"]
        answer = response["analysis"]
        # A rebuilt engine starts cold again but still answers.
        assert answer["ok"] and "worst_slack" in answer
