"""TimingDaemon: protocol, warm serving, incremental re-query."""

from __future__ import annotations

import json
import socket

import pytest

from repro.cells import standard_library
from repro.clocks.serialize import load_schedule
from repro.core.analyzer import Hummingbird
from repro.delay.estimator import estimate_delays
from repro.netlist.persistence import load_network
from repro.report.manifest import manifest_digest, timing_digest
from repro.service import DaemonClient, ResultCache, TimingDaemon


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "repro.sock")
    with TimingDaemon(
        sock, cache=ResultCache(tmp_path / "cache")
    ) as server:
        yield server


@pytest.fixture
def client(daemon):
    with DaemonClient(daemon.socket_path, timeout=30.0) as c:
        yield c


class TestProtocol:
    def test_ping(self, client):
        response = client.ping()
        assert response["ok"] and response["pong"]
        assert response["protocol"] == 1

    def test_unknown_op_is_an_error_response(self, client):
        response = client.request({"op": "frobnicate"})
        assert response["ok"] is False
        assert "unknown op" in response["error"]

    def test_malformed_json_does_not_kill_the_daemon(self, daemon):
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(10.0)
        raw.connect(daemon.socket_path)
        raw.sendall(b"this is not json\n")
        reply = json.loads(raw.makefile("rb").readline())
        assert reply["ok"] is False
        raw.close()
        # The daemon still answers on a fresh connection.
        with DaemonClient(daemon.socket_path) as again:
            assert again.ping()["pong"]

    def test_request_id_is_echoed(self, client):
        response = client.request({"op": "ping", "id": "req-42"})
        assert response["id"] == "req-42"

    def test_missing_paths_rejected(self, client):
        response = client.request({"op": "analyze"})
        assert response["ok"] is False
        assert "netlist" in response["error"]

    def test_shutdown_op_stops_the_server(self, tmp_path, design_files):
        sock = str(tmp_path / "down.sock")
        daemon = TimingDaemon(sock)
        daemon.start()
        with DaemonClient(sock) as client:
            assert client.shutdown()["stopping"]
        # The socket disappears shortly after.
        import time

        for __ in range(100):
            try:
                DaemonClient(sock, timeout=0.2).close()
            except OSError:
                break
            time.sleep(0.05)
        else:  # pragma: no cover
            pytest.fail("daemon kept listening after shutdown")


class TestServing:
    def test_analyze_cold_then_warm(self, client, design_files):
        netlist, clocks = design_files
        first = client.analyze(netlist, clocks)
        assert first["ok"] and first["engine"] == "cold"
        assert first["intended"] is True
        # A repeat with no intervening mutation answers lock-free from
        # the published snapshot (PR 10).
        second = client.analyze(netlist, clocks)
        assert second["engine"] == "snapshot"
        # Same fixed point, same answer.
        assert second["timing_digest"] == first["timing_digest"]
        assert second["manifest_digest"] == first["manifest_digest"]

    def test_cold_manifest_matches_one_shot_cli_run(
        self, client, design_files
    ):
        netlist, clocks = design_files
        served = client.analyze(netlist, clocks)
        network = load_network(netlist, standard_library())
        schedule = load_schedule(clocks)
        result = Hummingbird(network, schedule).analyze()
        manifest = result.manifest(
            netlist_path=netlist, clocks_path=clocks
        )
        assert served["manifest_digest"] == manifest_digest(manifest)
        assert served["timing_digest"] == timing_digest(manifest)

    def test_analyze_mutate_reanalyze_sequence(
        self, client, design_files
    ):
        """The acceptance sequence: analyze -> mutate -> re-analyze,
        second answer from the incremental engine, result identical to
        a from-scratch run with the mutated delays."""
        netlist, clocks = design_files
        baseline = client.analyze(netlist, clocks)
        assert baseline["engine"] == "cold"

        mutated = client.mutate(
            netlist, clocks, "scale_cell", cell="s1_i0", factor=1.5
        )
        assert mutated["ok"]
        assert mutated["swaps"] + mutated["rebuilds"] == 1
        answer = mutated["analysis"]
        assert answer["engine"] == "incremental-warm"

        # From-scratch reference with the same delay mutation.
        network = load_network(netlist, standard_library())
        schedule = load_schedule(clocks)
        delays = estimate_delays(network).with_scaled_cell("s1_i0", 1.5)
        result = Hummingbird(network, schedule, delays=delays).analyze()
        manifest = result.manifest(
            netlist_path=netlist, clocks_path=clocks
        )
        assert answer["timing_digest"] == timing_digest(manifest)
        assert answer["payload"]["endpoint_slacks"] == (
            result.payload()["endpoint_slacks"]
        )

    def test_report_endpoint(self, client, design_files):
        netlist, clocks = design_files
        analyzed = client.analyze(netlist, clocks)
        endpoint = next(
            iter(analyzed["payload"]["endpoint_slacks"])
        )
        response = client.request(
            {
                "op": "report",
                "netlist": netlist,
                "clocks": clocks,
                "endpoint": endpoint,
            }
        )
        assert response["ok"]
        assert endpoint in response["text"]
        assert response["report"]["schema"].startswith("repro.report/")

    def test_stats_reflects_serving_state(self, client, design_files):
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        client.mutate(
            netlist, clocks, "scale_cell", cell="s1_i0", factor=1.1,
            analyze=False,
        )
        stats = client.stats()
        assert stats["ok"]
        design = stats["designs"]["latch_pipeline"]
        assert design["analyses"] >= 1
        assert design["mutations"] == 1
        assert design["warm"] is True
        assert stats["cache"] is not None

    def test_mutate_unknown_action(self, client, design_files):
        netlist, clocks = design_files
        response = client.mutate(netlist, clocks, "teleport")
        assert response["ok"] is False
        assert "unknown mutate action" in response["error"]

    def test_clock_mutation_rebuilds(self, client, design_files):
        netlist, clocks = design_files
        client.analyze(netlist, clocks)
        response = client.mutate(
            netlist, clocks, "scale_clocks", factor=2
        )
        assert response["ok"]
        answer = response["analysis"]
        # A rebuilt engine starts cold again but still answers.
        assert answer["ok"] and "worst_slack" in answer


class TestSelfDiagnosis:
    """PR 7: alert engine, flight recorder, crash reports, watchdog."""

    @pytest.fixture
    def diag(self, tmp_path):
        sock = str(tmp_path / "diag.sock")
        with TimingDaemon(
            sock,
            crash_dir=tmp_path / "crashes",
            debug_ops=True,
            stall_timeout_s=0.2,
        ) as server:
            with DaemonClient(sock, timeout=30.0) as c:
                yield server, c

    # -- alerts op -----------------------------------------------------
    def test_alerts_list(self, diag):
        server, c = diag
        doc = c.alerts()
        assert doc["ok"]
        assert doc["schema"] == "repro.alerts/1"
        assert doc["rules"] == len(server.alerts.rules)
        names = {row["name"] for row in doc["alerts"]}
        assert "daemon.stalled" in names

    def test_alerts_ack_requires_firing(self, diag):
        server, c = diag
        response = c.alerts("ack", name="daemon.stalled")
        assert response["ok"] is False
        assert "not firing" in response["error"]
        server.alerts.fire("daemon.stalled", message="test")
        response = c.alerts("ack", name="daemon.stalled")
        assert response["ok"] and response["acked"]
        row = [
            r for r in c.alerts()["alerts"] if r["name"] == "daemon.stalled"
        ][0]
        assert row["acked"] is True

    def test_alerts_bad_action(self, diag):
        __, c = diag
        response = c.alerts("explode")
        assert response["ok"] is False and "unknown" in response["error"]

    def test_alerts_refused_without_telemetry(self, tmp_path):
        sock = str(tmp_path / "notel.sock")
        with TimingDaemon(sock, telemetry=False) as server:
            assert server.alerts is None
            with DaemonClient(sock) as c:
                response = c.alerts()
        assert response["ok"] is False

    # -- structured errors (satellite 1) -------------------------------
    def test_error_response_carries_frames(self, diag):
        __, c = diag
        response = c.request({"op": "analyze"})  # missing netlist
        assert response["ok"] is False
        doc = response["error_doc"]
        assert doc["schema"] == "repro.error/1"
        assert doc["error_type"] in ("ValueError", "KeyError")
        assert doc["frames"] and "file" in doc["frames"][0]

    def test_last_error_carries_frames(self, diag):
        __, c = diag
        c.request({"op": "analyze"})
        last = c.health()["last_error"]
        assert last["frames"]
        assert last["error_type"] in ("ValueError", "KeyError")

    def test_expected_errors_do_not_write_crash_reports(self, diag):
        server, c = diag
        c.request({"op": "analyze"})  # ValueError: bad request
        assert c.crash_report()["crash"] is None
        assert server.crash.reports_written == 0

    def test_failed_request_logs_spans_regardless_of_threshold(
        self, tmp_path
    ):
        sock = str(tmp_path / "log.sock")
        log_path = tmp_path / "access.jsonl"
        trace = {"trace_id": "0123456789abcdef", "span_id": "fedcba98"}
        with TimingDaemon(
            sock,
            access_log=log_path,
            slow_threshold_s=9999.0,  # nothing is "slow"
            debug_ops=True,
        ) as server:
            with DaemonClient(sock) as c:
                c.request({"op": "ping", "trace": trace})
                c.request({"op": "fail", "trace": trace})
            server.access_log.close()
        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        ok = [e for e in entries if e["status"] == "ok"]
        failed = [e for e in entries if e["status"] == "error"]
        # Identical snapshots either side: the ok line stays flat (not
        # slow), the failed line gets its span tree force-attached.
        assert ok and all("spans" not in e for e in ok)
        assert failed and all("spans" in e for e in failed)
        assert not any(e.get("slow") for e in entries)

    # -- crash reports -------------------------------------------------
    def test_fail_op_writes_crash_report(self, diag):
        server, c = diag
        response = c.request({"op": "fail", "message": "kapow"})
        assert response["ok"] is False
        assert response["error_type"] == "RuntimeError"
        report = c.crash_report()
        assert report["ok"]
        crash = report["crash"]
        assert crash["schema"] == "repro.crash/1"
        assert crash["kind"] == "handler_exception"
        assert crash["op"] == "fail"
        assert crash["error"]["error"] == "kapow"
        assert crash["threads"]
        assert crash["flight"]["events"]
        # Persisted to the crash dir as well.
        import pathlib

        path = pathlib.Path(report["path"])
        assert path.is_file()
        on_disk = json.loads(path.read_text())
        assert on_disk["error"]["error"] == "kapow"

    def test_crash_report_op_spelled_with_hyphen(self, diag):
        __, c = diag
        response = c.request({"op": "crash-report"})
        assert response["ok"] and response["crash"] is None

    def test_private_ops_still_rejected(self, diag):
        __, c = diag
        response = c.request({"op": "-op_ping"})
        assert response["ok"] is False

    # -- flight recorder -----------------------------------------------
    def test_flight_op_records_requests_and_errors(self, diag):
        __, c = diag
        c.ping()
        c.request({"op": "fail"})
        doc = c.flight()
        assert doc["ok"] and doc["schema"] == "repro.flight/1"
        kinds = [e["kind"] for e in doc["events"]]
        assert "request" in kinds and "error" in kinds and "log" in kinds
        trimmed = c.flight(last=2)
        assert len(trimmed["events"]) == 2

    def test_flight_disabled_with_zero_capacity(self, tmp_path):
        sock = str(tmp_path / "nofl.sock")
        with TimingDaemon(sock, flight_capacity=0) as server:
            assert server.flight is None
            with DaemonClient(sock) as c:
                response = c.flight()
        assert response["ok"] is False

    # -- debug ops gating ----------------------------------------------
    def test_debug_ops_refused_by_default(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG_OPS", raising=False)
        sock = str(tmp_path / "nodbg.sock")
        with TimingDaemon(sock) as server:
            assert server.debug_ops is False
            with DaemonClient(sock) as c:
                for op in ("fail", "sleep"):
                    response = c.request({"op": op})
                    assert response["ok"] is False
                    assert "disabled" in response["error"]

    def test_debug_ops_enabled_by_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_OPS", "1")
        sock = str(tmp_path / "envdbg.sock")
        with TimingDaemon(sock) as server:
            assert server.debug_ops is True

    # -- stall watchdog ------------------------------------------------
    def test_stall_fires_and_resolves(self, diag):
        import threading
        import time

        server, c = diag
        done = threading.Event()

        def slow_request():
            with DaemonClient(server.socket_path, timeout=30.0) as other:
                other.request({"op": "sleep", "seconds": 0.8})
            done.set()

        thread = threading.Thread(target=slow_request)
        thread.start()
        try:
            # The watchdog (deadline 0.2 s) must fire while the sleep
            # op is still in flight.
            deadline = time.time() + 10.0
            fired = None
            while time.time() < deadline:
                rows = [
                    r
                    for r in c.alerts()["alerts"]
                    if r["name"] == "daemon.stalled"
                ]
                if rows and rows[0]["state"] == "firing":
                    fired = rows[0]
                    break
                time.sleep(0.02)
            assert fired is not None, "daemon.stalled never fired"
            assert "sleep" in fired["message"]
        finally:
            thread.join(timeout=30.0)
        assert done.is_set()
        # After the request finishes the alert resolves.
        deadline = time.time() + 10.0
        resolved = None
        while time.time() < deadline:
            rows = [
                r
                for r in c.alerts()["alerts"]
                if r["name"] == "daemon.stalled"
            ]
            if rows and rows[0]["state"] == "resolved":
                resolved = rows[0]
                break
            time.sleep(0.02)
        assert resolved is not None, "daemon.stalled never resolved"
        stalls = c.flight()["events"]
        stall_events = [e for e in stalls if e["kind"] == "stall"]
        statuses = {e["status"] for e in stall_events}
        assert {"stalled", "resolved"} <= statuses
        stuck = [e for e in stall_events if e["status"] == "stalled"][0]
        assert stuck["op"] == "sleep"
        assert stuck["stack"]  # the stuck thread's frames

    def test_watchdog_disabled_with_none_timeout(self, tmp_path):
        sock = str(tmp_path / "nowd.sock")
        with TimingDaemon(sock, stall_timeout_s=None) as server:
            assert server.watchdog is None
            with DaemonClient(sock) as c:
                assert c.ping()["pong"]

    # -- buildinfo / gauges --------------------------------------------
    def test_buildinfo_reports_diagnosis_config(self, diag):
        server, c = diag
        config = c.buildinfo()["config"]
        assert config["alert_rules"] == len(server.alerts.rules)
        assert config["flight_capacity"] == server.flight.capacity
        assert config["crash_dir"].endswith("crashes")
        assert config["stall_timeout_s"] == 0.2
        assert config["debug_ops"] is True

    def test_sync_gauges_exports_diagnosis_state(self, diag):
        server, c = diag
        c.request({"op": "fail"})
        metrics = c.metrics()["metrics"]
        gauges = metrics["gauges"]
        assert "service.daemon.stalled" in gauges
        assert gauges["service.flight.events"] >= 1
        assert "service.alerts.firing" in gauges
        counters = metrics["counters"]
        assert counters["service.daemon.crash_reports"] == 1
