"""Run the doctests embedded in public modules."""

import doctest

import pytest

import repro
import repro.clocks.waveform
import repro.netlist.builder
import repro.viz.ascii_waveform

MODULES = [
    repro,
    repro.clocks.waveform,
    repro.netlist.builder,
    repro.viz.ascii_waveform,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[m.__name__ for m in MODULES]
)
def test_module_doctests(module):
    failures, tests = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert tests > 0, f"{module.__name__} has no doctests"
    assert failures == 0
