"""Additional property-based tests: synthesis, persistence, sizing."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cells import standard_library
from repro.sim.functional import evaluate_module
from repro.synth.expr import (
    And,
    Const,
    Expr,
    Not,
    Or,
    Var,
    Xor,
    evaluate,
    simplify,
    variables,
)
from repro.synth.mapper import MappingError, synthesize_module

_LIB = standard_library()
_VARS = ("a", "b", "c", "d")


@st.composite
def expressions(draw, depth=3) -> Expr:
    if depth == 0:
        return Var(draw(st.sampled_from(_VARS)))
    kind = draw(st.integers(min_value=0, max_value=4))
    if kind == 0:
        return Var(draw(st.sampled_from(_VARS)))
    if kind == 1:
        return Not(draw(expressions(depth=depth - 1)))
    operands = tuple(
        draw(expressions(depth=depth - 1))
        for __ in range(draw(st.integers(min_value=2, max_value=3)))
    )
    return (And, Or, Xor)[kind - 2](operands)


@st.composite
def assignments(draw):
    return {name: draw(st.booleans()) for name in _VARS}


class TestSimplifyProperties:
    @given(expressions(), assignments())
    @settings(max_examples=300)
    def test_simplify_preserves_semantics(self, expr, env):
        assert evaluate(expr, env) == evaluate(simplify(expr), env)

    @given(expressions())
    @settings(max_examples=200)
    def test_simplify_idempotent(self, expr):
        once = simplify(expr)
        assert simplify(once) == once

    @given(expressions())
    @settings(max_examples=200)
    def test_simplify_never_adds_variables(self, expr):
        assert variables(simplify(expr)) <= variables(expr)


class TestMappingProperties:
    @given(
        expressions(),
        st.sampled_from(["direct", "nand"]),
        st.lists(assignments(), min_size=4, max_size=4),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_mapped_module_matches_expression(self, expr, style, envs):
        simplified = simplify(expr)
        if isinstance(simplified, Const):
            with pytest.raises(MappingError):
                synthesize_module("P", {"y": expr}, _LIB, style=style)
            return
        module = synthesize_module("P", {"y": expr}, _LIB, style=style)
        free = variables(simplified)
        for env in envs:
            got = evaluate_module(
                module, {k: v for k, v in env.items() if k in free}
            )["y"]
            assert got == evaluate(expr, env)

    @given(expressions())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_nand_style_cell_discipline(self, expr):
        simplified = simplify(expr)
        if isinstance(simplified, Const):
            return
        module = synthesize_module("P", {"y": expr}, _LIB, style="nand")
        kinds = {c.spec.name for c in module.definition.inner.cells}
        assert kinds <= {"NAND2", "INV"}


class TestPersistenceProperties:
    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_json_roundtrip_preserves_analysis(self, tmp_path_factory, seed):
        from repro.core import Hummingbird
        from repro.generators import random_design
        from repro.netlist import load_network, save_network

        network, schedule = random_design(
            seed=seed, n_banks=2, gates_per_bank=15, bits=3, style="latch"
        )
        path = tmp_path_factory.mktemp("rt") / "n.json"
        save_network(network, path)
        loaded = load_network(path, _LIB)
        a = Hummingbird(network, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_blif_roundtrip_preserves_analysis(self, tmp_path_factory, seed):
        from repro.core import Hummingbird
        from repro.generators import random_design
        from repro.netlist import load_blif, save_blif

        network, schedule = random_design(
            seed=seed, n_banks=2, gates_per_bank=15, bits=3, style="ff"
        )
        path = tmp_path_factory.mktemp("rt") / "n.blif"
        save_blif(network, path)
        loaded = load_blif(path, _LIB)
        a = Hummingbird(network, schedule).analyze().worst_slack
        b = Hummingbird(loaded, schedule).analyze().worst_slack
        assert a == pytest.approx(b)


class TestTableDelayProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        st.floats(min_value=0.0, max_value=120.0),
    )
    @settings(max_examples=200)
    def test_interpolation_bounded_by_extremes_inside_range(
        self, loads, query
    ):
        from repro.cells import TableDelay

        loads = sorted(loads)
        delays = [0.1 + 0.05 * load for load in loads]  # monotone table
        table = TableDelay(loads, delays)
        value = table.at_load(query)
        assert math.isfinite(value)
        if loads[0] <= query <= loads[-1]:
            assert delays[0] - 1e-9 <= value <= delays[-1] + 1e-9
