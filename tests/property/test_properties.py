"""Property-based tests (hypothesis) for core invariants."""

import math
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clocks import ClockSchedule, ClockWaveform, as_time
from repro.core.breakopen import BreakOpenPlan, RequirementArc, minimum_breaks
from repro.core.ideal_constraints import ideal_data_constraint
from repro.netlist.kinds import Unateness
from repro.rftime import RiseFall

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
rise_falls = st.builds(RiseFall, finite_floats, finite_floats)
unateness = st.sampled_from(list(Unateness))


class TestRiseFallAlgebra:
    @given(rise_falls, rise_falls)
    def test_max_commutative(self, a, b):
        assert a.max_with(b) == b.max_with(a)

    @given(rise_falls, rise_falls, rise_falls)
    def test_max_associative(self, a, b, c):
        assert a.max_with(b).max_with(c) == a.max_with(b.max_with(c))

    @given(rise_falls)
    def test_max_idempotent(self, a):
        assert a.max_with(a) == a

    @given(rise_falls, rise_falls)
    def test_min_lower_bound(self, a, b):
        low = a.min_with(b)
        assert low.rise <= a.rise and low.rise <= b.rise
        assert low.fall <= a.fall and low.fall <= b.fall

    @given(rise_falls, unateness)
    def test_through_arc_preserves_worst_or_equal(self, a, sense):
        assert a.through_arc(sense).worst == a.worst

    @given(rise_falls, unateness)
    def test_backward_never_exceeds_forward_inverse(self, a, sense):
        """back_through_arc is conservative: applying forward then
        backward never yields a looser (larger) requirement."""
        roundtrip = a.through_arc(sense).back_through_arc(sense)
        assert roundtrip.rise <= a.worst + 1e-12
        assert roundtrip.fall <= a.worst + 1e-12

    @given(rise_falls, finite_floats)
    def test_shift_distributes_over_worst(self, a, d):
        assert a.shifted(d).worst == pytest.approx(a.worst + d)


class TestTimeConversion:
    @given(st.integers(min_value=-10**9, max_value=10**9))
    def test_int_exact(self, n):
        assert as_time(n) == n

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_fraction_strings(self, num, den):
        assert as_time(f"{num}/{den}") == Fraction(num, den)


def _edge_times(draw, min_size=2, max_size=10):
    times = draw(
        st.lists(
            st.integers(min_value=0, max_value=99),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    return sorted(Fraction(t) for t in times)


@st.composite
def breakopen_cases(draw):
    period = Fraction(100)
    times = _edge_times(draw)
    n_arcs = draw(st.integers(min_value=1, max_value=8))
    arcs = []
    for __ in range(n_arcs):
        a = draw(st.sampled_from(times))
        c = draw(st.sampled_from(times))
        arcs.append(RequirementArc(a, c))
    return period, times, arcs


class TestBreakOpenProperties:
    @given(breakopen_cases())
    @settings(max_examples=200)
    def test_minimum_breaks_cover_all_arcs(self, case):
        period, times, arcs = case
        breaks = minimum_breaks(period, times, arcs)
        for arc in arcs:
            assert any(arc.handled_by(b, period) for b in breaks)

    @given(breakopen_cases())
    @settings(max_examples=200)
    def test_designated_pass_handles_incoming_arcs(self, case):
        """The per-capture designation rule ("closure closest to the end")
        always picks a pass that handles every covered incoming pair."""
        period, times, arcs = case
        breaks = minimum_breaks(period, times, arcs)
        plan = BreakOpenPlan(period=period, breaks=breaks)
        for arc in arcs:
            chosen = breaks[plan.designated_pass(arc.closure)]
            assert arc.handled_by(chosen, period)

    @given(breakopen_cases())
    @settings(max_examples=100)
    def test_single_break_per_arc_always_exists(self, case):
        """Breaking exactly at an arc's closure edge always handles it."""
        period, __, arcs = case
        for arc in arcs:
            assert arc.handled_by(arc.closure, period)

    @given(breakopen_cases())
    @settings(max_examples=100)
    def test_handled_pair_position_difference_is_exact_constraint(self, case):
        period, times, arcs = case
        breaks = minimum_breaks(period, times, arcs)
        plan = BreakOpenPlan(period=period, breaks=breaks)
        for arc in arcs:
            for index, b in enumerate(breaks):
                if not arc.handled_by(b, period):
                    continue
                diff = plan.position_closure(
                    arc.closure, index
                ) - plan.position_assertion(arc.assertion, index)
                assert diff == arc.ideal_constraint(period)

    @given(
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=99),
    )
    def test_ideal_constraint_in_half_open_period(self, a, c):
        d = ideal_data_constraint(Fraction(a), Fraction(c), Fraction(100))
        assert 0 < d <= 100


@st.composite
def waveforms(draw, name="clk"):
    period = draw(st.integers(min_value=4, max_value=400))
    leading = draw(st.integers(min_value=0, max_value=period - 1))
    width = draw(st.integers(min_value=1, max_value=period - 1))
    return ClockWaveform(name, period, leading, leading + width)


class TestScheduleProperties:
    @given(waveforms())
    def test_edges_within_overall_period(self, waveform):
        schedule = ClockSchedule([waveform])
        for edge in schedule.all_edges():
            assert 0 <= edge.time < schedule.overall_period

    @given(waveforms(), st.integers(min_value=1, max_value=4))
    def test_multiplier_times_period(self, waveform, k):
        other = ClockWaveform(
            "other", waveform.period * k, 0, waveform.period * k / 2
        )
        schedule = ClockSchedule([waveform, other])
        assert (
            schedule.multiplier(waveform.name) * waveform.period
            == schedule.overall_period
        )

    @given(waveforms(), st.integers(min_value=-500, max_value=500))
    def test_shift_preserves_width(self, waveform, delta):
        assert waveform.shifted(delta).width == waveform.width

    @given(waveforms())
    def test_is_high_fraction_matches_duty(self, waveform):
        """Sampling matches the duty cycle within quantisation error."""
        samples = 200
        highs = sum(
            waveform.is_high(Fraction(waveform.period * i, samples))
            for i in range(samples)
        )
        duty = float(waveform.width / waveform.period)
        assert abs(highs / samples - duty) < 0.02 + 1.0 / samples


@st.composite
def pipeline_cases(draw):
    n_stages = draw(st.integers(min_value=2, max_value=3))
    lengths = [
        draw(st.integers(min_value=1, max_value=20)) for __ in range(n_stages)
    ]
    period = draw(st.integers(min_value=8, max_value=60))
    return lengths, period


class TestAlgorithm1Properties:
    @given(pipeline_cases())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_verdict_matches_grid_search(self, case):
        from repro.core.algorithm1 import run_algorithm1
        from repro.core.model import AnalysisModel
        from repro.core.slack import SlackEngine
        from repro.delay import estimate_delays
        from repro.generators import latch_pipeline

        from tests.conftest import brute_force_feasible

        lengths, period = case
        network, schedule = latch_pipeline(
            stages=len(lengths), stage_lengths=lengths, period=period
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        __, best, __ = brute_force_feasible(model, engine, points=11)
        result = run_algorithm1(model, engine)
        if best > 0.3:
            assert result.intended
        if best < -0.3:
            assert not result.intended

    @given(pipeline_cases())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_block_equals_enumeration(self, case):
        from repro.baselines import enumerate_port_slacks
        from repro.core.algorithm1 import run_algorithm1
        from repro.core.model import AnalysisModel
        from repro.core.slack import SlackEngine
        from repro.delay import estimate_delays
        from repro.generators import latch_pipeline

        lengths, period = case
        network, schedule = latch_pipeline(
            stages=len(lengths), stage_lengths=lengths, period=period
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        block = run_algorithm1(model, engine).slacks
        enumerated = enumerate_port_slacks(model, engine).slacks
        for group in ("capture", "launch"):
            for name, value in getattr(block, group).items():
                other = getattr(enumerated, group)[name]
                if math.isinf(value):
                    assert math.isinf(other)
                else:
                    assert other == pytest.approx(value)


class TestTransferMonotonicity:
    @given(
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=-30.0, max_value=30.0),
    )
    def test_satisfied_set_never_shrinks(self, w0, slack_like):
        """The paper's S' >= S lemma, exercised on a two-latch chain:
        after a complete forward transfer bounded by the input slack, the
        previously satisfied constraints remain satisfied."""
        from repro.core.model import AnalysisModel
        from repro.core.slack import SlackEngine
        from repro.core.transfer import complete_forward
        from repro.delay import estimate_delays
        from repro.generators import latch_pipeline

        network, schedule = latch_pipeline(
            stages=2, stage_lengths=[6, 6], period=20
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        latch = model.adjustable_instances()[0]
        latch.w = min(w0, latch.width)
        before = engine.port_slacks()
        satisfied_before = {
            name
            for group in (before.capture, before.launch)
            for name, value in group.items()
            if value >= 0
        }
        complete_forward(latch, before.capture[latch.name])
        after = engine.port_slacks()
        satisfied_after = {
            name
            for group in (after.capture, after.launch)
            for name, value in group.items()
            if value >= -1e-9
        }
        assert satisfied_before <= satisfied_after
