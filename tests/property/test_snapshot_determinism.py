"""PR 10 property: concurrent snapshot reads are byte-identical.

The daemon's lock-free read path must never serve an answer that the
locked path could not have served: under N reader threads racing one
mutator, every response's ``manifest_digest`` must appear in the serial
reference run of the same mutation sequence, and the final states must
agree exactly.
"""

from __future__ import annotations

import json
import random
import threading

import pytest

from repro.clocks.serialize import save_schedule
from repro.generators import latch_pipeline
from repro.netlist.persistence import save_network
from repro.service import TimingDaemon

READERS = 4
READS_PER_THREAD = 25
MUTATIONS = 5


@pytest.fixture
def design_files(tmp_path):
    network, schedule = latch_pipeline(
        stages=3, stage_lengths=[4, 2, 2], period=12.0
    )
    netlist = tmp_path / "pipeline.json"
    clocks = tmp_path / "clocks.json"
    save_network(network, netlist)
    save_schedule(schedule, clocks)
    return str(netlist), str(clocks)


def _mutation_sequence(netlist, clocks):
    """A deterministic stream of scale_cell edits (seeded)."""
    rng = random.Random(42)
    cells = ["s0_i0", "s1_i0", "s1_i1", "s2_i0"]
    return [
        {
            "op": "mutate",
            "netlist": netlist,
            "clocks": clocks,
            "action": "scale_cell",
            "cell": rng.choice(cells),
            "factor": round(rng.uniform(1.05, 1.6), 3),
            "analyze": True,
        }
        for __ in range(MUTATIONS)
    ]


def _send(daemon, request):
    response = daemon.handle_line(
        json.dumps(request).encode("utf-8")
    )
    assert response["ok"], response.get("error")
    return response


def _analyze_req(netlist, clocks):
    return {"op": "analyze", "netlist": netlist, "clocks": clocks}


def test_interleaved_reads_match_serial_reference(
    tmp_path, design_files
):
    netlist, clocks = design_files
    mutations = _mutation_sequence(netlist, clocks)

    # Serial reference: the same op sequence with no concurrency.  The
    # digest after each mutation is the complete set of answers the
    # design can legally give at any point in its history.
    serial = TimingDaemon(str(tmp_path / "serial.sock"))
    reference = []
    reference.append(
        _send(serial, _analyze_req(netlist, clocks))["manifest_digest"]
    )
    for mutation in mutations:
        response = _send(serial, dict(mutation))
        reference.append(response["analysis"]["manifest_digest"])
    legal_digests = set(reference)
    assert len(legal_digests) > 1, "mutations must change the answer"

    # Concurrent run: N reader threads hammer analyze while a single
    # mutator applies the identical mutation sequence.
    daemon = TimingDaemon(str(tmp_path / "conc.sock"))
    _send(daemon, _analyze_req(netlist, clocks))  # warm load
    observed = [[] for __ in range(READERS)]
    failures = []

    def reader(slot):
        try:
            for __ in range(READS_PER_THREAD):
                response = _send(daemon, _analyze_req(netlist, clocks))
                observed[slot].append(
                    (response["engine"], response["manifest_digest"])
                )
        except Exception as exc:  # noqa: BLE001 -- report, don't hang
            failures.append(exc)

    def mutator():
        try:
            for mutation in mutations:
                _send(daemon, dict(mutation))
        except Exception as exc:  # noqa: BLE001
            failures.append(exc)

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(READERS)
    ]
    threads.append(threading.Thread(target=mutator))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not failures, failures

    # Every concurrent answer -- snapshot hit or locked -- must be one
    # the serial history could have produced.
    for rows in observed:
        assert len(rows) == READS_PER_THREAD
        for engine, digest in rows:
            assert digest in legal_digests, (
                f"{engine} answer served digest outside the serial "
                f"history: {digest}"
            )

    # Quiesced: the final answer equals the serial run's final answer.
    final = _send(daemon, _analyze_req(netlist, clocks))
    assert final["manifest_digest"] == reference[-1]
    # The read path actually exercised the snapshot (not vacuous).
    hits = daemon.recorder.counters.get(
        "service.daemon.snapshot_hits", 0
    )
    assert hits > 0, "no lock-free reads happened -- test is vacuous"
