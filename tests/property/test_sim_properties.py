"""Property tests cross-checking the event simulator against the
zero-delay functional evaluator on random combinational cones."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cells import standard_library
from repro.clocks import ClockSchedule
from repro.delay import estimate_delays
from repro.generators.random_logic import random_logic_block
from repro.netlist import NetworkBuilder
from repro.sim import EventSimulator
from repro.sim.functional import evaluate_combinational

_LIB = standard_library()

#: Gate mix restricted to cells with simple functions (all of them have
#: functions; keep the mix small for fast cones).
_MIX = (("NAND2", 3.0), ("NOR2", 2.0), ("INV", 2.0), ("XOR2", 1.0), ("MUX2", 0.5))


def _build(seed: int, n_gates: int, n_inputs: int):
    rng = random.Random(seed)
    b = NetworkBuilder(_LIB)
    b.clock("clk")
    input_nets = []
    for index in range(n_inputs):
        net = f"pi{index}"
        b.input(f"in{index}", net, clock="clk", edge="leading", offset=1.0)
        input_nets.append(net)
    random_logic_block(
        b, rng, "c", input_nets, n_gates, n_outputs=1, gate_mix=_MIX
    )
    return b.build(), ClockSchedule.single("clk", 1000), input_nets


class TestSimulatorSettlesToFunctionalValues:
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        n_gates=st.integers(min_value=3, max_value=25),
        pattern=st.integers(min_value=0, max_value=15),
    )
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_settled_values_match(self, seed, n_gates, pattern):
        """After the event wave dies out, every net equals the functional
        evaluation of the driven input values."""
        network, schedule, input_nets = _build(seed, n_gates, n_inputs=4)
        delays = estimate_delays(network)
        stimulus_values = {
            f"in{k}": bool((pattern >> k) & 1) for k in range(4)
        }
        sim = EventSimulator(
            network,
            schedule,
            delays,
            stimulus=lambda name, cycle: stimulus_values[name],
        )
        trace = sim.run(cycles=1)
        # Sample well after all waves settled (period is 1000, logic
        # depth tens of ns at most).
        t = 900.0
        driven = {
            net: stimulus_values[f"in{index}"]
            for index, net in enumerate(input_nets)
        }
        expected = evaluate_combinational(network, driven)
        for net_name, value in expected.items():
            assert trace.value_at(net_name, t) == value, net_name

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_event_count_bounded(self, seed):
        """One input wave through an acyclic cone produces finitely many
        events, bounded by a small multiple of the arc count (transport
        delay can glitch, but cannot oscillate)."""
        network, schedule, __ = _build(seed, n_gates=20, n_inputs=4)
        delays = estimate_delays(network)
        sim = EventSimulator(
            network, schedule, delays, stimulus=lambda n, c: True
        )
        trace = sim.run(cycles=1)
        arc_count = sum(
            len(delays.arcs_of(cell))
            for cell in network.combinational_cells
        )
        assert trace.events_processed < 40 * (arc_count + 8)
