"""Tests for tristate bus analysis (multi-driver nets)."""

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators.bus import tristate_bus_design
from repro.netlist import validate_network


class TestBusStructure:
    def test_validates(self):
        network, schedule = tristate_bus_design()
        report = validate_network(network, set(schedule.clock_names))
        assert report.ok, report.errors

    def test_bus_has_multiple_drivers(self):
        network, __ = tristate_bus_design(n_drivers=4)
        bus = network.net("bus")
        assert len(bus.drivers) == 4
        assert all(d.cell.spec.name == "TRIBUF" for d in bus.drivers)

    def test_rejects_single_driver(self):
        with pytest.raises(ValueError):
            tristate_bus_design(n_drivers=1)


class TestBusAnalysis:
    def _analyse(self, **kwargs):
        network, schedule = tristate_bus_design(**kwargs)
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        return run_algorithm1(model, engine), model, engine

    def test_every_driver_is_a_launch_port(self):
        result, model, __ = self._analyse(n_drivers=3)
        bus_cluster = next(
            c
            for c in model.clusters
            if "bus" in c.net_names
        )
        bus_launches = [
            p
            for p in model.launch_ports[bus_cluster.name]
            if p.net_name == "bus"
        ]
        assert len(bus_launches) == 3

    def test_intended_at_nominal(self):
        result, __, __ = self._analyse()
        assert result.intended

    def test_worst_driver_determines_bus_slack(self):
        """The deepest driver cone dominates the capture slack (checked at
        the initial offsets, before slack transfer redistributes them)."""
        network, schedule = tristate_bus_design(n_drivers=4)
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        slacks = engine.port_slacks()
        # The driver cones feed the tristates' data inputs, so depth shows
        # in the drivers' *capture* slacks: drv3 has the longest cone.
        captures = {
            name: slack
            for name, slack in slacks.capture.items()
            if name.startswith("drv")
        }
        assert min(captures, key=captures.get) == "drv3@0"
        assert captures["drv3@0"] < captures["drv0@0"]
        # All drivers launch onto the bus at the same offsets: their
        # launch slacks tie.
        launches = [
            slack
            for name, slack in slacks.launch.items()
            if name.startswith("drv")
        ]
        assert max(launches) - min(launches) < 1e-9

    def test_driver_windows_adjustable(self):
        """Tristate drivers use the transparent model: their windows move
        during slack transfer."""
        result, model, __ = self._analyse(n_drivers=3, period=40)
        tristates = [
            i
            for i in model.adjustable_instances()
            if i.cell_name.startswith("drv")
        ]
        assert tristates
        assert result.converged

    def test_slow_bus_flagged(self):
        network, schedule = tristate_bus_design(
            n_drivers=3, source_chain=30, period=20
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        result = run_algorithm1(model, engine)
        assert not result.intended
        slow = result.slow_instance_names()
        assert any(name.startswith("drv") or name == "cap@0" for name in slow)
