"""Tests for the ISCAS'89 s27 benchmark."""

import itertools

import pytest

from repro.core import Hummingbird
from repro.generators import generate_s27
from repro.netlist import validate_network
from repro.sim import EventSimulator, dynamic_intended_check
from repro.delay import estimate_delays


class TestS27Structure:
    def test_published_counts(self):
        network, schedule = generate_s27()
        assert len(network.primary_inputs) == 4
        assert len(network.primary_outputs) == 1
        assert len(network.synchronisers) == 3
        assert len(network.combinational_cells) == 10

    def test_validates(self):
        network, schedule = generate_s27()
        report = validate_network(network, set(schedule.clock_names))
        assert report.ok, report.errors


class TestS27Timing:
    def test_meets_timing_at_nominal(self):
        network, schedule = generate_s27(period=20)
        result = Hummingbird(network, schedule).analyze()
        assert result.intended

    def test_fails_when_overclocked(self):
        network, schedule = generate_s27(period=2)
        result = Hummingbird(network, schedule).analyze()
        assert not result.intended
        # The critical loop runs through the state feedback.
        slow = result.algorithm1.slow_instance_names()
        assert any(name.startswith("dff_") for name in slow)

    def test_dynamic_validation(self):
        network, schedule = generate_s27(period=20)
        delays = estimate_delays(network)
        check = dynamic_intended_check(
            network, schedule, delays, cycles=12, seed=27
        )
        assert check.intended


class TestS27Function:
    def test_reset_like_behaviour(self):
        """With all inputs held low from power-on (all state 0), the
        published s27 next-state equations give a stable trajectory; the
        simulation must follow it: G17 = ~G11 and G11 = NOR(G5, G9)."""
        network, schedule = generate_s27(period=50)
        delays = estimate_delays(network)
        sim = EventSimulator(
            network, schedule, delays, stimulus=lambda n, c: False
        )
        trace = sim.run(cycles=6)
        period = float(schedule.overall_period)
        # Sample late in a settled cycle.
        t = 5 * period - 1.0
        g11 = trace.value_at("G11", t)
        g17 = trace.value_at("G17", t)
        assert g17 == (not g11)
        g5 = trace.value_at("G5", t)
        g9 = trace.value_at("G9", t)
        assert g11 == (not (g5 or g9))
