"""Tests for buffered clock distribution (control arrivals and skew)."""

import pytest

from repro.core.algorithm1 import run_algorithm1
from repro.core.control_paths import control_arrivals
from repro.core.model import AnalysisModel
from repro.core.slack import SlackEngine
from repro.delay import estimate_delays
from repro.generators.clock_tree import skewed_clock_pipeline
from repro.netlist import validate_network


class TestStructure:
    def test_validates(self):
        network, schedule = skewed_clock_pipeline()
        report = validate_network(network, set(schedule.clock_names))
        assert report.ok, report.errors

    def test_deeper_buffers_later_arrival(self):
        network, __ = skewed_clock_pipeline(buffer_depths=(0, 2, 4))
        delays = estimate_delays(network)
        arrivals = control_arrivals(network, delays)
        assert arrivals["ff0"].latest == 0.0
        assert arrivals["ff1"].latest > arrivals["ff0"].latest
        assert arrivals["ff2"].latest > arrivals["ff1"].latest


class TestSkewEffects:
    def _capture_slack(self, depths, stage):
        network, schedule = skewed_clock_pipeline(
            buffer_depths=depths, period=20
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        engine = SlackEngine(model)
        result = run_algorithm1(model, engine)
        return result.slacks.capture[f"ff{stage}@0"]

    def test_late_clock_relaxes_downstream_capture(self):
        """Buffering ff1's clock launches stage 2's data later -- the
        capture slack at ff2 shrinks accordingly."""
        base = self._capture_slack((0, 0, 0), stage=2)
        skewed = self._capture_slack((0, 4, 0), stage=2)
        assert skewed < base

    def test_o_zc_includes_tree_delay(self):
        network, schedule = skewed_clock_pipeline(buffer_depths=(0, 3, 0))
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        (ff1,) = model.instances["ff1"]
        arrivals = control_arrivals(network, delays)
        timing = delays.sync_timing(network.cell("ff1"))
        assert ff1.o_zc == pytest.approx(
            arrivals["ff1"].latest + timing.c_to_q
        )

    def test_analysis_completes_with_skew(self):
        network, schedule = skewed_clock_pipeline(
            buffer_depths=(0, 1, 2, 3), chain_length=2, period=30
        )
        delays = estimate_delays(network)
        model = AnalysisModel(network, schedule, delays)
        result = run_algorithm1(model, SlackEngine(model))
        assert result.converged
        assert result.intended
