"""Tests for the benchmark circuit generators."""

import pytest

from repro.core import Hummingbird
from repro.delay import estimate_delays
from repro.generators import (
    fig1_circuit,
    fig1_schedule,
    generate_alu,
    generate_des,
    generate_sm1f,
    generate_sm1h,
    latch_pipeline,
    random_design,
)
from repro.generators._util import standard_cell_count
from repro.netlist import ModuleSpec, validate_network


class TestRandomDesign:
    def test_deterministic(self):
        n1, __ = random_design(seed=42, n_banks=2, gates_per_bank=20, bits=4)
        n2, __ = random_design(seed=42, n_banks=2, gates_per_bank=20, bits=4)
        assert [c.name for c in n1.cells] == [c.name for c in n2.cells]
        assert {net.name for net in n1.nets} == {net.name for net in n2.nets}

    def test_different_seeds_differ(self):
        n1, __ = random_design(seed=1, n_banks=2, gates_per_bank=20, bits=4)
        n2, __ = random_design(seed=2, n_banks=2, gates_per_bank=20, bits=4)
        specs1 = [c.spec.name for c in n1.combinational_cells]
        specs2 = [c.spec.name for c in n2.combinational_cells]
        assert specs1 != specs2

    @pytest.mark.parametrize("style", ["latch", "ff"])
    def test_validates(self, style):
        network, schedule = random_design(
            seed=5, n_banks=3, gates_per_bank=25, bits=4, style=style
        )
        report = validate_network(network, set(schedule.clock_names))
        assert report.ok, report.errors

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            random_design(seed=1, style="dual_rail")

    def test_bank_count_respected(self):
        network, __ = random_design(
            seed=9, n_banks=3, gates_per_bank=10, bits=4, style="latch"
        )
        assert len(network.synchronisers) == 3 * 4


class TestFig1:
    def test_schedule_has_four_staggered_phases(self):
        s = fig1_schedule()
        assert len(s.clock_names) == 4
        waveforms = s.waveforms()
        for a, b in zip(waveforms, waveforms[1:]):
            assert a.trailing < b.leading  # non-overlapping, in order

    def test_circuit_validates_and_needs_two_passes(self):
        network, schedule = fig1_circuit()
        assert validate_network(network, set(schedule.clock_names)).ok
        hb = Hummingbird(network, schedule)
        assert hb.model.stats()["max_passes_per_cluster"] == 2

    def test_time_multiplexed_gate_settles_twice(self):
        network, schedule = fig1_circuit()
        hb = Hummingbird(network, schedule)
        constraints = hb.generate_constraints().constraints
        assert constraints.settling_count("g_out") == 2


class TestTable1Designs:
    def test_alu_exact_cell_count(self):
        network, __ = generate_alu()
        assert standard_cell_count(network) == 899

    def test_des_exact_cell_count(self):
        network, __ = generate_des()
        assert standard_cell_count(network) == 3681

    def test_des_validates(self):
        network, schedule = generate_des()
        assert validate_network(network, set(schedule.clock_names)).ok

    def test_alu_validates_and_analyzes(self):
        network, schedule = generate_alu()
        result = Hummingbird(network, schedule).analyze()
        assert result.intended

    def test_des_uses_transparent_latches(self):
        network, __ = generate_des()
        styles = {c.spec.name for c in network.synchronisers}
        assert "DLATCH" in styles and "DFF" in styles

    def test_sm1_flat_and_hierarchical_same_machine(self):
        flat, __ = generate_sm1f()
        hier, __ = generate_sm1h()
        assert any(isinstance(c.spec, ModuleSpec) for c in hier.cells)
        assert not any(isinstance(c.spec, ModuleSpec) for c in flat.cells)
        # The flat form contains the module's gates, prefixed.
        assert standard_cell_count(flat) > standard_cell_count(hier)
        assert len(flat.synchronisers) == len(hier.synchronisers)

    def test_sm1_versions_validate(self):
        for gen in (generate_sm1f, generate_sm1h):
            network, schedule = gen()
            report = validate_network(network, set(schedule.clock_names))
            assert report.ok, (network.name, report.errors)

    def test_sm1_hierarchical_more_conservative(self):
        """Module-level analysis (non-unate arcs, port-load assumptions)
        must never report a larger slack than flat analysis."""
        flat, schedule = generate_sm1f()
        hier, __ = generate_sm1h()
        flat_slack = Hummingbird(flat, schedule).analyze().worst_slack
        hier_slack = Hummingbird(hier, schedule).analyze().worst_slack
        assert hier_slack <= flat_slack + 1e-9

    def test_generators_deterministic(self):
        a, __ = generate_alu(seed=899)
        b, __ = generate_alu(seed=899)
        assert [c.name for c in a.cells] == [c.name for c in b.cells]


class TestPipelineGenerators:
    def test_stage_lengths_validation(self, lib):
        with pytest.raises(ValueError):
            latch_pipeline(stages=2, stage_lengths=[1, 2, 3], library=lib)
        with pytest.raises(ValueError):
            latch_pipeline(stages=0, library=lib)

    def test_latch_pipeline_alternates_phases(self, lib):
        network, __ = latch_pipeline(stages=4, library=lib)
        report = validate_network(network)
        phases = [
            report.control_traces[f"s{k}_l"].clock for k in range(4)
        ]
        assert phases == ["phi1", "phi2", "phi1", "phi2"]
