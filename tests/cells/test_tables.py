"""Tests for the lookup-table delay model."""

import pytest

from repro.cells import GateSpec, TableArc, TableDelay, table_from_linear
from repro.cells.tables import TableDelay as TD
from repro.netlist.kinds import Unateness


class TestTableDelay:
    def test_exact_breakpoints(self):
        table = TableDelay((0.0, 2.0, 4.0), (1.0, 2.0, 4.0))
        assert table.at_load(0.0) == 1.0
        assert table.at_load(2.0) == 2.0
        assert table.at_load(4.0) == 4.0

    def test_interpolation(self):
        table = TableDelay((0.0, 2.0), (1.0, 3.0))
        assert table.at_load(1.0) == pytest.approx(2.0)
        assert table.at_load(0.5) == pytest.approx(1.5)

    def test_extrapolation_above(self):
        table = TableDelay((0.0, 2.0), (1.0, 3.0))
        assert table.at_load(4.0) == pytest.approx(5.0)

    def test_monotone_given_monotone_points(self):
        table = TableDelay((0.0, 1.0, 3.0, 9.0), (0.5, 0.8, 1.6, 4.0))
        samples = [table.at_load(x / 2) for x in range(0, 20)]
        assert samples == sorted(samples)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            TableDelay((0.0, 1.0), (1.0,))
        with pytest.raises(ValueError, match="increasing"):
            TableDelay((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(ValueError, match="two breakpoints"):
            TableDelay((0.0,), (1.0,))
        with pytest.raises(ValueError, match="non-negative"):
            TableDelay((0.0, 1.0), (1.0, 2.0)).at_load(-1)


class TestTableFromLinear:
    def test_matches_linear_without_saturation(self):
        table = table_from_linear(0.5, 0.1)
        for load in (0.0, 1.0, 3.0, 8.0):
            assert table.at_load(load) == pytest.approx(0.5 + 0.1 * load)

    def test_saturation_bends_upward(self):
        linear = table_from_linear(0.5, 0.1)
        bent = table_from_linear(0.5, 0.1, saturation=0.5)
        assert bent.at_load(16.0) > linear.at_load(16.0)
        assert bent.at_load(0.0) == pytest.approx(linear.at_load(0.0))


class TestTableArcIntegration:
    def _table_inv(self):
        rise = table_from_linear(0.4, 0.1, saturation=0.2)
        fall = table_from_linear(0.3, 0.1, saturation=0.2)
        arc = TableArc(unateness=Unateness.NEGATIVE, rise=rise, fall=fall)
        return GateSpec(
            name="TINV",
            inputs=("A",),
            arcs={("A", "Z"): arc},
            input_caps={"A": 1.0},
        )

    def test_delay_at_pair(self):
        spec = self._table_inv()
        pair = spec.arcs[("A", "Z")].delay_at(2.0)
        assert pair.rise > pair.fall

    def test_estimator_accepts_table_arcs(self, lib):
        from repro.cells import CellLibrary
        from repro.clocks import ClockSchedule
        from repro.core import Hummingbird
        from repro.netlist import NetworkBuilder

        library = CellLibrary("mixed", [self._table_inv()])
        for name in ("DFF",):
            library.register(lib.spec(name))
        b = NetworkBuilder(library)
        b.clock("clk")
        b.input("i", "w", clock="clk")
        b.latch("fa", "DFF", D="w", CK="clk", Q="q")
        b.gate("g", "TINV", A="q", Z="z")
        b.latch("fb", "DFF", D="z", CK="clk", Q="q2")
        b.output("o", "q2", clock="clk")
        result = Hummingbird(b.build(), ClockSchedule.single("clk", 50)).analyze()
        assert result.intended
        assert result.worst_slack < 50.0

    def test_table_and_linear_agree_when_equivalent(self, lib):
        """A table characterised from the linear model gives the same
        analysis results as the linear model itself."""
        from repro.cells import CellLibrary
        from repro.cells.combinational import simple_gate
        from repro.clocks import ClockSchedule
        from repro.core import Hummingbird
        from repro.netlist import NetworkBuilder

        linear_spec = simple_gate(
            "XINV", 1, Unateness.NEGATIVE, 0.4, 0.1, skew=0.0
        )
        (linear_arc,) = linear_spec.arcs.values()
        table_spec = GateSpec(
            name="XINV",
            inputs=("A",),
            arcs={
                ("A", "Z"): TableArc(
                    unateness=Unateness.NEGATIVE,
                    rise=table_from_linear(
                        linear_arc.rise.intrinsic, linear_arc.rise.resistance
                    ),
                    fall=table_from_linear(
                        linear_arc.fall.intrinsic, linear_arc.fall.resistance
                    ),
                )
            },
            input_caps={"A": 1.0},
        )

        def analyse(spec):
            library = CellLibrary("v", [spec, lib.spec("DFF")])
            b = NetworkBuilder(library)
            b.clock("clk")
            b.input("i", "w", clock="clk")
            b.latch("fa", "DFF", D="w", CK="clk", Q="q")
            b.gate("g1", "XINV", A="q", Z="z1")
            b.gate("g2", "XINV", A="z1", Z="z2")
            b.latch("fb", "DFF", D="z2", CK="clk", Q="q2")
            b.output("o", "q2", clock="clk")
            hb = Hummingbird(b.build(), ClockSchedule.single("clk", 30))
            return hb.analyze().worst_slack

        assert analyse(table_spec) == pytest.approx(analyse(linear_spec))
