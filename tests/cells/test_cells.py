"""Unit tests for the standard-cell library and delay models."""

import pytest

from repro.cells import CellLibrary, GateSpec, LinearDelay, standard_library
from repro.cells.combinational import mux2_spec, simple_gate
from repro.cells.delay import GateArc, symmetric_arc
from repro.cells.sequential import SyncSpec, default_synchronisers
from repro.netlist.kinds import CellRole, SyncStyle, Unateness


class TestLinearDelay:
    def test_delay_at_load(self):
        d = LinearDelay(intrinsic=0.5, resistance=0.1)
        assert d.at_load(0) == 0.5
        assert d.at_load(10) == pytest.approx(1.5)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            LinearDelay(0.5, 0.1).at_load(-1)

    def test_monotone_in_load(self):
        d = LinearDelay(0.3, 0.2)
        assert d.at_load(5) < d.at_load(6)


class TestGateArc:
    def test_delay_pair(self):
        arc = GateArc(
            unateness=Unateness.NEGATIVE,
            rise=LinearDelay(0.4, 0.1),
            fall=LinearDelay(0.3, 0.1),
        )
        pair = arc.delay_at(2.0)
        assert pair.rise == pytest.approx(0.6)
        assert pair.fall == pytest.approx(0.5)

    def test_symmetric_arc_skew(self):
        arc = symmetric_arc(Unateness.NEGATIVE, 0.5, 0.1, skew=0.1)
        assert arc.rise.intrinsic == pytest.approx(0.6)
        assert arc.fall.intrinsic == pytest.approx(0.4)

    def test_symmetric_arc_clamps_negative_fall(self):
        arc = symmetric_arc(Unateness.POSITIVE, 0.05, 0.1, skew=0.2)
        assert arc.fall.intrinsic == 0.0


class TestGateSpec:
    def test_simple_gate_shape(self):
        spec = simple_gate("TG3", 3, Unateness.NEGATIVE, 0.5, 0.1)
        assert spec.inputs == ("A", "B", "C")
        assert spec.outputs == ("Z",)
        assert set(spec.arcs) == {("A", "Z"), ("B", "Z"), ("C", "Z")}
        assert spec.role is CellRole.COMBINATIONAL
        assert spec.control is None

    def test_rejects_bad_arc_pins(self):
        with pytest.raises(ValueError):
            GateSpec(
                "BAD",
                inputs=("A",),
                arcs={("X", "Z"): symmetric_arc(Unateness.POSITIVE, 1, 0.1)},
            )

    def test_mux_select_non_unate(self):
        spec = mux2_spec()
        assert spec.arcs[("S", "Z")].unateness is Unateness.NON_UNATE
        assert spec.arcs[("A", "Z")].unateness is Unateness.POSITIVE

    def test_too_many_inputs_rejected(self):
        with pytest.raises(ValueError):
            simple_gate("HUGE", 9, Unateness.POSITIVE, 1.0, 0.1)


class TestSyncSpec:
    def test_edge_triggered_shape(self):
        dff = next(
            s for s in default_synchronisers() if s.style is SyncStyle.EDGE_TRIGGERED
        )
        assert dff.inputs == ("D",)
        assert dff.outputs == ("Q",)
        assert dff.control == "CK"
        assert dff.role is CellRole.SYNCHRONISER

    def test_edge_triggered_rejects_d_to_q(self):
        with pytest.raises(ValueError, match="edge-triggered"):
            SyncSpec("BAD", SyncStyle.EDGE_TRIGGERED, d_to_q=1.0)

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            SyncSpec("BAD", SyncStyle.TRANSPARENT, setup=-1.0)

    def test_input_cap_default(self):
        latch = SyncSpec("L", SyncStyle.TRANSPARENT)
        assert latch.input_cap("D") == pytest.approx(1.2)


class TestCellLibrary:
    def test_standard_library_contents(self, lib):
        for name in ("INV", "NAND2", "NOR2", "XOR2", "MUX2", "DFF", "DLATCH", "TRIBUF"):
            assert name in lib

    def test_unknown_spec_raises_with_listing(self, lib):
        with pytest.raises(KeyError, match="available"):
            lib.spec("FLUXCAP")

    def test_duplicate_registration_rejected(self):
        library = CellLibrary("t")
        library.register(simple_gate("X", 1, Unateness.POSITIVE, 1, 0.1))
        with pytest.raises(ValueError):
            library.register(simple_gate("X", 1, Unateness.POSITIVE, 1, 0.1))

    def test_iterators_partition(self, lib):
        gates = {s.name for s in lib.gates()}
        syncs = {s.name for s in lib.synchronisers()}
        assert "INV" in gates and "DFF" in syncs
        assert not gates & syncs
        assert len(lib) == len(gates) + len(syncs)

    def test_inverting_gates_are_negative_unate(self, lib):
        for name in ("INV", "NAND2", "NOR3", "AOI21", "OAI22"):
            spec = lib.spec(name)
            assert all(
                arc.unateness is Unateness.NEGATIVE for arc in spec.arcs.values()
            ), name

    def test_complex_gates_slower_than_inverter(self, lib):
        inv = lib.spec("INV").arcs[("A", "Z")].delay_at(2.0).worst
        nand4 = lib.spec("NAND4").arcs[("A", "Z")].delay_at(2.0).worst
        assert nand4 > inv
